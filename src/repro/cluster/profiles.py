"""MPI implementation / TCP-stack profiles.

The paper reports that the irregular behaviour of collectives on switched
TCP/IP clusters depends on the MPI implementation: the linear-gather
escalation region is ``M1 = 4 KB .. M2 = 65 KB`` under LAM 7.1.3 and
``M1 = 3 KB .. M2 = 125 KB`` under MPICH 1.2.7, and linear scatter shows a
leap at the eager/rendezvous threshold (64 KB for LAM) with regularly
repeating smaller leaps converging to the same slope.

An :class:`MpiProfile` captures the *mechanisms* behind those numbers:

* ``eager_threshold`` — messages larger than this use a rendezvous
  handshake (one extra link round-trip paid by the sender) → the scatter
  leap.
* ``fragment_size`` / ``fragment_overhead`` — long-protocol messages are
  split into fragments, each charging a small fixed sender cost → the
  repeating staircase that converges to the original slope.
* ``eager_threshold`` also defines gather's ``M2``: a sequential-receive
  gather of rendezvous-size blocks serializes its senders completely
  (each waits for the root's matching receive), which simultaneously ends
  the incast storms and steepens the slope — the deterministic
  ``M > M2`` sum regime.  LAM's 64 KB eager limit is the paper's measured
  ``M2 = 65 KB``; MPICH's 128 KB limit its ``M2 = 125 KB``.
* ``tcp_window`` — a sender can blast at most this many unacknowledged
  bytes; flows larger than the window self-pace off acknowledgements and
  cannot trigger retransmission storms.
* ``incast_threshold`` — when several concurrent senders' synchronized
  bursts exceed the destination port's buffering, packets drop and TCP
  retransmission timeouts fire.  With ``n-1`` gather senders this starts
  at ``M1 ~ incast_threshold / (n-1)``, reproducing the paper's small-M1
  values, and produces the non-deterministic escalations (~0.2-0.25 s,
  i.e. a TCP RTO) for medium messages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MpiProfile",
    "LAM_7_1_3",
    "MPICH_1_2_7",
    "OPEN_MPI",
    "IDEAL",
]

KB = 1024


@dataclass(frozen=True)
class MpiProfile:
    """Mechanistic description of one MPI implementation over TCP/IP."""

    name: str
    #: Eager/rendezvous protocol switch (bytes).
    eager_threshold: int
    #: Long-protocol fragment size (bytes).
    fragment_size: int
    #: Fixed sender CPU cost per fragment after the first (seconds).
    fragment_overhead: float
    #: Extra fixed sender cost when entering the rendezvous protocol
    #: (request/ack bookkeeping beyond the link round-trip), seconds.
    rendezvous_overhead: float
    #: TCP congestion/receive window per flow (bytes).  Defines M2.
    tcp_window: int
    #: Destination-port buffering before incast losses begin (bytes).
    #: Defines M1 ~ incast_threshold / (number of concurrent senders).
    incast_threshold: int
    #: Base TCP retransmission timeout (seconds); escalations are
    #: ``rto_base + U(0, rto_jitter)``, matching the paper's "up to 0.25 s".
    rto_base: float = 0.2
    rto_jitter: float = 0.05
    #: Peak escalation probability *per flow* once the port backlog far
    #: exceeds the incast threshold.  Kept small: with ~15 concurrent
    #: gather flows the run-level escalation probability is roughly
    #: ``1 - (1 - p)^flows``, and the paper's escalations are
    #: non-deterministic — many runs stay clean even mid-region.
    escalation_p_max: float = 0.1
    #: Escalations require at least this many distinct concurrent senders
    #: at one port (a single self-clocked stream never RTOs).
    min_incast_senders: int = 2

    # -- derived quantities ---------------------------------------------------
    def m1(self, n_senders: int) -> float:
        """Escalation-onset message size for ``n_senders`` concurrent flows."""
        if n_senders < self.min_incast_senders:
            return float("inf")
        return self.incast_threshold / float(n_senders)

    @property
    def m2(self) -> float:
        """Message size where gather's sum regime starts.

        This is the eager/rendezvous protocol switch: beyond it a
        sequential-receive gather serializes its senders completely (each
        waits for the root's matching receive), ending the incast storms
        and steepening the slope.  The paper measures it as 65 KB under
        LAM (eager limit 64 KB) and 125 KB under MPICH (eager limit
        128 KB).
        """
        return float(self.eager_threshold)

    def uses_rendezvous(self, nbytes: int) -> bool:
        """True when a message of ``nbytes`` uses the long protocol."""
        return nbytes > self.eager_threshold

    def fragments(self, nbytes: int) -> int:
        """Number of long-protocol fragments for ``nbytes``."""
        if nbytes <= 0:
            return 1
        return -(-nbytes // self.fragment_size)  # ceil division

    def sender_protocol_overhead(self, nbytes: int) -> float:
        """Fixed extra sender CPU for protocol effects (no handshake wait)."""
        if not self.uses_rendezvous(nbytes):
            return 0.0
        return self.rendezvous_overhead + self.fragment_overhead * (self.fragments(nbytes) - 1)

    def escalation_probability(self, backlog_bytes: float, n_senders: int) -> float:
        """Probability a newly queued flow suffers an RTO escalation.

        Grows linearly from 0 at the incast threshold, saturating at
        ``escalation_p_max`` when the backlog reaches twice the threshold —
        the paper's "the probability [of fitting the linear model] becomes
        less with the growth of message size".
        """
        if n_senders < self.min_incast_senders:
            return 0.0
        excess = backlog_bytes - self.incast_threshold
        if excess <= 0:
            return 0.0
        return min(self.escalation_p_max, self.escalation_p_max * excess / self.incast_threshold)

    def with_overrides(self, **kwargs) -> "MpiProfile":
        """A copy with selected fields replaced (ablation helper)."""
        return replace(self, **kwargs)


#: LAM 7.1.3 over TCP: eager/rendezvous at 64 KB, 64 KB TCP window
#: (=> M2 = 65 KB in paper units), incast onset near 4 KB for 15 senders.
LAM_7_1_3 = MpiProfile(
    name="LAM 7.1.3",
    eager_threshold=64 * KB,
    fragment_size=64 * KB,
    fragment_overhead=120e-6,
    rendezvous_overhead=250e-6,
    tcp_window=65 * KB,
    incast_threshold=60 * KB,
)

#: MPICH 1.2.7 (ch_p4): rendezvous at 128 KB, larger socket buffers
#: (=> M2 = 125 KB), incast onset near 3 KB for 15 senders.
MPICH_1_2_7 = MpiProfile(
    name="MPICH 1.2.7",
    eager_threshold=128 * KB,
    fragment_size=64 * KB,
    fragment_overhead=100e-6,
    rendezvous_overhead=300e-6,
    tcp_window=125 * KB,
    incast_threshold=45 * KB,
)

#: Open MPI 1.2-era defaults (used for the scatter-leap observation the
#: paper attributes to "LAM and Open MPI").
OPEN_MPI = MpiProfile(
    name="Open MPI",
    eager_threshold=64 * KB,
    fragment_size=32 * KB,
    fragment_overhead=80e-6,
    rendezvous_overhead=200e-6,
    tcp_window=64 * KB,
    incast_threshold=56 * KB,
)

#: No protocol irregularities at all: pure extended-LMO hardware.  Used by
#: ablation benches (DESIGN.md D1-D3) and exactness tests.
IDEAL = MpiProfile(
    name="ideal",
    eager_threshold=1 << 60,
    fragment_size=1 << 60,
    fragment_overhead=0.0,
    rendezvous_overhead=0.0,
    tcp_window=1 << 60,
    incast_threshold=1 << 60,
    escalation_p_max=0.0,
)
