"""repro — the extended LMO communication performance model, reproduced.

A full implementation of Lastovetsky, Rychkov & O'Flynn, *Revisiting
communication performance models for computational clusters* (IPDPS
2009), on a simulated single-switch heterogeneous cluster:

- :mod:`repro.simlib` — discrete-event simulation kernel
- :mod:`repro.cluster` — the Table I cluster, MPI/TCP profiles, topology
- :mod:`repro.mpi` — mpi4py-style rank programs and collective algorithms
- :mod:`repro.models` — Hockney / LogP / LogGP / PLogP / LMO models and
  their collective prediction formulas
- :mod:`repro.estimation` — parameter estimation (the paper's eqs. 6-12),
  schedules, empirical thresholds, drift detection
- :mod:`repro.stats` — confidence intervals and adaptive repetition
- :mod:`repro.benchlib` — MPIBlib-style benchmarking
- :mod:`repro.optimize` — model-driven selection, splitting, mapping,
  partitioning, planning
- :mod:`repro.apps` — mini-applications (matvec, Jacobi)
- :mod:`repro.analysis` — prediction-accuracy scoring
- :mod:`repro.experiments` — one harness per paper table/figure
- :mod:`repro.io` — JSON model serialization
- :mod:`repro.cli` — ``python -m repro`` command-line interface

Quickstart::

    from repro.cluster import LAM_7_1_3, SimulatedCluster, table1_cluster
    from repro.estimation import DESEngine, estimate_extended_lmo
    from repro.models import predict_linear_scatter
    from repro.mpi import run_collective

    cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3, seed=0)
    model = estimate_extended_lmo(DESEngine(cluster), reps=3, clamp=True).model
    predicted = predict_linear_scatter(model, 64 * 1024)
    observed = run_collective(cluster, "scatter", "linear", 64 * 1024).time
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
