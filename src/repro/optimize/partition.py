"""Model-based heterogeneous data partitioning.

The reason the paper's group builds heterogeneous communication models in
the first place: to distribute work so that *communication + computation*
finishes simultaneously everywhere.  Given an extended LMO model and a
per-node compute rate, find per-rank byte counts ``b_i`` minimizing the
makespan of "linear scatterv, then every rank processes its block":

    finish_i = sum_{j != r} (C_r + b_j t_r)              (root send slots)
             + L_ri + b_i / beta_ri + C_i + b_i t_i      (delivery of i)
             + b_i w_i                                   (compute)
    finish_r = sum_{j != r} (C_r + b_j t_r) + b_r w_r    (root computes last)

All constraints are linear in ``b``, so the min-makespan distribution is
a small linear program (variables ``b, T``; objective ``min T``), solved
with scipy.  Fast nodes behind slow links get less; the root — which pays
no wire — usually gets more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.models.base import validate_rank
from repro.models.lmo_extended import ExtendedLMOModel

__all__ = [
    "Partition",
    "even_partition",
    "optimal_partition",
    "partition_makespan",
    "run_partitioned_workload",
]


@dataclass(frozen=True)
class Partition:
    """A data distribution and its predicted makespan."""

    counts: tuple[int, ...]
    predicted_makespan: float
    root: int

    @property
    def total(self) -> int:
        return sum(self.counts)


def _finish_times(
    model: ExtendedLMOModel,
    counts: Sequence[float],
    work_rate: Sequence[float],
    root: int,
) -> np.ndarray:
    """Per-rank finish times of scatterv+compute under the LMO model."""
    n = model.n
    b = np.asarray(counts, dtype=float)
    work = np.asarray(work_rate, dtype=float)
    others = np.arange(n) != root
    serial = float(model.send_cost_batch(root, b[others]).sum())
    # Whole-cluster delivery terms in one vector pass; the root's bogus
    # self-link term (possibly 0/0) is overwritten right after.
    with np.errstate(divide="ignore", invalid="ignore"):
        finishes = (
            serial
            + model.L[root]
            + b / model.beta[root]
            + model.C
            + b * model.t
            + b * work
        )
    finishes[root] = serial + b[root] * work[root]
    return finishes


def partition_makespan(
    model: ExtendedLMOModel,
    counts: Sequence[float],
    work_rate: Sequence[float],
    root: int = 0,
    collect_ratio: float = 0.0,
) -> float:
    """Predicted makespan of a given distribution.

    ``collect_ratio > 0`` adds the serialized gatherv return leg (see
    :func:`optimal_partition`).
    """
    validate_rank(model.n, root)
    if len(counts) != model.n or len(work_rate) != model.n:
        raise ValueError(f"counts and work_rate must have {model.n} entries")
    makespan = float(_finish_times(model, counts, work_rate, root).max())
    if collect_ratio > 0:
        makespan += (model.n - 1) * float(model.C[root]) + sum(
            collect_ratio
            * counts[j]
            * (model.t[j] + 1.0 / model.beta[root, j] + model.t[root])
            for j in range(model.n)
            if j != root
        )
    return makespan


def even_partition(n: int, total: int, root: int = 0) -> list[int]:
    """The naive model-free distribution: equal blocks (+remainders)."""
    base = total // n
    counts = [base] * n
    for idx in range(total - base * n):
        counts[(root + idx) % n] += 1
    return counts


def optimal_partition(
    model: ExtendedLMOModel,
    total: int,
    work_rate: Sequence[float],
    root: int = 0,
    min_count: int = 0,
    collect_ratio: float = 0.0,
) -> Partition:
    """Min-makespan distribution of ``total`` bytes (linear program).

    Parameters
    ----------
    work_rate:
        Per-node compute cost in seconds/byte (0 = pure communication —
        in that degenerate case everything lands on the root, which pays
        no wire).
    min_count:
        Lower bound per rank (e.g. 1 to force participation).
    collect_ratio:
        Result bytes produced per input byte.  When positive, a serialized
        gatherv return leg (``collect_ratio * b_i`` bytes from every rank
        back to the root, summed — the pessimistic bound) is added to the
        makespan, so compute-heavy ranks far from the root get trimmed
        further.

    Notes
    -----
    LP formulation with variables ``(b_0..b_{n-1}, T)``: minimize ``T``
    subject to ``finish_i(b) <= T`` (linear), ``sum b = total``,
    ``b_i >= min_count``.
    """
    n = model.n
    validate_rank(n, root)
    work = np.asarray(work_rate, dtype=float)
    if work.shape != (n,):
        raise ValueError(f"work_rate must have {n} entries")
    if (work < 0).any():
        raise ValueError("negative work rates")
    if total < n * min_count:
        raise ValueError(f"total {total} cannot satisfy min_count {min_count}")
    if collect_ratio < 0:
        raise ValueError(f"collect_ratio must be >= 0, got {collect_ratio}")

    # finish_i = const_i + sum_j coeff_ij * b_j  <=  T
    const = np.zeros(n)
    coeff = np.zeros((n, n))
    serial_const = sum(model.C[root] for j in range(n) if j != root)
    for i in range(n):
        const[i] = serial_const
        for j in range(n):
            if j != root:
                coeff[i, j] += model.t[root]  # root send slot per byte of b_j
        if i == root:
            coeff[i, i] += work[i]
        else:
            const[i] += model.L[root, i] + model.C[i]
            coeff[i, i] += 1.0 / model.beta[root, i] + model.t[i] + work[i]
        if collect_ratio > 0:
            # Serialized gatherv return: every rank's result crosses the
            # root's port and CPU — the same sum-bound, added everywhere.
            const[i] += (n - 1) * model.C[root]
            for j in range(n):
                if j != root:
                    coeff[i, j] += collect_ratio * (
                        model.t[j]
                        + 1.0 / model.beta[root, j]
                        + model.t[root]
                    )

    # Variables x = (b, T); minimize T.
    c = np.zeros(n + 1)
    c[-1] = 1.0
    a_ub = np.hstack([coeff, -np.ones((n, 1))])
    b_ub = -const
    a_eq = np.zeros((1, n + 1))
    a_eq[0, :n] = 1.0
    b_eq = [float(total)]
    bounds = [(float(min_count), None)] * n + [(0.0, None)]
    solution = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
                       method="highs")
    if not solution.success:  # pragma: no cover - LP is always feasible here
        raise RuntimeError(f"partition LP failed: {solution.message}")

    # Round to integers preserving the total (largest-remainder method).
    raw = solution.x[:n]
    floored = np.floor(raw).astype(int)
    deficit = int(total - floored.sum())
    order = np.argsort(-(raw - floored))
    for idx in order[:deficit]:
        floored[idx] += 1
    counts = tuple(int(v) for v in floored)
    return Partition(
        counts=counts,
        predicted_makespan=partition_makespan(model, counts, work, root,
                                              collect_ratio=collect_ratio),
        root=root,
    )


def run_partitioned_workload(
    cluster,
    counts: Sequence[int],
    work_rate: Sequence[float],
    root: int = 0,
) -> float:
    """Execute scatterv + per-rank compute on the simulated cluster.

    The validation counterpart of :func:`optimal_partition`: each rank
    receives its block through the real transport, then holds its CPU for
    ``counts[rank] * work_rate[rank]`` seconds of "computation".  Returns
    the observed makespan.
    """
    from repro.mpi.collectives import linear
    from repro.mpi.runtime import run_ranks

    if len(counts) != cluster.n or len(work_rate) != cluster.n:
        raise ValueError(f"counts and work_rate must have {cluster.n} entries")

    def factory(rank: int):
        def program(comm):
            yield from linear.scatterv(comm, root, counts)
            cost = cluster.noisy(counts[rank] * work_rate[rank])
            yield from cluster.cpu[rank].hold(cluster.sim, cost)
            return None

        return program

    results = run_ranks(cluster, {rank: factory(rank) for rank in range(cluster.n)})
    return max(res.finish for res in results.values())
