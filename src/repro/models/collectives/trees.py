"""Communication trees for collective algorithms (paper Fig. 2).

A :class:`CommTree` describes who sends how many data blocks to whom in a
tree-structured collective.  The same structure drives

* the MPI-layer algorithms (:mod:`repro.mpi.collectives.binomial`),
* the analytical predictions (:mod:`repro.models.collectives.tree_eval`,
  implementing the paper's recursive formula (1)), and
* the heterogeneous processor-to-node mapping optimization
  (:mod:`repro.optimize.mapping`) via :meth:`CommTree.remap`.

:func:`binomial_tree` reproduces the paper's Figure 2 exactly for
``n = 16``: the root's children receive 8, 4, 2, 1 blocks (largest first),
and sub-trees of equal order cover disjoint rank ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Optional, Sequence

__all__ = ["CommTree", "binomial_tree", "flat_tree"]


@dataclass(frozen=True)
class CommTree:
    """A rooted communication tree over ranks ``0..n-1``.

    Attributes
    ----------
    n:
        Number of participating ranks.
    root:
        The root rank (data source for scatter, sink for gather).
    parent:
        ``parent[r]`` is the parent rank of ``r`` (``None`` for the root).
    children:
        ``children[r]`` lists ``(child_rank, blocks)`` pairs in *send
        order* — for binomial scatter, largest sub-tree first, as the
        paper prescribes ("the largest messages 2^k M are sent first").
    """

    n: int
    root: int
    parent: tuple[Optional[int], ...]
    children: tuple[tuple[tuple[int, int], ...], ...]

    def __post_init__(self) -> None:
        if not (0 <= self.root < self.n):
            raise ValueError(f"root {self.root} out of range")
        if len(self.parent) != self.n or len(self.children) != self.n:
            raise ValueError("parent/children arrays must have length n")
        if self.parent[self.root] is not None:
            raise ValueError("root must have no parent")
        reached = {self.root}
        for rank, kids in enumerate(self.children):
            for child, blocks in kids:
                if self.parent[child] != rank:
                    raise ValueError(f"parent/children mismatch at arc {rank}->{child}")
                if blocks < 1:
                    raise ValueError(f"arc {rank}->{child} carries {blocks} blocks")
                if child in reached:
                    raise ValueError(f"rank {child} reached twice")
                reached.add(child)
        if len(reached) != self.n:
            raise ValueError("tree does not span all ranks")

    # -- structure queries ----------------------------------------------------
    def arcs(self) -> Iterator[tuple[int, int, int]]:
        """All ``(parent, child, blocks)`` arcs, parents before children."""
        stack = [self.root]
        while stack:
            rank = stack.pop()
            for child, blocks in self.children[rank]:
                yield rank, child, blocks
                stack.append(child)

    def blocks_into(self, rank: int) -> int:
        """Blocks received from the parent (``n`` for the root: it owns all)."""
        if rank == self.root:
            return self.n
        parent = self.parent[rank]
        assert parent is not None
        for child, blocks in self.children[parent]:
            if child == rank:
                return blocks
        raise AssertionError("unreachable: validated in __post_init__")

    def subtree_ranks(self, rank: int) -> list[int]:
        """Ranks of the sub-tree rooted at ``rank`` (pre-order, rank first)."""
        out = [rank]
        for child, _blocks in self.children[rank]:
            out.extend(self.subtree_ranks(child))
        return out

    def depth(self) -> int:
        """Longest root-to-leaf arc count (``log2 n`` for binomial trees)."""

        def _depth(rank: int) -> int:
            kids = self.children[rank]
            return 1 + max((_depth(c) for c, _b in kids), default=-1)

        return _depth(self.root)

    def remap(self, perm: Sequence[int]) -> "CommTree":
        """Relabel tree nodes: position ``v`` of the tree gets rank ``perm[v]``.

        Used by the mapping optimization: the tree *shape* (who talks to
        whom, with how many blocks) is fixed by the algorithm, but which
        physical processor sits at which tree node is free on a
        heterogeneous cluster.
        """
        if sorted(perm) != list(range(self.n)):
            raise ValueError("perm must be a permutation of 0..n-1")
        parent: list[Optional[int]] = [None] * self.n
        children: list[tuple[tuple[int, int], ...]] = [()] * self.n
        for rank in range(self.n):
            p = self.parent[rank]
            parent[perm[rank]] = None if p is None else perm[p]
            children[perm[rank]] = tuple((perm[c], b) for c, b in self.children[rank])
        return CommTree(self.n, perm[self.root], tuple(parent), tuple(children))

    def render_ascii(self) -> str:
        """Text rendering of the tree with per-arc block counts (Fig. 2)."""
        lines: list[str] = [f"binomial tree: n={self.n}, root={self.root}"]

        def walk(rank: int, prefix: str) -> None:
            kids = self.children[rank]
            for idx, (child, blocks) in enumerate(kids):
                last = idx == len(kids) - 1
                branch = "`-" if last else "|-"
                lines.append(f"{prefix}{branch} {child} [{blocks} block{'s' if blocks > 1 else ''}]")
                walk(child, prefix + ("   " if last else "|  "))

        lines.append(str(self.root))
        walk(self.root, "")
        return "\n".join(lines)


@lru_cache(maxsize=256)
def binomial_tree(n: int, root: int = 0) -> CommTree:
    """The binomial scatter/gather tree of the paper's Figure 2.

    Works for any ``n >= 1`` (not only powers of two) using the standard
    recursive range halving: the owner of range ``[lo, hi)`` hands the
    upper half ``[mid, hi)`` to rank ``mid`` and recurses.  Ranks are
    *virtual* (relative to the root) and mapped back by rotation, as MPI
    implementations do.

    Trees are immutable, so results are memoized — collective sweeps
    re-request the same ``(n, root)`` tree for every algorithm and size.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range for n={n}")

    parent: list[Optional[int]] = [None] * n
    children: list[list[tuple[int, int]]] = [[] for _ in range(n)]

    def to_rank(vrank: int) -> int:
        return (vrank + root) % n

    def build(lo: int, hi: int) -> None:
        """Node ``lo`` owns virtual range [lo, hi)."""
        while hi - lo > 1:
            mid = lo + (1 << ((hi - lo - 1).bit_length() - 1))
            parent[to_rank(mid)] = to_rank(lo)
            children[to_rank(lo)].append((to_rank(mid), hi - mid))
            build(mid, hi)
            hi = mid

    build(0, n)
    return CommTree(n, root, tuple(parent), tuple(tuple(kids) for kids in children))


@lru_cache(maxsize=256)
def flat_tree(n: int, root: int = 0) -> CommTree:
    """The linear (flat) scatter/gather tree: root talks to everyone.

    Children are ordered ``root+1, root+2, ... (mod n)`` — the send order
    of the linear algorithms — each carrying one block.  Memoized like
    :func:`binomial_tree`.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range for n={n}")
    parent: list[Optional[int]] = [None] * n
    kids: list[tuple[int, int]] = []
    for offset in range(1, n):
        child = (root + offset) % n
        parent[child] = root
        kids.append((child, 1))
    children: list[tuple[tuple[int, int], ...]] = [() for _ in range(n)]
    children[root] = tuple(kids)
    return CommTree(n, root, tuple(parent), tuple(children))
