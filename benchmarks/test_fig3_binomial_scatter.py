"""Fig. 3 bench: binomial scatter vs the Hockney recursion (eqs. 1-2)."""

from conftest import assert_checks

from repro.models import predict_binomial_scatter
from repro.mpi import run_collective

KB = 1024


def test_fig3_shape(experiment_results):
    assert_checks(experiment_results("fig3"))


def test_bench_binomial_scatter_simulation(benchmark, experiment_results, lam_cluster):
    assert_checks(experiment_results("fig3"))

    def kernel():
        return run_collective(lam_cluster, "scatter", "binomial", nbytes=32 * KB).time

    assert benchmark(kernel) > 0


def test_bench_hockney_binomial_recursion(benchmark, experiment_results, model_suite):
    """Kernel: the paper's recursive formula (1) on the 16-node tree."""
    assert_checks(experiment_results("fig3"))

    def kernel():
        return predict_binomial_scatter(model_suite.hockney_het, 32 * KB)

    assert benchmark(kernel) > 0
