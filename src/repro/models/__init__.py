"""Communication performance models: traditional and LMO.

Traditional models (Hockney, LogP, LogGP, PLogP) mix processor and network
contributions; the original LMO model separates the variable ones; the
**extended LMO model** — this reproduction's core — separates all four
(constant/variable x processor/network).
"""

from repro.models.base import CommunicationModel
from repro.models.hockney import HeterogeneousHockneyModel, HockneyModel
from repro.models.loggp import LogGPModel
from repro.models.logp import LogPModel
from repro.models.lmo import LMOModel
from repro.models.lmo_extended import ExtendedLMOModel, GatherIrregularity
from repro.models.plogp import PiecewiseLinear, PLogPModel
from repro.models.collectives.formulas import (
    GatherPrediction,
    predict_binomial_gather,
    predict_binomial_gather_sweep,
    predict_binomial_scatter,
    predict_binomial_scatter_sweep,
    predict_binomial_scatterv,
    predict_linear_gather,
    predict_linear_gather_sweep,
    predict_linear_gatherv,
    predict_linear_pipelined,
    predict_linear_scatterv,
    predict_linear_scatter,
    predict_linear_scatter_sweep,
)
from repro.models.collectives.formulas_ext import (
    predict_binomial_bcast,
    predict_collective,
    predict_collective_sweep,
    predict_linear_bcast,
    predict_pipeline_bcast,
    predict_rd_allgather,
    predict_rd_allreduce,
    predict_reduce_bcast_allreduce,
    predict_ring_allgather,
)
from repro.models.collectives.tree_eval import predict_tree_time, predict_tree_time_batch
from repro.models.collectives.trees import CommTree, binomial_tree, flat_tree

__all__ = [
    "CommTree",
    "CommunicationModel",
    "ExtendedLMOModel",
    "GatherIrregularity",
    "GatherPrediction",
    "HeterogeneousHockneyModel",
    "HockneyModel",
    "LMOModel",
    "LogGPModel",
    "LogPModel",
    "PLogPModel",
    "PiecewiseLinear",
    "binomial_tree",
    "flat_tree",
    "predict_binomial_bcast",
    "predict_binomial_gather",
    "predict_binomial_gather_sweep",
    "predict_binomial_scatter",
    "predict_binomial_scatter_sweep",
    "predict_binomial_scatterv",
    "predict_linear_gather",
    "predict_linear_gather_sweep",
    "predict_linear_gatherv",
    "predict_linear_pipelined",
    "predict_linear_scatter",
    "predict_linear_scatter_sweep",
    "predict_linear_scatterv",
    "predict_collective",
    "predict_collective_sweep",
    "predict_linear_bcast",
    "predict_pipeline_bcast",
    "predict_rd_allgather",
    "predict_rd_allreduce",
    "predict_reduce_bcast_allreduce",
    "predict_ring_allgather",
    "predict_tree_time",
    "predict_tree_time_batch",
]
