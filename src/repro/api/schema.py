"""Versioned request/response schema — the one serialization of the API.

Every typed result :mod:`repro.api` returns, every ``--format json``
payload the CLI prints, and every line of the :mod:`repro.serve` wire
protocol is the ``to_dict()`` form of a dataclass in this module, so a
wire reply and an in-process result round-trip to the *same* JSON
(golden-file tested in ``tests/api/test_schema.py``).

Documents are self-describing::

    {"kind": "prediction", "schema_version": 3, "operation": ..., ...}

``schema_version`` counts the whole API surface (v1 was the legacy
``repro-model`` envelope, v2 the model JSON of :mod:`repro.io`; v3 adds
the request/response documents).  :func:`parse` dispatches any document
on its ``kind``; ``from_dict`` on each class validates the envelope and
rejects version mismatches with :class:`~repro.api.errors.InvalidRequest`.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import Any, ClassVar, Mapping, Optional, Sequence

from repro.api.errors import InvalidRequest

__all__ = [
    "SCHEMA_VERSION",
    "SchemaDocument",
    "Prediction",
    "PredictionBatch",
    "Measurement",
    "EstimateOutcome",
    "GatherOptimization",
    "PredictParams",
    "PredictManyParams",
    "EstimateParams",
    "OptimizeParams",
    "parse",
]

#: Version stamped into (and required of) every document.
SCHEMA_VERSION = 3

#: kind -> dataclass, populated by ``__init_subclass__``.
_KINDS: dict[str, type["SchemaDocument"]] = {}


@dataclass(frozen=True)
class SchemaDocument:
    """Base for every versioned document: one ``kind``, one dict shape.

    ``to_dict()`` emits ``kind`` + ``schema_version`` + the dataclass
    fields (in declaration order); ``from_dict`` validates the envelope,
    fills defaults, and ignores unknown keys (forward compatibility —
    derived keys like ``speedups`` stay re-computable properties).
    """

    kind: ClassVar[str] = ""
    #: Fields excluded from the dict form (non-serializable payloads).
    _exclude: ClassVar[tuple[str, ...]] = ()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind:
            _KINDS[cls.kind] = cls

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "schema_version": SCHEMA_VERSION}
        for field in fields(self):
            if field.name in self._exclude:
                continue
            value = getattr(self, field.name)
            doc[field.name] = _plain(value)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> Any:
        if not isinstance(doc, Mapping):
            raise InvalidRequest(f"{cls.kind} document must be an object, "
                                 f"got {type(doc).__name__}")
        version = doc.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise InvalidRequest(
                f"unsupported schema_version {version!r} (this build speaks "
                f"{SCHEMA_VERSION})"
            )
        got_kind = doc.get("kind", cls.kind)
        if got_kind != cls.kind:
            raise InvalidRequest(f"expected a {cls.kind!r} document, got {got_kind!r}")
        kwargs: dict[str, Any] = {}
        for field in fields(cls):
            if field.name in cls._exclude:
                continue
            if field.name in doc:
                kwargs[field.name] = doc[field.name]
            elif field.default is MISSING and field.default_factory is MISSING:
                raise InvalidRequest(f"{cls.kind} document missing field "
                                     f"{field.name!r}")
        try:
            return cls(**cls._coerce(kwargs))
        except InvalidRequest:
            raise
        except (TypeError, ValueError) as exc:
            raise InvalidRequest(f"bad {cls.kind} document: {exc}") from exc

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        """Hook for per-class field coercion (lists -> tuples, ...)."""
        return kwargs


def _plain(value: Any) -> Any:
    """JSON-ready view of a field value (tuples become lists)."""
    if isinstance(value, tuple):
        return [_plain(v) for v in value]
    if isinstance(value, SchemaDocument):
        return value.to_dict()
    return value


def parse(doc: Mapping[str, Any]) -> Any:
    """Dispatch any schema-v3 document on its ``kind``."""
    if not isinstance(doc, Mapping):
        raise InvalidRequest(f"schema document must be an object, "
                             f"got {type(doc).__name__}")
    kind = doc.get("kind")
    cls = _KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise InvalidRequest(f"unknown document kind {kind!r}; "
                             f"known: {sorted(_KINDS)}")
    return cls.from_dict(doc)


# -- responses ------------------------------------------------------------------
@dataclass(frozen=True)
class Prediction(SchemaDocument):
    """One predicted collective (or point-to-point) time."""

    kind: ClassVar[str] = "prediction"

    operation: str
    algorithm: str
    nbytes: float
    root: int
    seconds: float
    #: Gather regime ("small" / "medium" / "large") when the model carries
    #: an empirical irregularity; None otherwise.
    regime: Optional[str] = None
    escalation_probability: Optional[float] = None

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        kwargs["nbytes"] = float(kwargs["nbytes"])
        kwargs["seconds"] = float(kwargs["seconds"])
        kwargs["root"] = int(kwargs["root"])
        return kwargs


@dataclass(frozen=True)
class PredictionBatch(SchemaDocument):
    """Predicted times for a heterogeneous batch, in request order."""

    kind: ClassVar[str] = "prediction_batch"

    seconds: tuple[float, ...]

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        kwargs["seconds"] = tuple(float(s) for s in kwargs["seconds"])
        return kwargs


@dataclass(frozen=True)
class Measurement(SchemaDocument):
    """One benchmarked collective time with its confidence interval."""

    kind: ClassVar[str] = "measurement"

    operation: str
    algorithm: str
    nbytes: int
    root: int
    mean: float
    ci_halfwidth: float
    reps: int
    confidence: float

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        kwargs["nbytes"] = int(kwargs["nbytes"])
        return kwargs


@dataclass(frozen=True)
class EstimateOutcome(SchemaDocument):
    """An estimated model plus what the estimation cost.

    The model object itself never serializes here (model JSON is the
    schema-v2 envelope of :mod:`repro.io`); a document round-tripped
    through ``from_dict`` carries ``model=None``.
    """

    kind: ClassVar[str] = "estimate_outcome"
    _exclude: ClassVar[tuple[str, ...]] = ("model",)

    model: object
    model_name: str
    n: int
    #: Simulated cluster seconds consumed by the estimation procedure.
    estimation_time: float

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        kwargs.setdefault("model", None)
        return kwargs


@dataclass(frozen=True)
class GatherOptimization(SchemaDocument):
    """Predicted effect of model-based gather message-splitting (Fig. 7)."""

    kind: ClassVar[str] = "gather_optimization"

    root: int
    sizes: tuple[float, ...]
    chunk_counts: tuple[int, ...]
    native_seconds: tuple[float, ...]
    optimized_seconds: tuple[float, ...]

    @property
    def speedups(self) -> tuple[float, ...]:
        """native / optimized per size (1.0 where no split applies)."""
        return tuple(
            native / opt if opt > 0 else 1.0
            for native, opt in zip(self.native_seconds, self.optimized_seconds)
        )

    def to_dict(self) -> dict[str, Any]:
        doc = super().to_dict()
        doc["speedups"] = list(self.speedups)  # derived, re-computed on load
        return doc

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        kwargs["sizes"] = tuple(float(v) for v in kwargs["sizes"])
        kwargs["chunk_counts"] = tuple(int(v) for v in kwargs["chunk_counts"])
        kwargs["native_seconds"] = tuple(float(v) for v in kwargs["native_seconds"])
        kwargs["optimized_seconds"] = tuple(
            float(v) for v in kwargs["optimized_seconds"]
        )
        return kwargs


# -- requests -------------------------------------------------------------------
@dataclass(frozen=True)
class PredictParams(SchemaDocument):
    """Parameters of one ``predict`` request.

    ``model`` names a model in the server's registry (in-process callers
    pass the object itself to :func:`repro.api.predict` instead).
    """

    kind: ClassVar[str] = "predict_params"

    model: str
    operation: str
    algorithm: str
    nbytes: float
    root: int = 0
    dest: Optional[int] = None

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        if not isinstance(kwargs.get("model"), str):
            raise InvalidRequest("predict_params.model must be a string name")
        kwargs["nbytes"] = float(kwargs["nbytes"])
        kwargs["root"] = int(kwargs.get("root", 0))
        if kwargs.get("dest") is not None:
            kwargs["dest"] = int(kwargs["dest"])
        return kwargs


@dataclass(frozen=True)
class PredictManyParams(SchemaDocument):
    """Parameters of one ``predict_many`` request: a request batch."""

    kind: ClassVar[str] = "predict_many_params"

    model: str
    requests: tuple["PredictParams", ...]

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        if not isinstance(kwargs.get("model"), str):
            raise InvalidRequest("predict_many_params.model must be a string name")
        reqs = kwargs.get("requests")
        if not isinstance(reqs, Sequence) or isinstance(reqs, (str, bytes)):
            raise InvalidRequest("predict_many_params.requests must be a list")
        out = []
        for item in reqs:
            if isinstance(item, PredictParams):
                out.append(item)
            else:
                merged = dict(item) if isinstance(item, Mapping) else None
                if merged is None:
                    raise InvalidRequest("each request must be an object")
                merged.setdefault("model", kwargs["model"])
                out.append(PredictParams.from_dict(merged))
        kwargs["requests"] = tuple(out)
        return kwargs


@dataclass(frozen=True)
class EstimateParams(SchemaDocument):
    """Parameters of one ``estimate`` request (server-side estimation)."""

    kind: ClassVar[str] = "estimate_params"

    model: str = "lmo"
    profile: str = "lam"
    nodes: Optional[int] = None
    seed: int = 0
    reps: int = 3
    quick: bool = False
    empirical: bool = False
    #: Registry name for the estimated model (default ``<model>-<n>``).
    register_as: Optional[str] = None

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        kwargs["seed"] = int(kwargs.get("seed", 0))
        kwargs["reps"] = int(kwargs.get("reps", 3))
        if kwargs.get("nodes") is not None:
            kwargs["nodes"] = int(kwargs["nodes"])
        return kwargs


@dataclass(frozen=True)
class OptimizeParams(SchemaDocument):
    """Parameters of one ``optimize`` (gather-splitting) request."""

    kind: ClassVar[str] = "optimize_params"

    model: str
    sizes: tuple[float, ...]
    root: int = 0
    safety: float = 0.9

    @classmethod
    def _coerce(cls, kwargs: dict[str, Any]) -> dict[str, Any]:
        if not isinstance(kwargs.get("model"), str):
            raise InvalidRequest("optimize_params.model must be a string name")
        sizes = kwargs.get("sizes")
        if not isinstance(sizes, Sequence) or isinstance(sizes, (str, bytes)):
            raise InvalidRequest("optimize_params.sizes must be a list of numbers")
        kwargs["sizes"] = tuple(float(v) for v in sizes)
        kwargs["root"] = int(kwargs.get("root", 0))
        kwargs["safety"] = float(kwargs.get("safety", 0.9))
        return kwargs
