"""Deterministic instrumentation profiler for the DES kernel and service
hot paths.

Sampling profilers answer "where was the program, statistically"; this
one answers "exactly which frames ran, how many times, for how long" —
*deterministic* in the sense of instrumentation-based: frame counts are
exact and reproducible run to run (the DES kernel is seeded, so two runs
execute the same events in the same order), and with an injected clock
the timings reproduce too (the unit tests exploit this).

Three layers:

* :class:`Profiler` — an explicit frame stack.  ``begin(name)`` /
  ``end()`` (or ``with profiler.frame(name):``) accumulate, per unique
  stack, the *self* time of its leaf, plus per-frame-name counts,
  cumulative and self time.  Thread-safe by construction: each thread
  gets its own stack and accumulators (no per-event locking on the hot
  path); ``stats()`` merges them.
* kernel hook — :class:`repro.simlib.kernel.Simulator` carries a
  ``profiler`` attribute (``None`` by default; the disabled cost is one
  attribute load and an ``is None`` branch per event, covered by the
  ``BENCH_obs.json`` overhead gate).  When attached, every popped event
  is timed under a frame named for its event type and — for process
  resumptions — the process it resumes: ``Timeout``,
  ``Event→proc:recv@3``, ...  That is the per-event-type / per-handler
  attribution the kernel-optimization work needs.
* exports — :meth:`Profiler.collapsed` (Brendan-Gregg collapsed-stack
  lines, ``flamegraph.pl``-ready) and :meth:`Profiler.speedscope`
  (a https://speedscope.app document), plus :meth:`Profiler.to_dict`
  for the JSON the CLI and the benchmark write.

Like the rest of :mod:`repro.obs` the module is stdlib-only and guarded
by a module-level switchboard: instrumentation points read
``prof.ACTIVE`` and do nothing else when it is ``None``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "ACTIVE",
    "FrameStat",
    "Profiler",
    "disable_profiler",
    "enable_profiler",
    "profiling",
]


@dataclass
class FrameStat:
    """Aggregated view of one frame name across every stack it appears in."""

    name: str
    count: int = 0
    cum_ns: int = 0
    self_ns: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "cum_ns": self.cum_ns,
            "self_ns": self.self_ns,
        }


class _ThreadState:
    """One thread's frame stack and accumulators (lock-free on push/pop)."""

    __slots__ = ("stack", "stacks", "counts", "cum", "self_ns", "active")

    def __init__(self) -> None:
        #: Open frames: [name, start_ns, child_ns, stack_key].
        self.stack: list[list[Any]] = []
        #: stack tuple -> accumulated self ns of its leaf.
        self.stacks: dict[tuple[str, ...], int] = {}
        #: frame name -> times entered.
        self.counts: dict[str, int] = {}
        #: frame name -> cumulative ns (outermost occurrences only).
        self.cum: dict[str, int] = {}
        #: frame name -> self ns.
        self.self_ns: dict[str, int] = {}
        #: frame name -> currently-open occurrences (recursion guard).
        self.active: dict[str, int] = {}


class Profiler:
    """Exact frame-stack profiler with collapsed-stack/speedscope export.

    ``clock_ns`` defaults to :func:`time.perf_counter_ns`; inject a fake
    for fully deterministic timings in tests.
    """

    def __init__(self, clock_ns: Callable[[], int] = time.perf_counter_ns):
        self.clock_ns = clock_ns
        self.events_recorded = 0
        self._lock = threading.Lock()
        self._states: list[_ThreadState] = []
        self._local = threading.local()

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadState()
            self._local.state = state
            with self._lock:
                self._states.append(state)
        return state

    # -- the hot path ---------------------------------------------------------
    def begin(self, name: str) -> None:
        """Open a frame named ``name`` under the current stack."""
        state = self._state()
        parent_key = state.stack[-1][3] if state.stack else ()
        state.active[name] = state.active.get(name, 0) + 1
        state.stack.append([name, self.clock_ns(), 0, parent_key + (name,)])

    def end(self) -> None:
        """Close the innermost open frame and accumulate its times."""
        state = self._state()
        name, start_ns, child_ns, key = state.stack.pop()
        elapsed = self.clock_ns() - start_ns
        self_ns = elapsed - child_ns
        if state.stack:
            state.stack[-1][2] += elapsed
        state.stacks[key] = state.stacks.get(key, 0) + self_ns
        state.counts[name] = state.counts.get(name, 0) + 1
        state.self_ns[name] = state.self_ns.get(name, 0) + self_ns
        # Cumulative time counts outermost occurrences only, so direct or
        # indirect recursion is not double-billed.
        state.active[name] -= 1
        if state.active[name] == 0:
            state.cum[name] = state.cum.get(name, 0) + elapsed

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        """``with profiler.frame("sim.run"):`` — exception-safe begin/end."""
        self.begin(name)
        try:
            yield
        finally:
            self.end()

    # -- the kernel hook ------------------------------------------------------
    # Called by Simulator.step() around event._fire(); the frame name
    # attributes time to the event type and, for process resumptions, the
    # process being resumed (the *handler*).
    def event_begin(self, event: Any) -> None:
        self.events_recorded += 1
        name = type(event).__name__
        callbacks = event.callbacks
        if callbacks:
            owner = getattr(callbacks[0], "__self__", None)
            pname = getattr(owner, "name", None)
            if pname:
                name = f"{name}→proc:{pname}"
        self.begin(name)

    def event_end(self) -> None:
        self.end()

    # -- reading --------------------------------------------------------------
    def _merged_states(self) -> _ThreadState:
        merged = _ThreadState()
        with self._lock:
            states = list(self._states)
        for state in states:
            for key, ns in state.stacks.items():
                merged.stacks[key] = merged.stacks.get(key, 0) + ns
            for table, into in (
                (state.counts, merged.counts),
                (state.cum, merged.cum),
                (state.self_ns, merged.self_ns),
            ):
                for name, value in table.items():
                    into[name] = into.get(name, 0) + value
        return merged

    def stats(self) -> dict[str, FrameStat]:
        """Per-frame-name aggregates, merged across threads."""
        merged = self._merged_states()
        out: dict[str, FrameStat] = {}
        for name, count in merged.counts.items():
            out[name] = FrameStat(
                name=name,
                count=count,
                cum_ns=merged.cum.get(name, 0),
                self_ns=merged.self_ns.get(name, 0),
            )
        return out

    def total_ns(self) -> int:
        """Self time summed over every stack (= total profiled time)."""
        return sum(self._merged_states().stacks.values())

    def collapsed(self) -> str:
        """Collapsed-stack lines (``a;b;c <self_ns>``), sorted, one per
        unique stack — pipe into ``flamegraph.pl`` or speedscope."""
        merged = self._merged_states()
        lines = [
            ";".join(key) + f" {ns}"
            for key, ns in sorted(merged.stacks.items())
            if ns > 0
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> dict[str, Any]:
        """A speedscope-format document of the collapsed stacks
        (``"sampled"`` profile; weights are exact self-nanoseconds)."""
        merged = self._merged_states()
        frame_index: dict[str, int] = {}
        frames: list[dict[str, str]] = []
        samples: list[list[int]] = []
        weights: list[int] = []
        for key, ns in sorted(merged.stacks.items()):
            if ns <= 0:
                continue
            sample = []
            for frame_name in key:
                if frame_name not in frame_index:
                    frame_index[frame_name] = len(frames)
                    frames.append({"name": frame_name})
                sample.append(frame_index[frame_name])
            samples.append(sample)
            weights.append(ns)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }],
            "exporter": "repro.obs.prof",
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary: per-frame table plus totals."""
        stats = sorted(self.stats().values(),
                       key=lambda s: (-s.self_ns, s.name))
        return {
            "format": "repro-profile",
            "version": 1,
            "events_recorded": self.events_recorded,
            "total_self_ns": self.total_ns(),
            "frames": [s.to_dict() for s in stats],
        }

    def clear(self) -> None:
        """Drop every accumulated frame (open stacks survive)."""
        with self._lock:
            states = list(self._states)
        for state in states:
            state.stacks.clear()
            state.counts.clear()
            state.cum.clear()
            state.self_ns.clear()
        self.events_recorded = 0


#: The active profiler, or ``None`` (profiling off).  Hot paths read this
#: directly, exactly like :data:`repro.obs.runtime.ACTIVE`.
ACTIVE: Optional[Profiler] = None


def enable_profiler(fresh: bool = False,
                    clock_ns: Callable[[], int] = time.perf_counter_ns) -> Profiler:
    """Turn profiling on (idempotent); returns the active profiler."""
    global ACTIVE
    if ACTIVE is None or fresh:
        ACTIVE = Profiler(clock_ns=clock_ns)
    return ACTIVE


def disable_profiler() -> None:
    """Turn profiling off and drop the profiler."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def profiling(clock_ns: Callable[[], int] = time.perf_counter_ns) -> Iterator[Profiler]:
    """``with profiling() as prof:`` — a fresh profiler for the block,
    restoring whatever was active before (nesting-safe)."""
    global ACTIVE
    saved = ACTIVE
    ACTIVE = Profiler(clock_ns=clock_ns)
    try:
        yield ACTIVE
    finally:
        ACTIVE = saved
