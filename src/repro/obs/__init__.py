"""repro.obs — dependency-free telemetry: metrics, spans, events.

The paper's argument is forensic — it *attributes* time (processor vs.
network, constant vs. variable, regular vs. escalated) — and this
subsystem makes the reproduction inspectable the same way:

* :mod:`repro.obs.metrics` — a process-local metrics registry
  (counters, gauges, log2-bucket histograms; labeled families;
  Prometheus-text and JSON exposition);
* :mod:`repro.obs.spans` — wall-clock span tracing with contextvars
  nesting, exportable to Chrome trace JSON alongside the simulated-time
  lanes of :class:`repro.simlib.trace.Tracer`;
* :mod:`repro.obs.events` — a structured, leveled event log with a
  bounded ring buffer and an optional JSONL sink;
* :mod:`repro.obs.runtime` — the on/off switchboard.  Telemetry is off
  by default; every instrumentation hook in the codebase guards on
  ``runtime.ACTIVE is None`` and costs nothing else when off.

Stdlib-only by design (no numpy — the registry must be importable from
the innermost simulation layers without cycles or heavyweight imports).

Quick start::

    from repro import obs

    tel = obs.enable()
    ... run a campaign, a chaos cycle, a sweep ...
    print(tel.to_prometheus())
    escalations = tel.events.events("rto_escalation")
"""

from repro.obs.events import LEVELS, EventLog
from repro.obs.flight import (
    FlightRecorder,
    enable_flight,
    load_dump,
    read_spill,
    recover_spill,
)
from repro.obs.export import (
    SNAPSHOT_FORMAT,
    chrome_trace,
    render_report,
    snapshot_prometheus,
    validate_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    prometheus_text,
)
from repro.obs.prof import Profiler, disable_profiler, enable_profiler, profiling
from repro.obs.runtime import (
    Telemetry,
    active,
    disable,
    enable,
    pulse,
    span,
    suppressed,
)
from repro.obs.slo import SLOSpec, SLOStatus, default_slos, evaluate_slos
from repro.obs.spans import Span, SpanRecorder
from repro.obs.stitch import list_traces, stitch_chrome_trace, unwrap_snapshot
from repro.obs.timeline import (
    DEFAULT_TIERS,
    TimelineStore,
    WindowTier,
    enable_timeline,
)
from repro.obs.trace import (
    TraceContext,
    current_traceparent,
    new_context,
    parse_traceparent,
)

__all__ = [
    "DEFAULT_TIERS",
    "LEVELS",
    "SNAPSHOT_FORMAT",
    "Counter",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "SLOSpec",
    "SLOStatus",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TimelineStore",
    "TraceContext",
    "WindowTier",
    "active",
    "bucket_quantile",
    "chrome_trace",
    "current_traceparent",
    "default_slos",
    "disable",
    "disable_profiler",
    "enable",
    "enable_flight",
    "enable_profiler",
    "enable_timeline",
    "evaluate_slos",
    "insight",
    "list_traces",
    "load_dump",
    "new_context",
    "parse_traceparent",
    "profiling",
    "prometheus_text",
    "pulse",
    "read_spill",
    "recover_spill",
    "render_report",
    "snapshot_prometheus",
    "span",
    "stitch_chrome_trace",
    "suppressed",
    "unwrap_snapshot",
    "validate_snapshot",
]

from repro.obs import insight  # noqa: E402  (subpackage re-export)
