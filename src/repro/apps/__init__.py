"""Mini-applications on the simulated cluster.

End-to-end workloads that exercise the public API the way a real code
would: data distribution, halo exchanges, collectives, and per-rank
computation — with *real numpy arithmetic* for correctness while the
simulated clock charges the modelled compute and communication costs.
"""

from repro.apps.jacobi import JacobiResult, run_jacobi
from repro.apps.matvec import MatvecResult, run_matvec

__all__ = ["JacobiResult", "MatvecResult", "run_jacobi", "run_matvec"]
