"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import load
from repro.models import ExtendedLMOModel, HeterogeneousHockneyModel


def test_describe_prints_cluster(capsys):
    assert main(["describe"]) == 0
    out = capsys.readouterr().out
    assert "16 nodes" in out
    assert "Celeron" in out
    assert "M2=" in out


def test_describe_other_profile(capsys):
    assert main(["--profile", "mpich", "describe"]) == 0
    assert "MPICH" in capsys.readouterr().out


def test_estimate_hockney_writes_model(tmp_path, capsys):
    out_file = tmp_path / "hockney.json"
    assert main(["estimate", "--model", "hockney", "--out", str(out_file)]) == 0
    model = load(str(out_file))
    assert isinstance(model, HeterogeneousHockneyModel)
    assert model.n == 16
    assert "estimated hockney" in capsys.readouterr().out


def test_estimate_lmo_quick_with_empirical(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    assert main([
        "estimate", "--model", "lmo", "--quick", "--empirical",
        "--reps", "2", "--out", str(out_file),
    ]) == 0
    model = load(str(out_file))
    assert isinstance(model, ExtendedLMOModel)
    assert model.gather_irregularity is not None


def test_predict_from_saved_model(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--reps", "1",
          "--out", str(out_file)])
    capsys.readouterr()
    assert main(["predict", "--model-file", str(out_file),
                 "--nbytes", "65536"]) == 0
    out = capsys.readouterr().out
    assert "predicted scatter/linear" in out
    assert "ms" in out


def test_predict_gather_reports_regime(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--empirical",
          "--reps", "1", "--out", str(out_file)])
    capsys.readouterr()
    assert main(["predict", "--model-file", str(out_file),
                 "--operation", "gather", "--nbytes", "32768"]) == 0
    out = capsys.readouterr().out
    assert "regime: medium" in out


def test_predict_unsupported_combination(tmp_path, capsys):
    out_file = tmp_path / "hockney.json"
    main(["estimate", "--model", "hockney", "--out", str(out_file)])
    capsys.readouterr()
    # The full menu (bcast etc.) is extended-LMO only.
    assert main(["predict", "--model-file", str(out_file),
                 "--operation", "bcast", "--algorithm", "pipeline",
                 "--nbytes", "100"]) == 2
    assert "no prediction formula" in capsys.readouterr().err


def test_measure_reports_ci(capsys):
    assert main(["measure", "--nbytes", "8192", "--max-reps", "6"]) == 0
    out = capsys.readouterr().out
    assert "reps, CI 95%" in out


def test_trace_renders_lanes(capsys):
    assert main(["trace", "--nbytes", "8192", "--max-lanes", "4",
                 "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "cpu0" in out
    assert "utilization" in out


def test_experiment_subcommand(capsys):
    assert main(["experiment", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "binomial tree" in out
    assert "[PASS]" in out


def test_experiment_unknown_id():
    with pytest.raises(KeyError):
        main(["experiment", "fig99"])


def test_report_quick_to_file(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    assert main(["report", "--quick", "--out", str(out_file)]) == 0
    text = out_file.read_text()
    assert "ALL SHAPE CHECKS PASS" in text


def test_experiment_csv_flag(tmp_path, capsys):
    out_file = tmp_path / "fig2.csv"
    # fig2 has no numeric series: warns, still succeeds.
    assert main(["experiment", "fig2", "--csv", str(out_file)]) == 0
    assert "nothing written" in capsys.readouterr().err
    out_file2 = tmp_path / "fig1.csv"
    assert main(["experiment", "fig1", "--quick", "--csv", str(out_file2)]) == 0
    assert out_file2.read_text().startswith("nbytes,observed")


def test_suite_subcommand(capsys):
    assert main(["suite", "--operations", "bcast", "--sizes", "1024",
                 "--max-reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "bcast" in out and "*" in out


def test_partition_subcommand(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--reps", "1",
          "--out", str(out_file)])
    capsys.readouterr()
    assert main(["partition", "--model-file", str(out_file),
                 "--total", "1000000"]) == 0
    out = capsys.readouterr().out
    assert "min-makespan distribution" in out
    counts = [int(line.split(":")[1]) for line in out.splitlines()
              if line.strip().startswith("rank")]
    assert sum(counts) == 1000000


def test_partition_subcommand_bad_rates(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--reps", "1",
          "--out", str(out_file)])
    capsys.readouterr()
    assert main(["partition", "--model-file", str(out_file),
                 "--total", "1000", "--work-rates", "1e-9,2e-9"]) == 2


def test_plan_subcommand(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--reps", "1",
          "--out", str(out_file)])
    capsys.readouterr()
    assert main(["plan", "--model-file", str(out_file),
                 "bcast:65536:10", "allreduce:4096"]) == 0
    out = capsys.readouterr().out
    assert "predicted communication total" in out
    assert "bcast" in out and "allreduce" in out


def test_plan_subcommand_bad_spec(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--reps", "1",
          "--out", str(out_file)])
    capsys.readouterr()
    assert main(["plan", "--model-file", str(out_file), "bcast"]) == 2
    assert "bad call spec" in capsys.readouterr().err


def test_chaos_subcommand_heals(capsys):
    assert main(["chaos", "--nodes", "5", "--cycles", "2", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "fault plan" in out
    assert "slow node 1" in out  # default demo plan
    assert "bootstrap" in out
    assert "health log" in out
    assert "verdict:" in out


def test_chaos_subcommand_custom_plan(capsys):
    assert main([
        "chaos", "--nodes", "4", "--cycles", "1", "--reps", "2",
        "--slow-node", "2:3.0", "--fault-seed", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "slow node 2 x3" in out


def test_chaos_rejects_out_of_range_fault(capsys):
    assert main([
        "chaos", "--nodes", "4", "--slow-node", "9:2.0",
    ]) == 2
    assert "bad fault plan" in capsys.readouterr().err


def test_chaos_rejects_bad_cluster_size(capsys):
    assert main(["chaos", "--nodes", "2"]) == 2
    assert "--nodes" in capsys.readouterr().err


def test_drift_subcommand_healthy_and_degraded(tmp_path, capsys):
    out_file = tmp_path / "lmo.json"
    main(["estimate", "--model", "lmo", "--quick", "--reps", "2",
          "--out", str(out_file)])
    capsys.readouterr()
    # Generous threshold: the quick reps=2 estimate is noisy (its worst
    # pair sits near 60%), but nowhere near a real degradation's 100%+.
    assert main(["drift", "--model-file", str(out_file),
                 "--threshold", "0.8"]) == 0
    assert "still accurate" in capsys.readouterr().out
    # A degraded node pushes its pairs far past any threshold.
    assert main(["drift", "--model-file", str(out_file),
                 "--threshold", "0.8", "--degrade-node", "5"]) == 1
    out = capsys.readouterr().out
    assert "implicated nodes: 5" in out
    assert "DRIFTED" in out


# -- campaign subcommand -------------------------------------------------------

@pytest.mark.campaign
def test_campaign_run_writes_model_and_journal(tmp_path, capsys):
    journal = tmp_path / "c.jsonl"
    out_file = tmp_path / "model.json"
    assert main(["campaign", "run", "--journal", str(journal),
                 "--nodes", "4", "--timeout", "5.0",
                 "--out", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "36/36 experiments measured" in out
    assert "coverage 100.0%" in out
    assert isinstance(load(str(out_file)), ExtendedLMOModel)
    assert journal.exists()


@pytest.mark.campaign
def test_campaign_status_subcommand(tmp_path, capsys):
    journal = tmp_path / "c.jsonl"
    main(["campaign", "run", "--journal", str(journal),
          "--nodes", "4", "--timeout", "5.0"])
    capsys.readouterr()
    assert main(["campaign", "status", "--journal", str(journal)]) == 0
    assert "(complete)" in capsys.readouterr().out


@pytest.mark.campaign
def test_campaign_budget_stop_then_resume(tmp_path, capsys):
    journal = tmp_path / "c.jsonl"
    assert main(["campaign", "run", "--journal", str(journal),
                 "--nodes", "4", "--timeout", "5.0",
                 "--max-repetitions", "20"]) == 1
    out = capsys.readouterr().out
    assert "budget_repetitions" in out
    assert "resumable journal" in out
    # Resume derives the cluster size from the journal header.
    assert main(["campaign", "resume", "--journal", str(journal),
                 "--max-repetitions", "1000000"]) == 0
    assert "campaign complete" in capsys.readouterr().out


@pytest.mark.campaign
def test_campaign_json_format(tmp_path, capsys):
    import json as json_mod
    journal = tmp_path / "c.jsonl"
    assert main(["campaign", "run", "--journal", str(journal),
                 "--nodes", "4", "--timeout", "5.0",
                 "--format", "json"]) == 0
    doc = json_mod.loads(capsys.readouterr().out)
    assert doc["coverage"] == 1.0
    assert doc["degraded"] is False
    assert doc["breakers"]["counts"]["closed"] == 4


@pytest.mark.campaign
def test_campaign_errors_go_to_stderr(tmp_path, capsys):
    journal = tmp_path / "c.jsonl"
    main(["campaign", "run", "--journal", str(journal),
          "--nodes", "4", "--timeout", "5.0"])
    capsys.readouterr()
    # Journal exists -> fresh run refuses it.
    assert main(["campaign", "run", "--journal", str(journal),
                 "--nodes", "4"]) == 2
    assert "already exists" in capsys.readouterr().err
    # Status of a missing journal.
    assert main(["campaign", "status", "--journal",
                 str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read journal" in capsys.readouterr().err


@pytest.mark.campaign
def test_campaign_rejects_bad_config_values(tmp_path, capsys):
    assert main(["campaign", "run", "--journal", str(tmp_path / "c.jsonl"),
                 "--nodes", "4", "--reps", "-2"]) == 2
    assert "reps" in capsys.readouterr().err


@pytest.mark.campaign
def test_chaos_crash_stage_reports_breakers(capsys):
    assert main(["chaos", "--nodes", "4", "--cycles", "1",
                 "--crash-after", "8", "--crash-node", "3"]) == 0
    out = capsys.readouterr().out
    assert "process crash injected" in out
    assert "resuming from the journal" in out
    assert "breaker node 3: open" in out
    assert "quarantined nodes: [3]" in out


@pytest.mark.campaign
def test_chaos_crash_stage_json(capsys):
    import json as json_mod
    assert main(["chaos", "--nodes", "4", "--cycles", "1",
                 "--crash-after", "8", "--format", "json"]) == 0
    doc = json_mod.loads(capsys.readouterr().out)
    campaign = doc["campaign"]
    assert campaign["crashed_and_resumed"] is True
    assert campaign["coverage"] == 1.0
    assert campaign["breakers"]["counts"]["closed"] == 4
