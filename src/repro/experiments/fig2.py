"""Figure 2: the binomial communication tree for 16 processors.

A structural figure: nodes are processors, arcs are logical links marked
with the number of data blocks communicated.  We regenerate it as ASCII
and check the arc labels (8/4/2/1 from the root, recursively halving).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.models import binomial_tree

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 2 (the n=16 binomial scatter/gather tree)."""
    del quick, seed  # structural: nothing to sweep or sample
    tree = binomial_tree(16, 0)
    result = ExperimentResult(
        experiment_id="fig2",
        title="Binomial communication tree, 16 processors",
        text=tree.render_ascii(),
    )
    root_blocks = [blocks for _child, blocks in tree.children[0]]
    result.checks = {
        "root sends 8, 4, 2, 1 blocks (largest first)": root_blocks == [8, 4, 2, 1],
        "sub-trees of equal order are disjoint": (
            set(tree.subtree_ranks(8)) == {8, 9, 10, 11, 12, 13, 14, 15}
        ),
        "tree depth is log2(16) = 4": tree.depth() == 4,
        "every arc carries its sub-tree's size": all(
            blocks == len(tree.subtree_ranks(child)) for _p, child, blocks in tree.arcs()
        ),
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run().render())
