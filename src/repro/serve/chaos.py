"""A deterministic wire-level chaos proxy for the prediction service.

:class:`ChaosProxy` sits between a client and a running server as a
plain TCP proxy and injects the faults a real network (or a crashing
peer) produces, *on purpose* and *reproducibly*:

* **connection resets** — the client-facing socket is closed with
  ``SO_LINGER`` zero, so the client sees a hard RST mid-conversation;
* **partial frames** — a response line is cut mid-JSON and the
  connection closed, exercising truncated-reply handling;
* **byte corruption** — one byte of a response line is flipped; the
  frame still *parses* as a line (and often as JSON), which is exactly
  why responses carry a CRC-32 stamp
  (:func:`repro.serve.protocol.payload_checksum`);
* **stalls** — a response is withheld for longer than a client timeout;
* **delayed delivery** — a request is forwarded late (the delayed-ACK /
  congested-uplink analogue), stretching observed latency without
  breaking anything.

Faults are *frame-aligned*: the proxy speaks the same NDJSON framing as
the service, so every fault lands on a whole request or response line
and each injection is attributable to exactly one in-flight call.

Determinism is the point — this is the serving-layer sibling of the
seeded fault-injection campaign in :mod:`repro.cluster.faults`.  Every
accepted connection gets its own pair of RNG streams derived from
``(seed, connection_index, direction)``, so for a fixed seed and a
fixed client call sequence the *same* calls hit the *same* faults on
every run.  The resilience suite and ``benchmarks/test_resilience.py``
rely on this to make "availability >= 99% under chaos" a reproducible
assertion instead of a flaky observation.

The proxy is intentionally std-lib-threaded and blocking: it must keep
working while the *server* misbehaves, restarts, or is killed, so it
shares no event loop with anything under test.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.serve.protocol import MAX_LINE_BYTES

__all__ = ["ChaosConfig", "ChaosProxy", "ChaosStats"]


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates (per frame) and magnitudes for one proxy instance.

    The defaults are the **default chaos profile** the resilience
    benchmark reports against: each server->client response line has a
    2% chance of a reset, 2% of truncation, 3% of a flipped byte and 2%
    of a stall; each client->server request line has a 5% chance of
    delayed delivery.  Roughly one call in ten hits *some* fault — harsh
    enough to exercise every retry path, mild enough that a correct
    client converges well inside its retry budget.
    """

    seed: int = 0
    #: P(hard RST instead of delivering a response line).
    reset_rate: float = 0.02
    #: P(deliver only a prefix of a response line, then close).
    partial_rate: float = 0.02
    #: P(flip one byte of a response line).
    corrupt_rate: float = 0.03
    #: P(withhold a response line for ``stall_seconds``).
    stall_rate: float = 0.02
    stall_seconds: float = 0.5
    #: P(forward a request line late by ``delay_seconds``).
    delay_rate: float = 0.05
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        for name in ("reset_rate", "partial_rate", "corrupt_rate",
                     "stall_rate", "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.stall_seconds < 0 or self.delay_seconds < 0:
            raise ValueError("stall_seconds and delay_seconds must be >= 0")

    @classmethod
    def clean(cls, seed: int = 0) -> "ChaosConfig":
        """A fault-free profile — the proxy becomes a plain relay, which
        is the control arm of the resilience benchmark."""
        return cls(seed=seed, reset_rate=0.0, partial_rate=0.0,
                   corrupt_rate=0.0, stall_rate=0.0, delay_rate=0.0)


class ChaosStats:
    """Thread-safe injection ledger: what the proxy actually did."""

    _FIELDS = ("connections", "requests", "responses", "resets",
               "partials", "corruptions", "stalls", "delays")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._FIELDS}

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._counts)

    @property
    def faults(self) -> int:
        """Total injected faults across all kinds."""
        with self._lock:
            return sum(self._counts[k] for k in
                       ("resets", "partials", "corruptions", "stalls",
                        "delays"))

    def __repr__(self) -> str:
        return f"ChaosStats({self.snapshot()})"


def _hard_reset(sock: socket.socket) -> None:
    """Close a socket so the peer sees RST, not a graceful FIN."""
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


def _read_line(conn: socket.socket, buffer: bytearray) -> Optional[bytes]:
    """Read one NDJSON line from a socket, carrying leftover bytes in
    ``buffer`` across calls.  Returns None on EOF / reset / oversize."""
    while True:
        newline = buffer.find(b"\n")
        if newline >= 0:
            line = bytes(buffer[:newline + 1])
            del buffer[:newline + 1]
            return line
        if len(buffer) > MAX_LINE_BYTES:
            return None
        try:
            chunk = conn.recv(65536)
        except OSError:
            return None
        if not chunk:
            return None
        buffer.extend(chunk)


@dataclass
class _Connection:
    """One proxied client connection and its two seeded fault streams."""

    index: int
    client: socket.socket
    upstream: socket.socket
    up_rng: random.Random = field(repr=False)
    down_rng: random.Random = field(repr=False)
    closed: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def close(self, reset: bool = False) -> None:
        with self.lock:
            if self.closed:
                return
            self.closed = True
        if reset:
            _hard_reset(self.client)
        else:
            try:
                self.client.close()
            except OSError:
                pass
        try:
            self.upstream.close()
        except OSError:
            pass


class ChaosProxy:
    """A seeded fault-injecting TCP relay in front of a service port."""

    def __init__(self, upstream_host: str, upstream_port: int,
                 config: Optional[ChaosConfig] = None,
                 host: str = "127.0.0.1") -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config if config is not None else ChaosConfig()
        self.host = host
        self.port = 0
        self.stats = ChaosStats()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._next_index = 0

    # -- lifecycle ------------------------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, 0))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._closing.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.host, self.port

    # -- accept / pump --------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=10.0
                )
            except OSError:
                # Server down (crashed, restarting): the client sees the
                # refusal immediately — itself a retryable fault.
                client.close()
                continue
            index = self._next_index
            self._next_index += 1
            seed = self.config.seed
            connection = _Connection(
                index=index, client=client, upstream=upstream,
                up_rng=random.Random(f"{seed}:{index}:up"),
                down_rng=random.Random(f"{seed}:{index}:down"),
            )
            self.stats.bump("connections")
            with self._lock:
                self._connections.append(connection)
            for target, name in ((self._pump_up, "up"), (self._pump_down, "down")):
                thread = threading.Thread(
                    target=target, args=(connection,),
                    name=f"chaos-{index}-{name}", daemon=True,
                )
                thread.start()
                self._threads.append(thread)

    def _pump_up(self, connection: _Connection) -> None:
        """client -> server: forward request lines, sometimes late."""
        cfg = self.config
        buffer = bytearray()
        while not connection.closed:
            line = _read_line(connection.client, buffer)
            if line is None:
                break
            self.stats.bump("requests")
            if cfg.delay_rate > 0.0 and connection.up_rng.random() < cfg.delay_rate:
                self.stats.bump("delays")
                time.sleep(cfg.delay_seconds)
            try:
                connection.upstream.sendall(line)
            except OSError:
                break
        connection.close()

    def _pump_down(self, connection: _Connection) -> None:
        """server -> client: forward response lines through the fault
        menu.  One uniform draw per line walks the rate thresholds in a
        fixed order, so a given (seed, connection, frame) always maps to
        the same fault."""
        cfg = self.config
        buffer = bytearray()
        while not connection.closed:
            line = _read_line(connection.upstream, buffer)
            if line is None:
                break
            self.stats.bump("responses")
            rng = connection.down_rng
            draw = rng.random()
            if draw < cfg.reset_rate:
                self.stats.bump("resets")
                connection.close(reset=True)
                return
            draw -= cfg.reset_rate
            if draw < cfg.partial_rate:
                self.stats.bump("partials")
                cut = max(1, int(rng.random() * (len(line) - 1)))
                try:
                    connection.client.sendall(line[:cut])
                except OSError:
                    pass
                connection.close()
                return
            draw -= cfg.partial_rate
            if draw < cfg.corrupt_rate:
                self.stats.bump("corruptions")
                # Flip one byte, never the framing newline.
                position = int(rng.random() * max(1, len(line) - 1))
                mutated = bytearray(line)
                mutated[position] ^= 0x20
                if mutated[position] == 0x0A:  # don't *create* a newline
                    mutated[position] ^= 0x01
                line = bytes(mutated)
            else:
                draw -= cfg.corrupt_rate
                if draw < cfg.stall_rate:
                    self.stats.bump("stalls")
                    time.sleep(cfg.stall_seconds)
            try:
                connection.client.sendall(line)
            except OSError:
                break
        connection.close()
