"""Request objects for non-blocking operations (mpi4py-style handles)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.simlib import Event

__all__ = ["Request"]


@dataclass
class Request:
    """Handle of an in-flight point-to-point operation.

    Attributes
    ----------
    kind:
        ``"send"`` or ``"recv"``.
    sent:
        For sends: fires at *local* completion (buffer handed to the
        transport; what ``MPI_Send`` returning means).  For receives it
        aliases ``done``.
    done:
        Fires at full completion — remote delivery for sends, matched
        arrival for receives (value: the :class:`~repro.mpi.comm.Envelope`).
    envelope:
        For sends, the envelope being transmitted (known up front).
    """

    kind: str
    sent: Event
    done: Event
    envelope: Optional[Any] = None

    def test(self) -> bool:
        """True once the operation has fully completed."""
        return self.done.processed

    def wait(self) -> Event:
        """The event a rank program yields to block on full completion.

        Usage::

            req = comm.isend(dest, nbytes=1024)
            ...  # overlap other work
            yield req.wait()
        """
        return self.done
