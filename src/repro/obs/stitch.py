"""Stitch per-process telemetry snapshots into one distributed timeline.

Each process in a served round trip — the client driving requests, the
server (or its supervisor), campaign workers — exports its own
``repro-telemetry`` snapshot with spans stamped by the trace context of
:mod:`repro.obs.trace`.  This module merges those snapshots into a
single Chrome trace-event file in which every process is a lane and
every span of one trace lines up on a shared clock::

    repro obs trace stitch --in client=client.json --in server=server.json \
        --trace-id 0af7651916cd43dd8448eb211c80319c -o stitched.json

Clock alignment: span timestamps are per-process monotonic seconds
(rebased :func:`time.perf_counter`), useless across processes.  Every
snapshot therefore records ``spans_epoch_unix`` — the wall-clock instant
of its span clock's zero — and the stitcher rebases each span onto the
unix timeline, then shifts everything so the earliest stitched span
starts at zero.  Wall clocks across processes on one host agree to well
under a millisecond, which is plenty for request-scale spans.

Snapshots may be either the raw document (``--metrics-out`` output) or
an ``obs`` service-verb reply (``{"enabled": ..., "telemetry": {...}}``);
both are accepted.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence

from repro.obs.export import validate_snapshot

__all__ = ["list_traces", "stitch_chrome_trace", "unwrap_snapshot"]


def unwrap_snapshot(doc: Mapping[str, Any]) -> Mapping[str, Any]:
    """Accept a raw snapshot or an ``obs`` verb reply wrapping one."""
    if isinstance(doc, Mapping) and "telemetry" in doc and "format" not in doc:
        inner = doc["telemetry"]
        if isinstance(inner, Mapping):
            doc = inner
    return validate_snapshot(doc)


def _spans_of(doc: Mapping[str, Any]) -> list[Mapping[str, Any]]:
    return [s for s in doc.get("spans", []) if isinstance(s, Mapping)]


def _events_of(doc: Mapping[str, Any]) -> list[Mapping[str, Any]]:
    return [e for e in doc.get("events", []) if isinstance(e, Mapping)]


def list_traces(
    named_docs: Sequence[tuple[str, Mapping[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Summarize every trace id present across the snapshots.

    Returns ``{trace_id: {"spans": n, "processes": [...], "names": [...]}}``
    — the menu ``repro obs trace stitch --list`` prints so the operator
    can pick a ``--trace-id``.
    """
    out: dict[str, dict[str, Any]] = {}
    for proc_name, doc in named_docs:
        for span in _spans_of(unwrap_snapshot(doc)):
            trace_id = span.get("trace_id")
            if not trace_id:
                continue
            info = out.setdefault(
                trace_id, {"spans": 0, "processes": [], "names": []}
            )
            info["spans"] += 1
            if proc_name not in info["processes"]:
                info["processes"].append(proc_name)
            if span["name"] not in info["names"]:
                info["names"].append(span["name"])
    return out


def stitch_chrome_trace(
    named_docs: Sequence[tuple[str, Mapping[str, Any]]],
    trace_id: Optional[str] = None,
) -> str:
    """Merge snapshots into one Chrome trace-event JSON document.

    ``named_docs`` is ``[(process_label, snapshot_doc), ...]``; each
    process becomes one Chrome pid.  With ``trace_id`` only the spans
    (and trace-stamped events) of that trace are kept; without it every
    span is stitched, trace-stamped or not.

    Raises :class:`ValueError` when a requested trace id matches nothing,
    or when a snapshot with matching spans lacks ``spans_epoch_unix``
    (pre-stitch snapshot versions cannot be clock-aligned).
    """
    lanes: list[tuple[str, float, list[Mapping[str, Any]], list[Mapping[str, Any]]]] = []
    for proc_name, raw in named_docs:
        doc = unwrap_snapshot(raw)
        spans = _spans_of(doc)
        events = _events_of(doc)
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace_id") == trace_id]
            events = [e for e in events if e.get("trace_id") == trace_id]
        if not spans and not events:
            continue
        epoch = doc.get("spans_epoch_unix")
        if spans and not isinstance(epoch, (int, float)):
            raise ValueError(
                f"snapshot {proc_name!r} has no spans_epoch_unix; "
                "re-export it with a current repro build to stitch clocks"
            )
        lanes.append((proc_name, float(epoch or 0.0), spans, events))
    if not lanes:
        wanted = "any spans" if trace_id is None else f"trace {trace_id!r}"
        raise ValueError(f"no snapshot contains {wanted}")

    # Shift the merged timeline so the earliest instant is t=0: Chrome's
    # UI handles small timestamps far better than unix-epoch microseconds.
    starts: list[float] = []
    for _, epoch, spans, events in lanes:
        starts.extend(epoch + float(s["start"]) for s in spans)
        starts.extend(float(e["ts"]) for e in events)
    t0 = min(starts)

    trace_events: list[dict[str, Any]] = []
    for pid, (proc_name, epoch, spans, events) in enumerate(lanes):
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": proc_name},
        })
        for span in spans:
            end = span.get("end")
            if end is None:
                continue
            args = dict(span.get("attrs", {}))
            if span.get("trace_id"):
                args["trace_id"] = span["trace_id"]
            trace_events.append({
                "name": span["name"],
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": (epoch + float(span["start"]) - t0) * 1e6,
                "dur": (float(end) - float(span["start"])) * 1e6,
                "args": args,
            })
        for event in events:
            fields = {
                k: v for k, v in event.items()
                if k not in ("seq", "ts", "level", "name")
            }
            trace_events.append({
                "name": event["name"],
                "ph": "i",  # instant
                "s": "p",   # process-scoped
                "pid": pid,
                "tid": 0,
                "ts": (float(event["ts"]) - t0) * 1e6,
                "args": fields,
            })
    return json.dumps({"traceEvents": trace_events, "displayTimeUnit": "ms"})
