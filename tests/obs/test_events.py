"""Unit tests for the structured event log and snapshot exposition."""

import json

import pytest

from repro.obs.events import LEVELS, EventLog
from repro.obs.export import (
    render_report,
    snapshot_prometheus,
    validate_snapshot,
)
from repro.obs.runtime import Telemetry


def test_emit_levels_and_sequencing():
    log = EventLog()
    log.debug("fine")
    log.info("started", unit=1)
    log.warning("breaker_transition", node=5, to="open")
    log.error("gave_up")
    assert [e["seq"] for e in log.events()] == [0, 1, 2, 3]
    assert [e["level"] for e in log.events()] == [
        "debug", "info", "warning", "error",
    ]
    with pytest.raises(ValueError, match="unknown level"):
        log.emit("x", level="fatal")


def test_query_by_name_level_and_fields():
    log = EventLog()
    log.info("unit_done", outcome="done")
    log.info("unit_done", outcome="failed")
    log.warning("rto_escalation", cause="loss")
    assert log.count("unit_done") == 2
    assert log.count("unit_done", outcome="failed") == 1
    assert [e["name"] for e in log.events(min_level="warning")] == [
        "rto_escalation",
    ]
    # A filter on a field the event lacks never matches.
    assert log.count("rto_escalation", outcome="done") == 0
    assert sorted(LEVELS) == ["debug", "error", "info", "warning"]


def test_ring_bounds_and_drop_counter():
    log = EventLog(capacity=3)
    for i in range(5):
        log.info("tick", i=i)
    assert len(log) == 3
    assert log.dropped == 2
    assert [e["i"] for e in log.events("tick")] == [2, 3, 4]
    log.clear()
    assert len(log) == 0 and log.dropped == 0
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_jsonl_sink_streams_every_event(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(jsonl_path=path) as log:
        log.info("a", x=1)
        log.warning("b")
    lines = [json.loads(line) for line in open(path)]
    assert [rec["name"] for rec in lines] == ["a", "b"]
    assert lines[0]["x"] == 1
    # to_jsonl mirrors what was streamed.
    assert log.to_jsonl().count("\n") == 2


def test_snapshot_document_validates_and_renders():
    tel = Telemetry()
    tel.registry.counter("units_total", help="units", outcome="done").inc(2)
    tel.registry.histogram("lat_seconds", lo=-4, hi=0).observe(0.05)
    tel.events.warning("rto_escalation", cause="loss")
    with tel.spans.span("campaign.run"):
        pass
    doc = json.loads(json.dumps(tel.to_dict()))
    assert validate_snapshot(doc) is doc
    assert doc["version"] == 1
    assert doc["dropped"] == {"spans": 0, "events": 0}

    prom = snapshot_prometheus(doc)
    assert 'units_total{outcome="done"} 2' in prom

    report = render_report(doc)
    assert "units_total{outcome=done}: 2" in report
    assert "rto_escalation: 1" in report
    assert "campaign.run: 1 x" in report


def test_validate_snapshot_rejects_foreign_documents():
    with pytest.raises(ValueError, match="not a telemetry snapshot"):
        validate_snapshot({"format": "something-else"})
    with pytest.raises(ValueError, match="unsupported"):
        validate_snapshot({"format": "repro-telemetry", "version": 99})


def test_telemetry_reset_clears_all_three_legs():
    tel = Telemetry()
    tel.registry.counter("c_total").inc()
    tel.events.info("e")
    with tel.spans.span("s"):
        pass
    tel.reset()
    doc = tel.to_dict()
    assert doc["metrics"] == {} and doc["spans"] == [] and doc["events"] == []
