"""Prediction-accuracy scoring: models vs observations, systematically.

The quantitative backbone of Section V: for a set of (operation,
algorithm, size) points, measure the cluster, predict with every model,
and score.  :func:`score_models` produces a ranked report with mean /
max relative errors and a bias sign (pessimistic vs optimistic), the
numbers behind statements like "LMO much more accurately predicts the
execution time of collective operations than traditional models".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.api.errors import ModelNotLoaded
from repro.benchlib import CollectiveBenchmark
from repro.cluster.machine import SimulatedCluster
from repro.predict_service import predict_one
from repro.stats import MeasurementPolicy

__all__ = ["AccuracyReport", "ModelScore", "score_models"]


@dataclass(frozen=True)
class ModelScore:
    """Accuracy of one model over the evaluated points."""

    model_name: str
    mean_relative_error: float
    max_relative_error: float
    #: Mean signed error / observation: > 0 pessimistic, < 0 optimistic.
    bias: float
    points: int


@dataclass
class AccuracyReport:
    """Scores of all evaluated models, plus the raw per-point data."""

    scores: list[ModelScore]
    observations: dict[tuple[str, str, int], float] = field(default_factory=dict)
    predictions: dict[tuple[str, tuple[str, str, int]], float] = field(default_factory=dict)

    @property
    def ranking(self) -> list[str]:
        """Model names, most accurate first."""
        return [s.model_name for s in sorted(self.scores,
                                             key=lambda s: s.mean_relative_error)]

    def score(self, model_name: str) -> ModelScore:
        for s in self.scores:
            if s.model_name == model_name:
                return s
        raise KeyError(f"no score for {model_name!r}")

    def render(self) -> str:
        lines = [f"{'model':<16} {'mean err':>9} {'max err':>9} {'bias':>12} {'points':>7}"]
        for s in sorted(self.scores, key=lambda s: s.mean_relative_error):
            tendency = "pessimistic" if s.bias > 0 else "optimistic"
            lines.append(
                f"{s.model_name:<16} {s.mean_relative_error:>8.1%} "
                f"{s.max_relative_error:>8.1%} {s.bias:>+7.1%} ({tendency[:4]}) "
                f"{s.points:>4}"
            )
        return "\n".join(lines)


def _predict_point(model, operation: str, algorithm: str, nbytes: int) -> float:
    """One expected time via the central prediction service.

    Same vectorized path (and cache) as :func:`repro.api.predict` —
    gather predictions are expected times including the escalation term.
    """
    try:
        return predict_one(model, operation, algorithm, float(nbytes))
    except KeyError as exc:
        raise ModelNotLoaded(
            f"no prediction for {operation}/{algorithm}: "
            f"{exc.args[0] if exc.args else exc}"
        ) from exc


def score_models(
    cluster: SimulatedCluster,
    models: Mapping[str, object],
    points: Sequence[tuple[str, str, int]],
    policy: Optional[MeasurementPolicy] = None,
) -> AccuracyReport:
    """Measure every point once, predict with every model, and score.

    Parameters
    ----------
    models:
        Name -> model (anything the Table II prediction functions accept).
    points:
        ``(operation, algorithm, nbytes)`` triples to evaluate.
    """
    if not points:
        raise ValueError("need at least one evaluation point")
    bench = CollectiveBenchmark(
        cluster, policy=policy if policy is not None else MeasurementPolicy(max_reps=15)
    )
    report = AccuracyReport(scores=[])
    for operation, algorithm, nbytes in points:
        report.observations[(operation, algorithm, nbytes)] = bench.measure(
            operation, algorithm, int(nbytes)
        ).mean

    for name, model in models.items():
        rel_errors, signed = [], []
        for point in points:
            operation, algorithm, nbytes = point
            predicted = _predict_point(model, operation, algorithm, int(nbytes))
            observed = report.observations[point]
            report.predictions[(name, point)] = predicted
            rel_errors.append(abs(predicted - observed) / observed)
            signed.append((predicted - observed) / observed)
        report.scores.append(
            ModelScore(
                model_name=name,
                mean_relative_error=float(np.mean(rel_errors)),
                max_relative_error=float(np.max(rel_errors)),
                bias=float(np.mean(signed)),
                points=len(points),
            )
        )
    return report
