"""Binomial-tree collective algorithms (paper Fig. 2 and formula (1)).

Scatter walks the binomial tree top-down: each node receives its sub-tree's
blocks from its parent, then forwards the sub-sub-tree blocks to its
children, largest sub-tree first.  Gather is the time-reversal.  Sub-trees
of equal order cover disjoint rank sets, so their communications proceed in
parallel through the switch — the ``max`` in the paper's recursion.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.models.collectives.trees import CommTree, binomial_tree
from repro.mpi.comm import COLL_TAG, RankComm

__all__ = ["scatter", "scatterv", "gather", "bcast", "reduce", "barrier"]


def _tree(comm: RankComm, root: int, tree: Optional[CommTree]) -> CommTree:
    if tree is None:
        return binomial_tree(comm.size, root)
    if tree.n != comm.size or tree.root != root:
        raise ValueError("supplied tree does not match communicator/root")
    return tree


def scatter(
    comm: RankComm,
    root: int,
    block_nbytes: int,
    data: Optional[Sequence[Any]] = None,
    tree: Optional[CommTree] = None,
) -> Generator:
    """Binomial scatter; optionally over a remapped tree (optimization).

    Each arc parent->child carries ``blocks * block_nbytes`` bytes, where
    ``blocks`` is the child's sub-tree size — the arc labels of Fig. 2.
    """
    tree = _tree(comm, root, tree)
    me = comm.rank
    bundle: Optional[dict[int, Any]] = None
    if me == root and data is not None:
        if len(data) != comm.size:
            raise ValueError(f"scatter data must have {comm.size} blocks")
        bundle = {rank: data[rank] for rank in range(comm.size)}
    if me != root:
        parent = tree.parent[me]
        assert parent is not None
        env = yield from comm.recv(parent, tag=COLL_TAG)
        bundle = env.payload
    for child, blocks in tree.children[me]:
        sub: Optional[dict[int, Any]] = None
        if bundle is not None:
            sub = {rank: bundle[rank] for rank in tree.subtree_ranks(child)}
        yield from comm.send(
            child, payload=sub, nbytes=blocks * block_nbytes, tag=COLL_TAG
        )
    if bundle is not None:
        return bundle.get(me)
    return None


def scatterv(
    comm: RankComm,
    root: int,
    counts: Sequence[int],
    data: Optional[Sequence[Any]] = None,
    tree: Optional[CommTree] = None,
) -> Generator:
    """Binomial scatterv: per-rank byte counts over the tree.

    Each arc carries the *sum* of its sub-tree's counts; sub-trees whose
    total is zero are pruned (no message, and the child skips its
    receive — both sides derive that from ``counts``, so matching stays
    consistent).  Useful with heterogeneous distributions from
    :func:`repro.optimize.partition.optimal_partition`.
    """
    tree = _tree(comm, root, tree)
    if len(counts) != comm.size:
        raise ValueError(f"counts must have {comm.size} entries")
    if any(c < 0 for c in counts):
        raise ValueError("negative counts")
    me = comm.rank

    def subtree_bytes(rank: int) -> int:
        return sum(counts[r] for r in tree.subtree_ranks(rank))

    bundle: Optional[dict[int, Any]] = None
    if me == root and data is not None:
        if len(data) != comm.size:
            raise ValueError(f"scatterv data must have {comm.size} blocks")
        bundle = {rank: data[rank] for rank in range(comm.size)}
    if me != root and subtree_bytes(me) > 0:
        parent = tree.parent[me]
        assert parent is not None
        env = yield from comm.recv(parent, tag=COLL_TAG)
        bundle = env.payload
    for child, _blocks in tree.children[me]:
        volume = subtree_bytes(child)
        if volume == 0:
            continue
        sub: Optional[dict[int, Any]] = None
        if bundle is not None:
            sub = {rank: bundle.get(rank) for rank in tree.subtree_ranks(child)}
        yield from comm.send(child, payload=sub, nbytes=volume, tag=COLL_TAG)
    if bundle is not None:
        return bundle.get(me)
    return None


def gather(
    comm: RankComm,
    root: int,
    block_nbytes: int,
    block: Any = None,
    tree: Optional[CommTree] = None,
) -> Generator:
    """Binomial gather: sub-trees gather in parallel, then merge upward.

    Children are awaited smallest sub-tree first (they complete first);
    the final, largest transfer into each node carries its whole sub-tree.
    """
    tree = _tree(comm, root, tree)
    me = comm.rank
    bundle: dict[int, Any] = {me: block}
    for child, _blocks in reversed(tree.children[me]):
        env = yield from comm.recv(child, tag=COLL_TAG)
        if env.payload is not None:
            bundle.update(env.payload)
    if me != root:
        parent = tree.parent[me]
        assert parent is not None
        nbytes = tree.blocks_into(me) * block_nbytes
        payload = bundle if block is not None else None
        yield from comm.send(parent, payload=payload, nbytes=nbytes, tag=COLL_TAG)
        return None
    if block is None:
        return None
    return [bundle.get(rank) for rank in range(comm.size)]


def bcast(
    comm: RankComm,
    root: int,
    nbytes: int,
    payload: Any = None,
    tree: Optional[CommTree] = None,
) -> Generator:
    """Binomial broadcast: every arc carries the full message."""
    tree = _tree(comm, root, tree)
    me = comm.rank
    if me != root:
        parent = tree.parent[me]
        assert parent is not None
        env = yield from comm.recv(parent, tag=COLL_TAG)
        payload = env.payload
    for child, _blocks in tree.children[me]:
        yield from comm.send(child, payload=payload, nbytes=nbytes, tag=COLL_TAG)
    return payload


def reduce(
    comm: RankComm,
    root: int,
    nbytes: int,
    value: Any = None,
    combine=None,
    tree: Optional[CommTree] = None,
) -> Generator:
    """Binomial reduce: combine contributions on the way up the tree."""
    tree = _tree(comm, root, tree)
    cluster = comm.layer.cluster
    me = comm.rank
    acc = value
    for child, _blocks in reversed(tree.children[me]):
        env = yield from comm.recv(child, tag=COLL_TAG)
        cost = cluster.noisy(nbytes * cluster.ground_truth.t[me])
        yield from cluster.cpu[me].hold(cluster.sim, cost)
        if combine is not None:
            acc = combine(acc, env.payload)
    if me != root:
        parent = tree.parent[me]
        assert parent is not None
        yield from comm.send(parent, payload=acc, nbytes=nbytes, tag=COLL_TAG)
        return None
    return acc


def barrier(comm: RankComm, tree: Optional[CommTree] = None) -> Generator:
    """Binomial fan-in to rank 0 followed by binomial fan-out.

    Zero-byte messages: the cost is pure constant contributions — a good
    stress test of the ``C_i`` / ``L_ij`` separation.
    """
    tree = _tree(comm, 0, tree)
    me = comm.rank
    # Fan-in.
    for child, _blocks in reversed(tree.children[me]):
        yield from comm.recv(child, tag=COLL_TAG)
    if me != 0:
        parent = tree.parent[me]
        assert parent is not None
        yield from comm.send(parent, nbytes=0, tag=COLL_TAG)
        env = yield from comm.recv(parent, tag=COLL_TAG + 1)
        del env
    # Fan-out.
    for child, _blocks in tree.children[me]:
        yield from comm.send(child, nbytes=0, tag=COLL_TAG + 1)
    return None
