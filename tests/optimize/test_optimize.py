"""Tests for model-based optimization: selection, splitting, mapping."""

import numpy as np
import pytest

from repro.cluster import (
    LAM_7_1_3,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    synthesize_ground_truth,
    table1_cluster,
)
from repro.models import (
    ExtendedLMOModel,
    GatherIrregularity,
    binomial_tree,
    predict_binomial_scatter,
)
from repro.mpi import run_ranks
from repro.optimize import (
    crossover_size,
    optimize_mapping,
    optimized_gather,
    predict_algorithms,
    predict_mapped_time,
    select_algorithm,
    split_plan,
)

KB = 1024


def table1_lmo():
    gt = synthesize_ground_truth(table1_cluster())
    return ExtendedLMOModel.from_ground_truth(gt)


# ----------------------------------------------------------------- selection
def test_lmo_selects_binomial_for_small_linear_for_large():
    model = table1_lmo()
    assert select_algorithm(model, "scatter", 64) == "binomial"
    assert select_algorithm(model, "scatter", 150 * KB) == "linear"


def test_hockney_mispredicts_large_scatter_choice():
    """Fig. 6: Hockney switches in favour of binomial where the linear
    algorithm actually wins; LMO decides correctly."""
    model = table1_lmo()
    hockney = model.to_heterogeneous_hockney()
    M = 150 * KB
    assert select_algorithm(hockney, "scatter", M) == "binomial"
    assert select_algorithm(model, "scatter", M) == "linear"


def test_predict_algorithms_exposes_both_predictions():
    model = table1_lmo()
    choice = predict_algorithms(model, "scatter", 150 * KB)
    assert set(choice.predictions) == {"linear", "binomial"}
    assert choice.best == "linear"
    assert choice.predictions["linear"] < choice.predictions["binomial"]


def test_crossover_size_found_for_lmo():
    model = table1_lmo()
    crossover = crossover_size(model, "scatter", lo=64, hi=1 << 20)
    assert crossover is not None
    assert select_algorithm(model, "scatter", crossover - 64) == "binomial"
    assert select_algorithm(model, "scatter", crossover) == "linear"


def test_crossover_none_when_no_flip():
    model = table1_lmo()
    assert crossover_size(model, "scatter", lo=200 * KB, hi=400 * KB) is None


def test_gather_selection_uses_expected_escalation_cost():
    """In the escalation region the expected RTO cost dominates: the model
    must steer away from the single-shot linear gather."""
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.25, p_at_m2=0.8)
    model = table1_lmo().with_irregularity(irr)
    choice = predict_algorithms(model, "gather", 32 * KB)
    assert choice.predictions["linear"] > 0.05  # carries expected escalation


# ------------------------------------------------------------------ splitting
def test_split_plan_outside_region_is_identity():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    assert split_plan(KB, irr) == [KB]
    assert split_plan(100 * KB, irr) == [100 * KB]


def test_split_plan_medium_chunks_below_m1():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    chunks = split_plan(32 * KB, irr)
    assert sum(chunks) == 32 * KB
    assert all(c <= 0.9 * 4 * KB for c in chunks)
    assert len(chunks) == -(-32 * KB // int(0.9 * 4 * KB))


def test_split_plan_validation():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    with pytest.raises(ValueError):
        split_plan(32 * KB, irr, safety=0)


def run_gather(cluster, gather_factory, nbytes, root=0):
    programs = {
        rank: (lambda r: (lambda comm: gather_factory(comm, root, nbytes)))(rank)
        for rank in range(cluster.n)
    }
    results = run_ranks(cluster, programs)
    return max(res.finish for res in results.values())


def test_optimized_gather_avoids_escalations():
    """Fig. 7: splitting medium messages eliminates the RTO escalations
    entirely (and with them the ~0.25 s spikes)."""
    cluster = SimulatedCluster(
        table1_cluster(), profile=LAM_7_1_3, noise=NoiseModel.none(), seed=7
    )
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.25)
    M = 32 * KB

    from repro.mpi.collectives import linear

    native_times = []
    optimized_times = []
    for _rep in range(8):
        native_times.append(
            run_gather(cluster, lambda c, r, n: linear.gather(c, r, n), M)
        )
        optimized_times.append(
            run_gather(cluster, lambda c, r, n: optimized_gather(c, r, n, irr), M)
        )
    esc_before = cluster.stats.escalations
    assert esc_before > 0  # native runs escalated
    assert max(optimized_times) < 0.1  # optimized never pays an RTO
    # Mean speedup in the escalation region is large (paper: ~10x).
    assert np.mean(native_times) / np.mean(optimized_times) > 2.0


def test_optimized_gather_passthrough_outside_region():
    cluster = SimulatedCluster(
        table1_cluster(), profile=LAM_7_1_3, noise=NoiseModel.none(), seed=8
    )
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    M = 2 * KB
    from repro.mpi.collectives import linear

    t_opt = run_gather(cluster, lambda c, r, n: optimized_gather(c, r, n, irr), M)
    t_native = run_gather(cluster, lambda c, r, n: linear.gather(c, r, n), M)
    assert t_opt == pytest.approx(t_native, rel=1e-9)


# -------------------------------------------------------------------- mapping
def test_mapping_identity_matches_direct_prediction():
    model = table1_lmo()
    tree = binomial_tree(8, 0)
    direct = predict_binomial_scatter(model, 8 * KB, tree=tree)
    mapped = predict_mapped_time(model, tree, 8 * KB, list(range(16))[:8])
    assert mapped == pytest.approx(direct)


def test_exhaustive_mapping_beats_identity_on_heterogeneous_cluster():
    gt = GroundTruth.random(6, seed=9)
    model = ExtendedLMOModel.from_ground_truth(gt)
    tree = binomial_tree(6, 0)
    result = optimize_mapping(model, tree, 16 * KB, exhaustive_limit=7)
    identity_time = predict_mapped_time(model, tree, 16 * KB, list(range(6)))
    assert result.predicted <= identity_time + 1e-15
    assert result.evaluations >= 120  # 5! permutations plus identity


def test_exhaustive_mapping_keeps_root_fixed():
    gt = GroundTruth.random(5, seed=10)
    model = ExtendedLMOModel.from_ground_truth(gt)
    tree = binomial_tree(5, 0)
    result = optimize_mapping(model, tree, 8 * KB)
    assert result.perm[0] == 0
    assert result.tree.root == 0


def test_local_search_mapping_improves_large_cluster():
    model = table1_lmo()
    tree = binomial_tree(16, 0)
    result = optimize_mapping(model, tree, 16 * KB, exhaustive_limit=7, max_rounds=10)
    identity_time = predict_mapped_time(model, tree, 16 * KB, list(range(16)))
    assert result.predicted <= identity_time
    assert sorted(result.perm) == list(range(16))


def test_mapping_homogeneous_model_is_indifferent():
    """A homogeneous model cannot rank mappings (paper Sec. I): every
    permutation predicts the same time."""
    n = 6
    C = np.full(n, 40e-6)
    t = np.full(n, 4e-9)
    L = np.full((n, n), 30e-6)
    np.fill_diagonal(L, 0.0)
    beta = np.full((n, n), 12e6)
    np.fill_diagonal(beta, np.inf)
    model = ExtendedLMOModel(C=C, t=t, L=L, beta=beta)
    tree = binomial_tree(n, 0)
    times = {
        predict_mapped_time(model, tree, 8 * KB, perm)
        for perm in ([0, 1, 2, 3, 4, 5], [0, 5, 4, 3, 2, 1], [0, 2, 1, 4, 3, 5])
    }
    assert len({round(x, 15) for x in times}) == 1
