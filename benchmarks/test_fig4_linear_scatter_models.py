"""Fig. 4 bench: all models' linear-scatter predictions vs observation."""

from conftest import assert_checks

from repro.experiments.common import SIZES_FULL
from repro.models import predict_linear_scatter


def test_fig4_shape(experiment_results):
    assert_checks(experiment_results("fig4"))


def test_fig4_lmo_wins(experiment_results):
    """The quantitative core of Fig. 4: smallest mean relative error."""
    result = experiment_results("fig4")
    observed = result.get("observed")
    errors = {
        name: result.get(name).mean_relative_error(observed)
        for name in ("lmo", "het-hockney", "loggp", "plogp")
    }
    assert min(errors, key=errors.__getitem__) == "lmo"
    assert errors["lmo"] < 0.3


def test_bench_all_model_predictions(benchmark, experiment_results, model_suite):
    """Kernel: every model's prediction over the full size grid."""
    assert_checks(experiment_results("fig4"))
    models = [
        model_suite.lmo,
        model_suite.hockney_het,
        model_suite.loggp,
        model_suite.plogp,
    ]

    def kernel():
        return sum(
            predict_linear_scatter(model, m) for model in models for m in SIZES_FULL
        )

    assert benchmark(kernel) > 0
