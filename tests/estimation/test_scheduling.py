"""Tests for experiment scheduling (round-robin pairs, triplet packing)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation import AnalyticEngine, DESEngine, pack_rounds, pair_rounds, triplet_rounds
from repro.estimation.experiments import roundtrip
from repro.estimation.scheduling import run_schedule


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 24))
def test_pair_rounds_cover_all_pairs_disjointly(n):
    rounds = pair_rounds(n)
    seen = set()
    for rnd in rounds:
        nodes = [x for pair in rnd for x in pair]
        assert len(nodes) == len(set(nodes)), "pairs within a round must be disjoint"
        seen.update(rnd)
    assert seen == set(combinations(range(n), 2))


def test_pair_rounds_even_n_is_perfect_schedule():
    rounds = pair_rounds(16)
    assert len(rounds) == 15
    assert all(len(rnd) == 8 for rnd in rounds)


def test_pair_rounds_odd_n_has_byes():
    rounds = pair_rounds(5)
    assert sum(len(rnd) for rnd in rounds) == 10
    assert all(len(rnd) == 2 for rnd in rounds)


def test_pair_rounds_validation():
    with pytest.raises(ValueError):
        pair_rounds(1)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 10))
def test_triplet_rounds_cover_all_rooted_triplets(n):
    rounds = triplet_rounds(n)
    seen = []
    for rnd in rounds:
        nodes = [x for triple in rnd for x in triple]
        assert len(nodes) == len(set(nodes))
        seen.extend(rnd)
    # 3 * C(n,3) rooted experiments, each triplet with 3 distinct roots.
    assert len(seen) == len(set(seen)) == n * (n - 1) * (n - 2) // 2


def test_pack_rounds_first_fit():
    rounds = pack_rounds([(0, 1), (2, 3), (0, 2), (1, 3)])
    assert rounds == [[(0, 1), (2, 3)], [(0, 2), (1, 3)]]


def test_run_schedule_parallel_matches_serial_values():
    n = 6
    gt = GroundTruth.random(n, seed=1)
    cluster = SimulatedCluster(
        random_cluster(n, seed=1), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=1,
    )
    exps = [roundtrip(i, j, 4096) for i, j in combinations(range(n), 2)]
    serial = run_schedule(DESEngine(cluster), exps, parallel=False)
    parallel = run_schedule(DESEngine(cluster), exps, parallel=True)
    for exp in exps:
        assert parallel[exp] == pytest.approx(serial[exp], rel=1e-12)


def test_run_schedule_parallel_is_cheaper():
    """The whole point of Sec. IV's optimization: same values, less time."""
    n = 8
    gt = GroundTruth.random(n, seed=2)
    cluster = SimulatedCluster(
        random_cluster(n, seed=2), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=2,
    )
    exps = [roundtrip(i, j, 16384) for i, j in combinations(range(n), 2)]
    serial_engine = DESEngine(cluster)
    run_schedule(serial_engine, exps, parallel=False)
    parallel_engine = DESEngine(cluster)
    run_schedule(parallel_engine, exps, parallel=True)
    assert parallel_engine.estimation_time < serial_engine.estimation_time / 2


def test_run_schedule_reps_average():
    gt = GroundTruth.random(4, seed=3)
    engine = AnalyticEngine(gt, noise=NoiseModel(rel_sigma=0.05, spike_prob=0), seed=0)
    exps = [roundtrip(0, 1, 8192)]
    single = run_schedule(AnalyticEngine(gt, noise=NoiseModel(rel_sigma=0.05, spike_prob=0), seed=0), exps, reps=1)
    averaged = run_schedule(engine, exps, reps=50)
    truth = gt.p2p_time(0, 1, 8192) + gt.p2p_time(1, 0, 8192)
    assert abs(averaged[exps[0]] - truth) < abs(single[exps[0]] - truth) + 0.02 * truth


def test_run_schedule_rejects_bad_reps():
    gt = GroundTruth.random(4, seed=4)
    with pytest.raises(ValueError):
        run_schedule(AnalyticEngine(gt), [roundtrip(0, 1, 0)], reps=0)
