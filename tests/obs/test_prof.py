"""Unit tests for the deterministic instrumentation profiler."""

import json
import threading

import pytest

from repro import api
from repro.mpi.runtime import run_collective
from repro.obs import prof as _prof
from repro.obs.prof import Profiler, profiling


class FakeClock:
    """A nanosecond clock that only moves when told to."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now

    def tick(self, ns):
        self.now += ns


@pytest.fixture(autouse=True)
def _profiler_off():
    _prof.disable_profiler()
    yield
    _prof.disable_profiler()


def test_self_and_cumulative_time_with_fake_clock():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)
    prof.begin("outer")
    clock.tick(10)
    prof.begin("inner")
    clock.tick(5)
    prof.end()
    clock.tick(2)
    prof.end()
    stats = prof.stats()
    assert stats["inner"].count == 1
    assert stats["inner"].self_ns == 5
    assert stats["inner"].cum_ns == 5
    assert stats["outer"].self_ns == 12  # 17 elapsed minus 5 in inner
    assert stats["outer"].cum_ns == 17
    assert prof.total_ns() == 17


def test_recursion_is_not_double_billed():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)
    prof.begin("f")
    clock.tick(1)
    prof.begin("f")
    clock.tick(3)
    prof.end()
    clock.tick(1)
    prof.end()
    stats = prof.stats()
    assert stats["f"].count == 2
    assert stats["f"].self_ns == 5
    # Cumulative counts the outermost occurrence only (5 ns), not 5 + 3.
    assert stats["f"].cum_ns == 5


def test_frame_context_manager_closes_on_raise():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)
    with pytest.raises(RuntimeError):
        with prof.frame("doomed"):
            clock.tick(4)
            raise RuntimeError("boom")
    stats = prof.stats()
    assert stats["doomed"].count == 1 and stats["doomed"].self_ns == 4


def test_collapsed_and_speedscope_agree():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)
    with prof.frame("a"):
        clock.tick(2)
        with prof.frame("b"):
            clock.tick(3)
    assert prof.collapsed() == "a 2\na;b 3\n"
    doc = prof.speedscope("unit")
    assert doc["profiles"][0]["weights"] == [2, 3]
    names = [f["name"] for f in doc["shared"]["frames"]]
    assert names == ["a", "b"]
    assert doc["profiles"][0]["samples"] == [[0], [0, 1]]
    json.dumps(doc)  # must be JSON-serializable as-is


def test_to_dict_sorted_by_self_time():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)
    with prof.frame("cheap"):
        clock.tick(1)
    with prof.frame("hot"):
        clock.tick(9)
    doc = prof.to_dict()
    assert doc["format"] == "repro-profile"
    assert [f["name"] for f in doc["frames"]] == ["hot", "cheap"]
    assert doc["total_self_ns"] == 10


def test_threads_merge_without_interleaving():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)

    def work():
        with prof.frame("worker"):
            clock.tick(2)

    threads = [threading.Thread(target=work) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with prof.frame("main"):
        clock.tick(1)
    stats = prof.stats()
    assert stats["worker"].count == 3
    assert stats["main"].count == 1


def test_clear_resets_accumulators():
    clock = FakeClock()
    prof = Profiler(clock_ns=clock)
    with prof.frame("x"):
        clock.tick(1)
    prof.event_begin(type("E", (), {"callbacks": []})())
    prof.event_end()
    prof.clear()
    assert prof.stats() == {}
    assert prof.events_recorded == 0


def test_profiling_context_restores_previous():
    outer = _prof.enable_profiler(fresh=True)
    with profiling() as inner:
        assert _prof.ACTIVE is inner and inner is not outer
    assert _prof.ACTIVE is outer


def test_kernel_attaches_active_profiler_per_run():
    cluster = api.load_cluster(nodes=4, seed=0)
    with profiling() as prof:
        run_collective(cluster, "scatter", "linear", 1024)
    assert cluster.sim.profiler is None  # detached after the run
    assert prof.events_recorded == cluster.sim.events_processed
    stats = prof.stats()
    assert any("proc:" in name for name in stats)  # per-handler attribution
    # Every kernel event became exactly one frame (nothing else profiles
    # inside run_collective), so the counts reconcile exactly.
    assert sum(s.count for s in stats.values()) == prof.events_recorded


def test_kernel_untouched_when_profiling_off():
    cluster = api.load_cluster(nodes=4, seed=0)
    run_collective(cluster, "scatter", "linear", 1024)
    assert cluster.sim.profiler is None
