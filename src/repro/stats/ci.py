"""Confidence intervals and summary statistics for timing samples.

MPIBlib [12] (the paper's benchmarking library) repeats each measurement
until the Student-t confidence interval is narrower than a requested
relative error at a requested confidence level (the paper uses 95% / 2.5%
throughout).  :class:`SampleSummary` packages one such batch of samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "SampleSummary",
    "mad_outlier_mask",
    "summarize",
    "t_confidence_halfwidth",
    "trimmed_mean",
]


def t_confidence_halfwidth(samples: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the Student-t CI of the mean (0 for < 2 samples)."""
    data = np.asarray(samples, dtype=float)
    if data.size < 2:
        return 0.0
    sem = data.std(ddof=1) / np.sqrt(data.size)
    if sem == 0.0:
        return 0.0
    t_crit = sps.t.ppf(0.5 + confidence / 2.0, df=data.size - 1)
    return float(t_crit * sem)


@dataclass(frozen=True)
class SampleSummary:
    """Summary of repeated measurements of one quantity."""

    mean: float
    std: float
    count: int
    ci_halfwidth: float
    confidence: float
    minimum: float
    maximum: float

    @property
    def relative_error(self) -> float:
        """CI half-width over mean (inf for a zero mean)."""
        if self.mean == 0.0:
            return 0.0 if self.ci_halfwidth == 0.0 else float("inf")
        return self.ci_halfwidth / abs(self.mean)

    def within(self, rel_err: float) -> bool:
        """True when the CI is at least as tight as ``rel_err``."""
        return self.relative_error <= rel_err


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SampleSummary:
    """Summarize a batch of samples with a Student-t CI."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample batch")
    return SampleSummary(
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        count=int(data.size),
        ci_halfwidth=t_confidence_halfwidth(data, confidence),
        confidence=confidence,
        minimum=float(data.min()),
        maximum=float(data.max()),
    )


def trimmed_mean(samples: Sequence[float], trim_fraction: float = 0.1) -> float:
    """Mean after dropping the top/bottom ``trim_fraction`` of samples.

    The robust location estimate benchmarking tools reach for when OS
    jitter spikes would dominate a plain mean but a median throws away
    too much information.
    """
    if not (0 <= trim_fraction < 0.5):
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    data = np.sort(np.asarray(samples, dtype=float))
    if data.size == 0:
        raise ValueError("cannot trim an empty sample batch")
    cut = int(data.size * trim_fraction)
    trimmed = data[cut:data.size - cut] if cut else data
    return float(trimmed.mean())


def mad_outlier_mask(samples: Sequence[float], threshold: float = 5.0) -> np.ndarray:
    """Boolean mask of outliers by the MAD rule.

    A sample is an outlier when it deviates from the median by more than
    ``threshold`` times the median absolute deviation (scaled to be
    consistent with a normal sigma).  All-equal batches have no outliers.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("cannot screen an empty sample batch")
    median = np.median(data)
    mad = np.median(np.abs(data - median)) * 1.4826
    if mad == 0.0:
        return np.zeros(data.size, dtype=bool)
    return np.abs(data - median) > threshold * mad
