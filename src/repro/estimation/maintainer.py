"""Self-healing model maintenance: estimate, monitor, repair, repeat.

The paper frames LMO estimation as something done *at runtime*, which
only makes sense if the model stays cheap to keep current.  A full
re-estimation costs ``2 C(n,2) + 6 C(n,3)`` experiments; re-running it on
a schedule defeats the purpose.  :class:`ModelMaintainer` closes the loop
at much lower cost:

1. **bootstrap** — one robust full estimation
   (:func:`~repro.estimation.robust.estimate_extended_lmo_robust`);
2. **spot-check** — a handful of roundtrips against the model's own
   predictions (:func:`~repro.estimation.drift.detect_model_drift`);
3. **attribute** — :meth:`DriftReport.drifted_nodes` names the nodes at
   the intersection of the drifted pairs;
4. **heal** — re-estimate *only* the triplets touching the implicated
   nodes (their :func:`~repro.estimation.lmo_est.star_triplets` union —
   for one node out of ``n`` that is ``3 C(n-1,2)`` one-to-twos instead
   of ``3 C(n,3)``, a ``3/(n-2)`` reduction) and splice the refreshed
   parameters into the standing model, leaving healthy entries untouched;
5. **log** — every cycle appends a :class:`HealthRecord`, so the
   maintainer's history is inspectable after the fact.

When drift is too widespread to attribute (more than
``MaintainerPolicy.full_refresh_fraction`` of the nodes implicated), the
maintainer gives up on splicing and re-estimates everything.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.estimation.drift import DriftReport, detect_model_drift
from repro.estimation.engines import ExperimentEngine
from repro.estimation.journal import CampaignJournal
from repro.estimation.lmo_est import DEFAULT_PROBE_NBYTES, star_triplets
from repro.estimation.robust import (
    RetryPolicy,
    RobustLMOResult,
    estimate_extended_lmo_robust,
)
from repro.models.lmo_extended import ExtendedLMOModel
from repro.obs import runtime as _obs
from repro.obs.events import EventLog
from repro.obs.insight.residuals import ResidualMonitor

__all__ = ["HealthRecord", "MaintainerPolicy", "ModelMaintainer"]


@dataclass(frozen=True)
class MaintainerPolicy:
    """Knobs of the monitor/heal loop."""

    probe_nbytes: int = DEFAULT_PROBE_NBYTES
    #: Relative roundtrip error above which a spot-checked pair counts as
    #: drifted (matches :func:`detect_model_drift`'s default).
    drift_threshold: float = 0.15
    #: Repetitions per spot-check roundtrip (cheap, so few).  The reps
    #: collapse via minimum-RTT (see ``detect_model_drift``'s
    #: ``aggregate``): one transient escalation must not trigger a heal.
    spot_reps: int = 3
    #: Repetitions per estimation experiment (bootstrap and heal).
    reps: int = 3
    #: Timeout/retry discipline for all estimation runs.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: When the implicated nodes exceed this fraction of the cluster,
    #: splicing is pointless — do a full re-estimation instead.
    full_refresh_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.probe_nbytes <= 0:
            raise ValueError("probe_nbytes must be positive")
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if self.spot_reps < 1 or self.reps < 1:
            raise ValueError("repetition counts must be >= 1")
        if not (0 < self.full_refresh_fraction <= 1):
            raise ValueError(
                f"full_refresh_fraction must be in (0, 1], got {self.full_refresh_fraction}"
            )


@dataclass(frozen=True)
class HealthRecord:
    """One maintenance cycle's outcome."""

    cycle: int
    #: "bootstrap" | "ok" | "heal" | "refresh"
    action: str
    worst_error: float
    implicated: tuple[int, ...]
    #: Simulated seconds of cluster time this cycle consumed.
    cost: float
    detail: str = ""

    def render(self) -> str:
        nodes = ",".join(map(str, self.implicated)) if self.implicated else "-"
        line = (
            f"[{self.cycle:3d}] {self.action:<9s} worst drift {self.worst_error:7.2%}  "
            f"nodes {nodes:<8s} cost {self.cost:.4f}s"
        )
        return f"{line}  ({self.detail})" if self.detail else line


class ModelMaintainer:
    """Keeps an extended-LMO model honest against a changing cluster."""

    def __init__(
        self,
        engine: ExperimentEngine,
        policy: Optional[MaintainerPolicy] = None,
        journal: Optional[CampaignJournal] = None,
    ):
        self.engine = engine
        self.policy = policy if policy is not None else MaintainerPolicy()
        self.model: Optional[ExtendedLMOModel] = None
        #: Canonical history: every cycle is one structured event here,
        #: regardless of whether process-wide telemetry is enabled.
        self.health_events = EventLog(capacity=4096)
        self.last_result: Optional[RobustLMOResult] = None
        #: Optional durable log: every heal cycle is journaled through the
        #: same write-ahead layer the campaign runner uses, so a crashed
        #: maintenance loop leaves an auditable history on disk.
        self.journal = journal
        self._cycle = 0

    # -- estimation ----------------------------------------------------------

    def _estimate(self, triplets=None) -> RobustLMOResult:
        return estimate_extended_lmo_robust(
            self.engine,
            probe_nbytes=self.policy.probe_nbytes,
            reps=self.policy.reps,
            triplets=triplets,
            policy=self.policy.retry,
        )

    def bootstrap(self) -> ExtendedLMOModel:
        """Full robust estimation; the starting point of the loop."""
        with _obs.span("maintainer.bootstrap"):
            result = self._estimate()
        self.model = result.model
        self.last_result = result
        self._record("bootstrap", worst_error=0.0, implicated=(),
                     cost=result.estimation_time,
                     detail=result.run_stats.summary())
        return self.model

    # -- monitoring ----------------------------------------------------------

    def spot_check(self) -> DriftReport:
        """Cheap roundtrip sweep of the standing model's predictions."""
        if self.model is None:
            raise RuntimeError("no model yet — call bootstrap() first")
        report = detect_model_drift(
            self.model,
            self.engine,
            probe_nbytes=self.policy.probe_nbytes,
            threshold=self.policy.drift_threshold,
            reps=self.policy.spot_reps,
            aggregate=np.min,
        )
        if _obs.ACTIVE is not None:
            # Spot-checks double as (prediction, measurement) pairs for
            # the residual monitor: every cycle refreshes the lmo/roundtrip
            # scorecard for free.
            monitor = ResidualMonitor()
            for pair, predicted in report.predicted.items():
                monitor.record(
                    "lmo", "roundtrip", report.probe_nbytes,
                    predicted, report.measured[pair],
                )
        return report

    @staticmethod
    def implicated_nodes(report: DriftReport) -> list[int]:
        """Who to blame for a drifted report.

        Prefer the intersection attribution (nodes on >= 2 drifted pairs,
        the degraded-*node* signature); when drift is confined to a single
        pair — the degraded-*link* signature — fall back to that pair's
        endpoints, since the link parameters ``L``/``beta`` live on both.
        """
        nodes = report.drifted_nodes()
        if nodes:
            return nodes
        return sorted({
            node
            for pair, error in report.errors.items()
            if error > report.threshold
            for node in pair
        })

    # -- repair --------------------------------------------------------------

    def heal(self, report: DriftReport) -> ExtendedLMOModel:
        """Repair the standing model where ``report`` says it is stale."""
        if self.model is None:
            raise RuntimeError("no model yet — call bootstrap() first")
        implicated = self.implicated_nodes(report)
        if not implicated:
            return self.model
        n = self.engine.n
        if len(implicated) / n > self.policy.full_refresh_fraction:
            with _obs.span("maintainer.refresh", implicated=len(implicated)):
                result = self._estimate()
            self.model = result.model
            self.last_result = result
            self._record("refresh", report.worst_error, tuple(implicated),
                         result.estimation_time, result.run_stats.summary())
            return self.model

        triplets = sorted({
            triple for node in implicated for triple in star_triplets(n, node)
        })
        with _obs.span("maintainer.heal", implicated=len(implicated),
                       triplets=len(triplets)):
            result = self._estimate(triplets=triplets)
        self.model = self._splice(self.model, result.model, implicated)
        self.last_result = result
        self._record(
            "heal", report.worst_error, tuple(implicated), result.estimation_time,
            f"{len(triplets)} triplets re-estimated; {result.run_stats.summary()}",
        )
        return self.model

    @staticmethod
    def _splice(
        old: ExtendedLMOModel,
        fresh: ExtendedLMOModel,
        nodes: list[int],
    ) -> ExtendedLMOModel:
        """Refresh ``nodes``'s parameters (and their incident links) only."""
        C = old.C.copy()
        t = old.t.copy()
        L = old.L.copy()
        beta = old.beta.copy()
        idx = np.asarray(nodes, dtype=int)
        C[idx] = fresh.C[idx]
        t[idx] = fresh.t[idx]
        L[idx, :] = fresh.L[idx, :]
        L[:, idx] = fresh.L[:, idx]
        beta[idx, :] = fresh.beta[idx, :]
        beta[:, idx] = fresh.beta[:, idx]
        return ExtendedLMOModel(
            C=C, t=t, L=L, beta=beta,
            gather_irregularity=old.gather_irregularity,
        )

    # -- the loop ------------------------------------------------------------

    def cycle(self) -> HealthRecord:
        """One monitor-and-repair pass: spot-check, heal if needed, log."""
        with _obs.span("maintainer.cycle", cycle=self._cycle):
            if self.model is None:
                self.bootstrap()
            t_start = self.engine.estimation_time
            report = self.spot_check()
            check_cost = self.engine.estimation_time - t_start
            if not report.drifted:
                return self._record("ok", report.worst_error, (), check_cost)
            self.heal(report)
            # The heal() call appended its own record; fold the spot-check
            # cost in and surface the post-heal state as the cycle's record.
            return self.health_records()[-1]

    def _record(self, action, worst_error, implicated, cost, detail="") -> HealthRecord:
        record = HealthRecord(
            cycle=self._cycle,
            action=action,
            worst_error=worst_error,
            implicated=tuple(implicated),
            cost=cost,
            detail=detail,
        )
        self._cycle += 1
        fields = {
            "cycle": record.cycle,
            "action": record.action,
            "worst_error": float(record.worst_error),
            "implicated": list(record.implicated),
            "cost": float(record.cost),
            "detail": record.detail,
        }
        self.health_events.info("heal_cycle", **fields)
        tel = _obs.ACTIVE
        if tel is not None:
            tel.events.info("heal_cycle", **fields)
            tel.registry.counter(
                "maintainer_cycles_total", help="maintenance cycles by action",
                action=record.action,
            ).inc()
            tel.registry.gauge(
                "maintainer_worst_drift",
                help="worst relative drift seen by the latest cycle",
            ).set(float(record.worst_error))
        if self.journal is not None:
            self.journal.append({
                "type": "heal_cycle",
                "cycle": record.cycle,
                "action": record.action,
                "worst_error": float(record.worst_error),
                "implicated": list(record.implicated),
                "cost": float(record.cost),
                "detail": record.detail,
            })
        return record

    # -- history -------------------------------------------------------------

    def health_records(self) -> list[HealthRecord]:
        """Every recorded cycle, rebuilt from the structured event log."""
        return [
            HealthRecord(
                cycle=evt["cycle"],
                action=evt["action"],
                worst_error=evt["worst_error"],
                implicated=tuple(evt["implicated"]),
                cost=evt["cost"],
                detail=evt["detail"],
            )
            for evt in self.health_events.events("heal_cycle")
        ]

    @property
    def health_log(self) -> list[HealthRecord]:
        """Deprecated accessor kept for PR-1-era callers.

        The canonical storage is now ``health_events`` (an
        :class:`repro.obs.events.EventLog`); this shim rebuilds the old
        list-of-records view from it.
        """
        warnings.warn(
            "ModelMaintainer.health_log is deprecated; use health_records() "
            "or the structured health_events log",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.health_records()

    def render_log(self) -> str:
        """The health log as a human-readable block."""
        records = self.health_records()
        if not records:
            return "(no maintenance cycles recorded)"
        return "\n".join(record.render() for record in records)
