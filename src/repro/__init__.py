"""repro — the extended LMO communication performance model, reproduced.

A full implementation of Lastovetsky, Rychkov & O'Flynn, *Revisiting
communication performance models for computational clusters* (IPDPS
2009), on a simulated single-switch heterogeneous cluster:

- :mod:`repro.simlib` — discrete-event simulation kernel
- :mod:`repro.cluster` — the Table I cluster, MPI/TCP profiles, topology
- :mod:`repro.mpi` — mpi4py-style rank programs and collective algorithms
- :mod:`repro.models` — Hockney / LogP / LogGP / PLogP / LMO models and
  their collective prediction formulas
- :mod:`repro.estimation` — parameter estimation (the paper's eqs. 6-12),
  schedules, empirical thresholds, drift detection
- :mod:`repro.stats` — confidence intervals and adaptive repetition
- :mod:`repro.benchlib` — MPIBlib-style benchmarking
- :mod:`repro.optimize` — model-driven selection, splitting, mapping,
  partitioning, planning
- :mod:`repro.apps` — mini-applications (matvec, Jacobi)
- :mod:`repro.analysis` — prediction-accuracy scoring
- :mod:`repro.experiments` — one harness per paper table/figure
- :mod:`repro.io` — JSON model serialization
- :mod:`repro.api` — the stable facade (schema-v3 result types, error
  taxonomy); start here
- :mod:`repro.serve` — always-on prediction service daemon (NDJSON over
  TCP / Unix socket) speaking the same schema-v3 payloads
- :mod:`repro.cli` — ``python -m repro`` command-line interface

Quickstart::

    from repro import api

    cluster = api.load_cluster()                # Table I, LAM 7.1.3
    outcome = api.estimate(cluster)             # extended LMO (eqs. 6-12)
    predicted = api.predict(outcome.model, "scatter", "linear", 64 * 1024)
    observed = api.measure(cluster, "scatter", "linear", 64 * 1024)
    print(predicted.seconds, observed.mean)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
