"""Distributed dense matrix-vector multiply (y = A x).

The canonical data-parallel kernel the heterogeneous-partitioning
literature optimizes: the root scatters row blocks (``scatterv`` with
arbitrary per-rank counts), broadcasts the input vector, every rank
multiplies its block, and the root gathers the result (``gatherv``).

Numerics are real (numpy does the arithmetic and the result is checked
against ``A @ x``); time is simulated (the transport charges
communication, an explicit CPU hold charges ``2 * rows_i * ncols *
flop_time`` per rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.machine import SimulatedCluster
from repro.mpi.collectives import binomial, linear
from repro.mpi.comm import RankComm
from repro.mpi.runtime import run_ranks

__all__ = ["MatvecResult", "run_matvec", "row_partition_counts"]

FLOAT_BYTES = 8


@dataclass
class MatvecResult:
    """Outcome of one distributed matrix-vector multiply."""

    y: np.ndarray
    makespan: float
    row_counts: tuple[int, ...]

    def max_error(self, a: np.ndarray, x: np.ndarray) -> float:
        """Max absolute deviation from the serial ``A @ x``."""
        return float(np.abs(self.y - a @ x).max())


def row_partition_counts(byte_counts: Sequence[int], ncols: int) -> list[int]:
    """Convert a byte distribution into whole row counts (same total rows).

    ``byte_counts`` distributes ``nrows * ncols * 8`` bytes; rows are the
    indivisible unit, so round to rows preserving the total.
    """
    row_bytes = ncols * FLOAT_BYTES
    raw = np.asarray(byte_counts, dtype=float) / row_bytes
    floored = np.floor(raw).astype(int)
    total = int(round(sum(byte_counts) / row_bytes))
    deficit = total - int(floored.sum())
    order = np.argsort(-(raw - floored))
    for idx in order[:deficit]:
        floored[idx] += 1
    return [int(v) for v in floored]


def run_matvec(
    cluster: SimulatedCluster,
    a: np.ndarray,
    x: np.ndarray,
    row_counts: Optional[Sequence[int]] = None,
    flop_time: float = 1e-9,
    root: int = 0,
) -> MatvecResult:
    """Execute y = A x across the cluster; returns the result and timing.

    Parameters
    ----------
    a, x:
        The actual operands (numpy); ``a`` is ``(nrows, ncols)``.
    row_counts:
        Rows per rank (defaults to an even split).  Use
        :func:`repro.optimize.partition.optimal_partition` +
        :func:`row_partition_counts` for a model-optimized distribution.
    flop_time:
        Seconds per floating-point operation charged to each rank's CPU
        (one multiply-add = 2 flop).
    """
    nrows, ncols = a.shape
    if x.shape != (ncols,):
        raise ValueError(f"x must have {ncols} entries")
    n = cluster.n
    if row_counts is None:
        base = nrows // n
        row_counts = [base + (1 if r < nrows - base * n else 0) for r in range(n)]
    row_counts = list(row_counts)
    if sum(row_counts) != nrows or any(c < 0 for c in row_counts):
        raise ValueError(f"row_counts must be non-negative and sum to {nrows}")

    starts = np.concatenate([[0], np.cumsum(row_counts)]).astype(int)
    blocks = [a[starts[r]:starts[r + 1]] for r in range(n)]
    byte_counts = [int(c * ncols * FLOAT_BYTES) for c in row_counts]
    x_bytes = int(x.nbytes)

    def factory(rank: int):
        def program(comm: RankComm):
            # 1. scatter the row blocks (variable sizes).
            block = yield from linear.scatterv(comm, root, byte_counts, data=blocks)
            if rank == root:
                block = blocks[root]
            # 2. broadcast the input vector.
            vector = yield from binomial.bcast(
                comm, root, x_bytes, payload=x if rank == root else None
            )
            # 3. local compute: real numpy, simulated time.
            if block is not None and len(block):
                local = np.asarray(block) @ np.asarray(vector)
                flops = 2.0 * len(block) * ncols
                yield from cluster.cpu[rank].hold(
                    cluster.sim, cluster.noisy(flops * flop_time)
                )
            else:
                local = np.empty(0, dtype=a.dtype)
            # 4. gather the partial results.
            result_counts = [int(c * FLOAT_BYTES) for c in row_counts]
            gathered = yield from linear.gatherv(comm, root, result_counts, block=local)
            return gathered

        return program

    results = run_ranks(cluster, {rank: factory(rank) for rank in range(n)})
    gathered = results[root].value
    parts = [np.asarray(part) for part in gathered if part is not None and len(part)]
    y = np.concatenate(parts) if parts else np.empty(0, dtype=a.dtype)
    makespan = max(res.finish for res in results.values())
    return MatvecResult(y=y, makespan=makespan, row_counts=tuple(row_counts))
