"""Run per-rank programs on the simulated cluster and time them.

The runtime is the simulator-side analogue of ``mpiexec``: it spawns one
process per rank, runs the virtual clock, and reports per-rank completion
times.  All ranks start at virtual time zero — i.e. barrier-synchronized,
the standard benchmarking discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Mapping, Optional, Sequence

from repro.cluster.machine import SimulatedCluster
from repro.mpi.comm import MessageLayer, RankComm
from repro.mpi.collectives import get_algorithm
from repro.obs import prof as _prof
from repro.obs import runtime as _obs

__all__ = [
    "CollectiveRun",
    "DeadlockError",
    "RankResult",
    "run_collective",
    "run_group_collective",
    "run_ranks",
]


class DeadlockError(RuntimeError):
    """Raised when rank programs cannot all complete (missing messages)."""


@dataclass
class RankResult:
    """Completion record of one rank's program."""

    rank: int
    finish: float
    value: Any


@dataclass
class CollectiveRun:
    """Timing of one collective execution.

    Attributes
    ----------
    time:
        Global completion time (max over ranks) — what an external
        observer would call the duration of the operation.
    root_time:
        The root's local completion time (sender-side timing method).
    """

    results: dict[int, RankResult]
    root: int

    @property
    def time(self) -> float:
        return max(res.finish for res in self.results.values())

    @property
    def root_time(self) -> float:
        return self.results[self.root].finish

    def value(self, rank: int) -> Any:
        """The return value of ``rank``'s program."""
        return self.results[rank].value


def run_ranks(
    cluster: SimulatedCluster,
    programs: Mapping[int, Callable[[RankComm], Generator]],
    reset: bool = True,
) -> dict[int, RankResult]:
    """Execute rank programs to completion; returns per-rank results.

    Parameters
    ----------
    programs:
        Maps ranks to program factories.  Ranks not present simply idle —
        experiments between pairs/triplets leave the rest of the cluster
        silent, exactly like the paper's estimation runs.
    reset:
        Start from a fresh virtual time zero (default).  Pass ``False``
        to continue on the current simulator (e.g. back-to-back
        repetitions with live port state).
    """
    if reset:
        cluster.reset()
    layer = MessageLayer(cluster)
    results: dict[int, RankResult] = {}

    def wrap(rank: int, factory: Callable[[RankComm], Generator]) -> Generator:
        value = yield from factory(layer.rank_comm(rank))
        results[rank] = RankResult(rank, cluster.sim.now, value)
        return value

    for rank, factory in sorted(programs.items()):
        if not (0 <= rank < cluster.n):
            raise ValueError(f"rank {rank} out of range for {cluster.n}-node cluster")
        cluster.sim.spawn(wrap(rank, factory), name=f"rank{rank}")
    # Attach the active deterministic profiler (if any) for this run —
    # the kernel itself never imports repro.obs, it just honors the
    # duck-typed ``profiler`` attribute.
    cluster.sim.profiler = _prof.ACTIVE
    try:
        with _obs.span("sim.run", n=cluster.n, ranks=len(programs)):
            cluster.sim.run()
    finally:
        cluster.sim.profiler = None

    stuck = sorted(set(programs) - set(results))
    if stuck:
        raise DeadlockError(
            f"ranks {stuck} never completed: unmatched sends/receives "
            "(check sources, destinations and tags)"
        )
    return results


def run_collective(
    cluster: SimulatedCluster,
    operation: str,
    algorithm: str,
    nbytes: int,
    root: int = 0,
    data: Optional[Sequence[Any]] = None,
    **kwargs,
) -> CollectiveRun:
    """Execute one collective on all ranks and time it.

    ``nbytes`` is the per-block size for scatter/gather/allgather/alltoall
    and the full message size for bcast/reduce, matching the paper's use
    of *M* throughout.  The variable-block collectives (``scatterv``,
    ``gatherv``) take per-rank ``counts`` via keyword argument instead and
    ignore ``nbytes``.
    """
    fn = get_algorithm(operation, algorithm)

    def factory_for(rank: int) -> Callable[[RankComm], Generator]:
        def factory(comm: RankComm) -> Generator:
            if operation == "scatter":
                return fn(comm, root, nbytes, data=data, **kwargs)
            if operation == "scatterv":
                return fn(comm, root, data=data, **kwargs)
            if operation == "gather":
                block = None if data is None else data[rank]
                return fn(comm, root, nbytes, block=block, **kwargs)
            if operation == "gatherv":
                block = None if data is None else data[rank]
                return fn(comm, root, block=block, **kwargs)
            if operation in ("bcast",):
                payload = data if rank == root else None
                return fn(comm, root, nbytes, payload=payload, **kwargs)
            if operation == "reduce":
                value = None if data is None else data[rank]
                return fn(comm, root, nbytes, value=value, **kwargs)
            if operation == "allreduce":
                value = None if data is None else data[rank]
                return fn(comm, nbytes, value=value, **kwargs)
            if operation == "allgather":
                block = None if data is None else data[rank]
                return fn(comm, nbytes, block=block, **kwargs)
            if operation == "reduce_scatter":
                blocks = None if data is None else data[rank]
                return fn(comm, nbytes, blocks=blocks, **kwargs)
            if operation == "alltoall":
                return fn(comm, nbytes, **kwargs)
            if operation == "barrier":
                return fn(comm, **kwargs)
            raise KeyError(f"unknown operation {operation!r}")

        return factory

    programs = {rank: factory_for(rank) for rank in range(cluster.n)}
    results = run_ranks(cluster, programs)
    return CollectiveRun(results=results, root=root)


def run_group_collective(
    cluster: SimulatedCluster,
    members: Sequence[int],
    operation: str,
    algorithm: str,
    nbytes: int,
    root: int = 0,
    data: Optional[Sequence[Any]] = None,
    **kwargs,
) -> CollectiveRun:
    """Execute a collective on a *subset* of nodes (a sub-communicator).

    ``members`` lists the participating physical nodes; ``root`` and data
    indices are group-relative (0..len(members)-1), exactly like ranks
    after an ``MPI_Comm_split``.  Non-members idle.  The returned run is
    keyed by group rank.
    """
    fn = get_algorithm(operation, algorithm)
    members = list(members)
    if not (0 <= root < len(members)):
        raise ValueError(f"group root {root} out of range for {len(members)} members")

    def factory_for(group_rank: int) -> Callable[[RankComm], Generator]:
        physical = members[group_rank]

        def factory(world_comm: RankComm) -> Generator:
            comm = world_comm.layer.group_comm(members, physical)
            if operation == "scatter":
                return fn(comm, root, nbytes, data=data, **kwargs)
            if operation == "gather":
                block = None if data is None else data[group_rank]
                return fn(comm, root, nbytes, block=block, **kwargs)
            if operation == "bcast":
                payload = data if group_rank == root else None
                return fn(comm, root, nbytes, payload=payload, **kwargs)
            raise KeyError(
                f"group collectives support scatter/gather/bcast, not {operation!r}"
            )

        return factory

    programs = {members[g]: factory_for(g) for g in range(len(members))}
    raw = run_ranks(cluster, programs)
    results = {
        g: RankResult(g, raw[members[g]].finish, raw[members[g]].value)
        for g in range(len(members))
    }
    return CollectiveRun(results=results, root=root)
