"""Online escalation detectors: live ``M1``/``M2`` from the telemetry stream.

The paper's gather irregularity is a *size region*: between ``M1`` and
``M2`` a linear-gather transfer non-deterministically eats a TCP RTO
escalation (~0.2 s).  :func:`repro.estimation.empirical.detect_gather_irregularity`
finds that region offline, from a dedicated size sweep.  This module
finds it *online*, from the transfer telemetry every simulated run
already emits:

* ``sim_transfer_bytes`` — every transfer's size (log2 buckets);
* ``sim_escalated_transfer_bytes`` — sizes of transfers that ate a
  *natural* (incast) escalation — injected link-loss escalations are
  excluded, they happen at any size and say nothing about the region;
* ``rto_escalation_seconds`` — the escalation delays themselves.

Per size bucket, escalated/transfers is an escalation-probability
estimate; the contiguous run of buckets above ``rate_floor`` brackets
the irregularity region at log2 resolution.  ``compare`` checks the
live estimate against the offline thresholds and narrates divergence
into the event log — the "the model's empirical parameters have gone
stale" signal the maintainer and the alert engine consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.obs import runtime as _runtime
from repro.obs.metrics import bucket_quantile

__all__ = [
    "DELAY_METRIC",
    "Divergence",
    "ESCALATED_METRIC",
    "EscalationDetector",
    "LiveIrregularity",
    "TRANSFER_METRIC",
]

TRANSFER_METRIC = "sim_transfer_bytes"
ESCALATED_METRIC = "sim_escalated_transfer_bytes"
DELAY_METRIC = "rto_escalation_seconds"

#: Transfer-size histograms cover 1 B .. 256 MB.
SIZE_LO = 0
SIZE_HI = 28


@dataclass(frozen=True)
class BucketRate:
    """Escalation probability estimate for one log2 size bucket."""

    upper: float
    transfers: int
    escalated: int

    @property
    def rate(self) -> float:
        return self.escalated / self.transfers if self.transfers else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "upper": self.upper, "transfers": self.transfers,
            "escalated": self.escalated, "rate": self.rate,
        }


@dataclass(frozen=True)
class LiveIrregularity:
    """The irregularity region as seen by live telemetry.

    Log2-bucket resolution: ``m1`` is the lower edge of the first
    escalating bucket, ``m2`` the upper edge of the last — both within a
    factor of 2 of the true thresholds by construction.
    """

    m1: float
    m2: float
    escalation_value: float
    rates: tuple[BucketRate, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "m1": self.m1, "m2": self.m2,
            "escalation_value": self.escalation_value,
            "rates": [r.to_dict() for r in self.rates],
        }


@dataclass(frozen=True)
class Divergence:
    """One live parameter that disagrees with its offline reference."""

    parameter: str
    live: float
    reference: float
    ratio: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "parameter": self.parameter, "live": self.live,
            "reference": self.reference, "ratio": self.ratio,
        }


class EscalationDetector:
    """Streaming (or snapshot-fed) estimator of the escalation region.

    ``observe`` is the streaming path; :meth:`from_snapshot` rebuilds the
    same state from a metrics section, so the detector runs identically
    on a live session and on a ``--metrics-out`` file.
    """

    def __init__(self, rate_floor: float = 0.02, min_transfers: int = 4) -> None:
        if not (0.0 < rate_floor <= 1.0):
            raise ValueError(f"rate_floor must be in (0, 1], got {rate_floor}")
        self.rate_floor = rate_floor
        self.min_transfers = min_transfers
        #: upper bucket bound -> [transfers, escalated]
        self._buckets: dict[float, list[int]] = {}
        self._delays: list[float] = []

    # -- ingestion -----------------------------------------------------------
    @staticmethod
    def _upper(nbytes: float) -> float:
        n = max(1, int(nbytes))
        upper = 1 << (n - 1).bit_length()
        return float(min(upper, 1 << SIZE_HI))

    def observe(self, nbytes: float, escalated: bool, delay: float = 0.0) -> None:
        """Ingest one transfer: its size, whether it escalated, the cost."""
        slot = self._buckets.setdefault(self._upper(nbytes), [0, 0])
        slot[0] += 1
        if escalated:
            slot[1] += 1
            if delay > 0:
                self._delays.append(float(delay))

    @classmethod
    def from_snapshot(
        cls,
        metrics: Mapping[str, Any],
        rate_floor: float = 0.02,
        min_transfers: int = 4,
    ) -> "EscalationDetector":
        """Rebuild detector state from a metrics snapshot section."""
        detector = cls(rate_floor=rate_floor, min_transfers=min_transfers)
        transfers = _bucket_counts(metrics.get(TRANSFER_METRIC))
        escalated = _bucket_counts(metrics.get(ESCALATED_METRIC))
        for upper, n in transfers.items():
            detector._buckets[upper] = [n, escalated.get(upper, 0)]
        # Escalated sizes whose transfer twin was clipped (shouldn't
        # happen, but a snapshot is external input): count them anyway.
        for upper, n in escalated.items():
            if upper not in detector._buckets:
                detector._buckets[upper] = [n, n]
        delay_family = metrics.get(DELAY_METRIC)
        if delay_family:
            for sample in delay_family.get("samples", ()):
                if sample.get("labels", {}).get("cause") not in (None, "incast"):
                    continue
                count = int(sample["count"])
                if count:
                    detector._delays.append(
                        bucket_quantile(sample["buckets"], count, 0.50)
                    )
        return detector

    # -- estimation ----------------------------------------------------------
    def rates(self) -> tuple[BucketRate, ...]:
        return tuple(
            BucketRate(upper=upper, transfers=slot[0], escalated=slot[1])
            for upper, slot in sorted(self._buckets.items())
        )

    def estimate(self) -> LiveIrregularity:
        """The live irregularity region; raises if nothing escalated yet."""
        rates = self.rates()
        escalating = [
            r for r in rates
            if r.transfers >= self.min_transfers and r.rate >= self.rate_floor
        ]
        if not escalating:
            raise ValueError(
                "no escalating size bucket observed yet; need more traffic "
                "through the irregularity region"
            )
        m1 = escalating[0].upper / 2.0
        m2 = escalating[-1].upper
        delays = sorted(self._delays)
        value = delays[len(delays) // 2] if delays else 0.0
        return LiveIrregularity(
            m1=m1, m2=m2, escalation_value=value, rates=rates,
        )

    def compare(
        self,
        reference: Any,
        tolerance: float = 2.0,
        live: Optional[LiveIrregularity] = None,
    ) -> list[Divergence]:
        """Check the live estimate against offline thresholds.

        ``reference`` is anything with ``m1``/``m2``/``escalation_value``
        attributes (a :class:`repro.models.lmo_extended.GatherIrregularity`).
        Parameters further than ``tolerance``x apart are divergences,
        narrated as ``fidelity_divergence`` events when telemetry is on.
        """
        if tolerance < 1.0:
            raise ValueError(f"tolerance is a ratio >= 1, got {tolerance}")
        if live is None:
            live = self.estimate()
        out: list[Divergence] = []
        for parameter, mine, theirs in (
            ("m1", live.m1, float(reference.m1)),
            ("m2", live.m2, float(reference.m2)),
            ("escalation_value", live.escalation_value,
             float(reference.escalation_value)),
        ):
            lo, hi = sorted((abs(mine), abs(theirs)))
            ratio = hi / lo if lo > 0 else (1.0 if hi == 0 else float("inf"))
            if ratio > tolerance:
                out.append(Divergence(
                    parameter=parameter, live=mine, reference=theirs, ratio=ratio,
                ))
        tel = _runtime.ACTIVE
        if tel is not None:
            for div in out:
                tel.registry.counter(
                    "fidelity_divergences_total",
                    "live irregularity parameters out of tolerance",
                    parameter=div.parameter,
                ).inc()
                tel.events.warning(
                    "fidelity_divergence",
                    parameter=div.parameter, live=div.live,
                    reference=div.reference, ratio=div.ratio,
                )
        return out


def _bucket_counts(family: Optional[Mapping[str, Any]]) -> dict[float, int]:
    """Merge a histogram family's samples into {upper bound: count}."""
    out: dict[float, int] = {}
    if not family:
        return out
    for sample in family.get("samples", ()):
        for bound, n in sample.get("buckets", ()):
            if bound == "+Inf" or not n:
                continue
            upper = float(bound)
            out[upper] = out.get(upper, 0) + int(n)
    return out
