"""Message-passing layer on the simulated cluster (mpi4py-flavoured).

Rank programs are generators.  Blocking calls are spelled
``yield from comm.send(...)`` / ``env = yield from comm.recv(...)``;
non-blocking calls return a :class:`~repro.mpi.requests.Request` whose
completion event the program can yield (mirroring mpi4py's
``isend``/``irecv`` + ``wait``).

Semantics implemented faithfully:

* **Blocking send returns at local completion** — once the sender CPU has
  handed the message to the transport — not at remote delivery.  This is
  what makes the root of a linear scatter a *pipelined* serial bottleneck,
  the effect the LMO model captures with its ``(n-1)(C_r + M t_r)`` term.
* **Rendezvous sends block until the receiver has posted a matching
  receive** (LAM's long protocol), via a credit handshake.
* **Non-overtaking**: messages between one (source, destination, tag)
  triple are matched in transmission order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Optional, Sequence

import numpy as np

from repro.cluster.machine import SimulatedCluster
from repro.mpi.requests import Request
from repro.simlib import Event, Store

__all__ = ["Envelope", "GroupComm", "MessageLayer", "RankComm", "payload_nbytes"]

#: Tag reserved by collective algorithms.
COLL_TAG = 0x7FFF

#: Wildcards for receives (mirroring MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload: ``.nbytes`` for arrays, else ``len`` bytes."""
    if payload is None:
        return 0
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    raise TypeError(
        f"cannot infer wire size of {type(payload).__name__}; pass nbytes explicitly"
    )


@dataclass
class Envelope:
    """One message in flight (metadata plus optional payload)."""

    src: int
    dst: int
    tag: int
    nbytes: int
    seq: int
    payload: Any = None


class MessageLayer:
    """Shared matching state of one communicator over a cluster."""

    def __init__(self, cluster: SimulatedCluster):
        self.cluster = cluster
        sim = cluster.sim
        n = cluster.n
        self.mailboxes = [Store(sim, f"mbox{i}") for i in range(n)]
        # Rendezvous handshake: receives grant credits, long sends consume
        # them (waiting if none available yet).
        self._rdv_credits: dict[tuple[int, int, int], int] = {}
        self._rdv_waiters: dict[tuple[int, int, int], deque[Event]] = {}
        self._seq = 0

    @property
    def size(self) -> int:
        """Communicator size (== cluster size)."""
        return self.cluster.n

    def rank_comm(self, rank: int) -> "RankComm":
        """The per-rank view used inside rank programs."""
        return RankComm(self, rank)

    def group_comm(self, members: Sequence[int], member: int) -> "GroupComm":
        """A sub-communicator over ``members`` for physical node ``member``.

        The returned communicator renumbers the group 0..len(members)-1
        (like ``MPI_Comm_split``), so every collective algorithm works on
        the subset unchanged.
        """
        return GroupComm(self, list(members), member)

    # -- rendezvous bookkeeping ------------------------------------------------
    def grant_recv_credit(self, dst: int, src: int, tag: int) -> None:
        key = (dst, src, tag)
        waiters = self._rdv_waiters.get(key)
        if waiters:
            waiters.popleft().succeed()
        else:
            self._rdv_credits[key] = self._rdv_credits.get(key, 0) + 1

    def rendezvous_gate(self, dst: int, src: int, tag: int) -> Optional[Event]:
        """Event a long send must wait on, or None if a credit is banked."""
        key = (dst, src, tag)
        if self._rdv_credits.get(key, 0) > 0:
            self._rdv_credits[key] -= 1
            return None
        evt = Event(self.cluster.sim)
        self._rdv_waiters.setdefault(key, deque()).append(evt)
        return evt

    # -- message initiation --------------------------------------------------
    def start_send(
        self, src: int, dst: int, nbytes: int, tag: int, payload: Any
    ) -> Request:
        """Launch the transport pipeline for one message.

        Returns a request whose ``sent`` event fires at local completion
        and whose ``done`` event fires at remote delivery.
        """
        cluster = self.cluster
        sim = cluster.sim
        self._seq += 1
        env = Envelope(src, dst, tag, nbytes, self._seq, payload)
        sent = Event(sim)
        gate = None
        if cluster.profile.uses_rendezvous(nbytes):
            gate = self.rendezvous_gate(dst, src, tag)

        def pipeline() -> Generator:
            yield from cluster.transmit(src, dst, nbytes, rendezvous_ready=gate, on_sent=sent)
            self.mailboxes[dst].put(env)
            return env

        proc = sim.spawn(pipeline(), name=f"msg{env.seq}:{src}->{dst}")
        return Request(kind="send", sent=sent, done=proc, envelope=env)

    def start_recv(self, dst: int, src: int, tag: int) -> Request:
        """Post a receive; its ``done`` event fires with the envelope.

        ``src``/``tag`` may be the :data:`ANY_SOURCE`/:data:`ANY_TAG`
        wildcards.  Wildcard receives cannot pre-grant rendezvous credits
        (the sender is unknown), so a wildcard receive matches a long
        message only once some specific receive has released it — exactly
        MPI's behaviour, where wildcard receives of rendezvous messages
        match at the protocol level, not eagerly.
        """
        if src != ANY_SOURCE and tag != ANY_TAG:
            self.grant_recv_credit(dst, src, tag)

        def matches(envelope: Envelope) -> bool:
            return (src == ANY_SOURCE or envelope.src == src) and (
                tag == ANY_TAG or envelope.tag == tag
            )

        get = self.mailboxes[dst].get(matches)
        return Request(kind="recv", sent=get, done=get)


class RankComm:
    """One rank's communicator handle (what a rank program sees).

    Mirrors the mpi4py surface where it makes sense for a simulator:
    ``rank``/``size`` attributes, blocking ``send``/``recv`` (generators),
    non-blocking ``isend``/``irecv`` (returning requests).
    """

    def __init__(self, layer: MessageLayer, rank: int):
        if not (0 <= rank < layer.size):
            raise ValueError(f"rank {rank} out of range for size {layer.size}")
        self.layer = layer
        self.rank = rank

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.layer.size

    @property
    def sim(self):
        """The simulator (rank programs read ``comm.sim.now`` for timing)."""
        return self.layer.cluster.sim

    # -- point-to-point -------------------------------------------------------
    def isend(
        self, dest: int, payload: Any = None, nbytes: Optional[int] = None, tag: int = 0
    ) -> Request:
        """Non-blocking send; ``yield req.sent`` for local completion."""
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return self.layer.start_send(self.rank, dest, size, tag, payload)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``env = yield req.done``.

        ``source``/``tag`` default to the wildcards (match anything).
        """
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        return self.layer.start_recv(self.rank, source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """Non-blocking probe: the first matching delivered-but-unreceived
        envelope, or None (``MPI_Iprobe``).  The message stays queued."""
        return self.layer.mailboxes[self.rank].peek(
            lambda e: (source == ANY_SOURCE or e.src == source)
            and (tag == ANY_TAG or e.tag == tag)
        )

    def send(
        self, dest: int, payload: Any = None, nbytes: Optional[int] = None, tag: int = 0
    ) -> Generator:
        """Blocking send: completes when the local buffer is handed off."""
        req = self.isend(dest, payload, nbytes, tag)
        yield req.sent
        return req.envelope

    def wait(self, req: Request) -> Generator:
        """Complete a request, charging receive processing for receives.

        For a receive request this waits for delivery and then holds this
        rank's CPU for ``C + M t`` — the memcpy out of the transport
        buffer that real MPI performs inside ``MPI_Recv``/``MPI_Wait``.
        Returns the envelope.  For send requests it waits for remote
        delivery and returns the envelope.
        """
        env = yield req.done
        if req.kind == "recv":
            cluster = self.layer.cluster
            cost = cluster.noisy(cluster.processing_cost(self.rank, env.nbytes))
            usage = cluster.cpu[self.rank].request()
            yield usage
            start = cluster.sim.now
            try:
                yield cluster.sim.timeout(cost)
            finally:
                cluster.cpu[self.rank].release(usage)
                cluster.trace(f"cpu{self.rank}", start, cluster.sim.now, "r")
        return env

    def recv(self, source: int, tag: int = 0) -> Generator:
        """Blocking receive: completes after receive processing; returns
        the envelope."""
        req = self.irecv(source, tag)
        env = yield from self.wait(req)
        return env

    # -- convenience used by experiments ---------------------------------------
    def sendrecv(
        self, peer: int, nbytes: int, reply_nbytes: int, tag: int = 0
    ) -> Generator:
        """Send ``nbytes`` to ``peer`` and wait for a ``reply_nbytes`` reply."""
        yield from self.send(peer, nbytes=nbytes, tag=tag)
        env = yield from self.recv(peer, tag=tag)
        if env.nbytes != reply_nbytes:
            raise RuntimeError(
                f"rank {self.rank}: expected {reply_nbytes}-byte reply, got {env.nbytes}"
            )
        return env

    def make_payload(self, nbytes: int) -> np.ndarray:
        """A concrete byte buffer of ``nbytes`` (examples use real data)."""
        return np.zeros(nbytes, dtype=np.uint8)


class GroupComm(RankComm):
    """A sub-communicator: group ranks 0..g-1 over a subset of nodes.

    The analogue of ``MPI_Comm_split``: collectives written against
    :class:`RankComm` run on the subset unchanged, because ``rank``/
    ``size`` are group-relative and destinations are translated to
    physical nodes at the send/receive boundary.  The receive-processing
    CPU accounting in :meth:`RankComm.wait` keys off the *physical* rank,
    which :attr:`rank` here is not — hence the override below.
    """

    def __init__(self, layer: MessageLayer, members: list[int], member: int):
        if len(set(members)) != len(members):
            raise ValueError("group members must be distinct")
        for node in members:
            if not (0 <= node < layer.size):
                raise ValueError(f"node {node} out of range for size {layer.size}")
        if member not in members:
            raise ValueError(f"node {member} is not in the group {members}")
        super().__init__(layer, member)
        self.members = list(members)
        self._physical = member
        self._group_rank = members.index(member)

    # -- group-relative identity -------------------------------------------
    @property
    def size(self) -> int:  # type: ignore[override]
        """Group size (not the world size)."""
        return len(self.members)

    @property
    def rank(self) -> int:  # type: ignore[override]
        """Group-relative rank."""
        return self._group_rank

    @rank.setter
    def rank(self, value: int) -> None:
        # RankComm.__init__ assigns self.rank = world rank; swallow it —
        # the group identity is fixed by (members, member).
        pass

    @property
    def physical_rank(self) -> int:
        """The underlying cluster node this group rank runs on."""
        return self._physical

    def translate(self, group_rank: int) -> int:
        """Physical node of a group rank."""
        if not (0 <= group_rank < len(self.members)):
            raise ValueError(f"group rank {group_rank} out of range")
        return self.members[group_rank]

    # -- boundary translation -------------------------------------------------
    def isend(self, dest: int, payload: Any = None, nbytes: Optional[int] = None,
              tag: int = 0) -> Request:
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        return self.layer.start_send(
            self._physical, self.translate(dest), size, tag, payload
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        if source == self.rank:
            raise ValueError("self-receives are not supported")
        physical_src = ANY_SOURCE if source == ANY_SOURCE else self.translate(source)
        return self.layer.start_recv(self._physical, physical_src, tag)

    def wait(self, req: Request) -> Generator:
        env = yield req.done
        if req.kind == "recv":
            cluster = self.layer.cluster
            cost = cluster.noisy(cluster.processing_cost(self._physical, env.nbytes))
            usage = cluster.cpu[self._physical].request()
            yield usage
            start = cluster.sim.now
            try:
                yield cluster.sim.timeout(cost)
            finally:
                cluster.cpu[self._physical].release(usage)
                cluster.trace(f"cpu{self._physical}", start, cluster.sim.now, "r")
        return env
