"""Tests for the noise model."""

import numpy as np
import pytest

from repro.cluster import NoiseModel


def test_disabled_noise_is_identity():
    rng = np.random.default_rng(0)
    model = NoiseModel.none()
    assert not model.enabled
    for d in [0.0, 1e-6, 1.0]:
        assert model.perturb(d, rng) == d


def test_default_noise_is_small_and_positive():
    rng = np.random.default_rng(1)
    model = NoiseModel.default()
    base = 1e-3
    samples = np.array([model.perturb(base, rng) for _ in range(2000)])
    assert (samples > 0).all()
    # Median multiplicative factor ~1, spread ~1%.
    assert np.median(samples) == pytest.approx(base, rel=0.01)
    assert samples.std() / base < 0.2  # spikes allowed but rare


def test_spikes_occur_at_configured_rate():
    rng = np.random.default_rng(2)
    model = NoiseModel(rel_sigma=0.0, spike_prob=0.5, spike_mean=1.0)
    base = 1e-6
    samples = [model.perturb(base, rng) for _ in range(1000)]
    spiked = sum(1 for s in samples if s > 0.01)
    assert 400 < spiked < 600


def test_noise_is_reproducible_per_rng_seed():
    model = NoiseModel.default()
    a = [model.perturb(1.0, np.random.default_rng(7)) for _ in range(1)]
    b = [model.perturb(1.0, np.random.default_rng(7)) for _ in range(1)]
    assert a == b


def test_negative_duration_rejected():
    with pytest.raises(ValueError):
        NoiseModel.default().perturb(-1.0, np.random.default_rng(0))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        NoiseModel(rel_sigma=-0.1)
    with pytest.raises(ValueError):
        NoiseModel(spike_prob=1.5)
