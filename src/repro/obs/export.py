"""Exposition: one snapshot document, three output formats.

``repro obs export`` (and ``api.telemetry().to_dict()``) deal in the
*snapshot document* — the JSON written by ``--metrics-out``::

    {"format": "repro-telemetry", "version": 1,
     "metrics": {...}, "spans": [...], "events": [...]}

This module renders that document as:

* **prom** — Prometheus text exposition of the metrics section;
* **json** — the document itself (validated, pretty-printed);
* **chrome** — Chrome trace-event JSON of the spans section, optionally
  *merged* with a simulated-time :class:`repro.simlib.trace.Tracer`:
  wall-clock spans appear as one process, each sim lane as another, so
  ``chrome://tracing`` shows "what the process did" stacked above "what
  the simulated hardware did" in a single timeline.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence

from repro.obs.metrics import bucket_quantile, prometheus_text

__all__ = [
    "SNAPSHOT_FORMAT",
    "chrome_trace",
    "render_report",
    "snapshot_prometheus",
    "validate_snapshot",
]

SNAPSHOT_FORMAT = "repro-telemetry"


def validate_snapshot(doc: Mapping[str, Any]) -> Mapping[str, Any]:
    """Check a loaded snapshot document's frame; returns it unchanged."""
    if not isinstance(doc, Mapping) or doc.get("format") != SNAPSHOT_FORMAT:
        found = doc.get("format") if isinstance(doc, Mapping) else doc
        raise ValueError(
            f"not a telemetry snapshot (format={found!r}); "
            "expected a file written by --metrics-out"
        )
    version = doc.get("version")
    if not isinstance(version, int) or version > 1:
        raise ValueError(f"unsupported telemetry snapshot version {version!r}")
    return doc


def snapshot_prometheus(doc: Mapping[str, Any]) -> str:
    """Prometheus text exposition of a snapshot's metrics section."""
    return prometheus_text(validate_snapshot(doc).get("metrics", {}))


# -- chrome trace ----------------------------------------------------------------
def _span_events(spans: Sequence[Mapping[str, Any]], pid: int) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "wall-clock spans"},
    }]
    for span in spans:
        end = span.get("end")
        if end is None:
            continue
        args = dict(span.get("attrs", {}))
        if span.get("trace_id"):
            args["trace_id"] = span["trace_id"]
        events.append({
            "name": span["name"],
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "ts": float(span["start"]) * 1e6,
            "dur": (float(end) - float(span["start"])) * 1e6,
            "args": args,
        })
    return events


def chrome_trace(
    spans: Sequence[Mapping[str, Any]] = (),
    tracer: Optional[object] = None,
) -> str:
    """Chrome trace-event JSON of wall spans and/or a sim-time tracer.

    ``tracer`` is duck-typed against :class:`repro.simlib.trace.Tracer`
    (``lanes()`` + ``intervals``), keeping :mod:`repro.obs` free of any
    repro dependency.  Wall spans get pid 0; sim lanes get pids 1+.
    Sim-time lanes use *simulated* microseconds — the two clocks share a
    file, not an epoch, which is exactly what you want side by side.
    """
    events = _span_events(spans, pid=0) if spans else []
    if tracer is not None:
        lanes = {lane: idx + 1 for idx, lane in enumerate(tracer.lanes())}
        for lane, pid in lanes.items():
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"sim:{lane}"},
            })
        for interval in tracer.intervals:
            events.append({
                "name": interval.label or "activity",
                "ph": "X",
                "pid": lanes[interval.lane],
                "tid": 0,
                "ts": interval.start * 1e6,
                "dur": interval.duration * 1e6,
            })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


# -- human-readable report -------------------------------------------------------
def _histogram_line(name: str, labels: Mapping[str, str], sample: Mapping[str, Any]) -> str:
    count = sample["count"]
    mean = sample["sum"] / count if count else 0.0
    tag = _label_tag(labels)
    line = f"  {name}{tag}: count {count}, mean {mean:.3g}, sum {sample['sum']:.3g}"
    if count:
        p50 = bucket_quantile(sample["buckets"], count, 0.50)
        p95 = bucket_quantile(sample["buckets"], count, 0.95)
        line += f", p50 {p50:.3g}, p95 {p95:.3g}"
    return line


def _label_tag(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def render_report(doc: Mapping[str, Any]) -> str:
    """One screen of text summarizing a snapshot document."""
    validate_snapshot(doc)
    lines: list[str] = []
    metrics = doc.get("metrics", {})
    if metrics:
        lines.append(f"metrics ({len(metrics)} families):")
        for name in sorted(metrics):
            family = metrics[name]
            for sample in family["samples"]:
                labels = sample.get("labels", {})
                if family["type"] == "histogram":
                    lines.append(_histogram_line(name, labels, sample))
                else:
                    value = sample["value"]
                    shown = int(value) if float(value).is_integer() else f"{value:.6g}"
                    lines.append(f"  {name}{_label_tag(labels)}: {shown}")
    else:
        lines.append("metrics: (none)")

    events = doc.get("events", [])
    by_name: dict[str, int] = {}
    for record in events:
        by_name[record["name"]] = by_name.get(record["name"], 0) + 1
    lines.append(f"events ({len(events)} in ring):")
    for name in sorted(by_name):
        lines.append(f"  {name}: {by_name[name]}")
    if not by_name:
        lines.append("  (none)")

    spans = [s for s in doc.get("spans", []) if s.get("end") is not None]
    totals: dict[str, tuple[int, float]] = {}
    for span in spans:
        count, total = totals.get(span["name"], (0, 0.0))
        totals[span["name"]] = (count + 1, total + float(span["end"]) - float(span["start"]))
    lines.append(f"spans ({len(spans)} finished):")
    for name in sorted(totals):
        count, total = totals[name]
        lines.append(f"  {name}: {count} x, {total:.4f} s total")
    if not totals:
        lines.append("  (none)")
    return "\n".join(lines)
