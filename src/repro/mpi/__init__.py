"""MPI-like message-passing layer on the simulated cluster.

Rank programs are generators driven by the DES; the API mirrors mpi4py
(``send``/``recv``/``isend``/``irecv`` plus collective algorithms), and
the runtime mirrors ``mpiexec``.
"""

from repro.mpi.comm import COLL_TAG, Envelope, GroupComm, MessageLayer, RankComm, payload_nbytes
from repro.mpi.requests import Request
from repro.mpi.runtime import (
    CollectiveRun,
    DeadlockError,
    RankResult,
    run_collective,
    run_group_collective,
    run_ranks,
)

__all__ = [
    "COLL_TAG",
    "CollectiveRun",
    "DeadlockError",
    "Envelope",
    "GroupComm",
    "MessageLayer",
    "RankComm",
    "RankResult",
    "Request",
    "payload_nbytes",
    "run_collective",
    "run_group_collective",
    "run_ranks",
]
