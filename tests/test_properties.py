"""Cross-cutting property-based tests on simulator and model invariants.

These pin the global contracts the figures rely on: determinism,
monotonicity, model-consistency, and the relationship between the DES and
the analytic formulas.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.models import (
    ExtendedLMOModel,
    predict_binomial_scatter,
    predict_linear_pipelined,
    predict_linear_scatter,
)
from repro.mpi import run_collective

KB = 1024


def quiet(n, seed):
    gt = GroundTruth.random(n, seed=seed)
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return cluster, ExtendedLMOModel.from_ground_truth(gt)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 10), seed=st.integers(0, 100),
       op=st.sampled_from(["scatter", "gather"]),
       algo=st.sampled_from(["linear", "binomial"]))
def test_noise_free_runs_are_bit_identical(n, seed, op, algo):
    cluster, _model = quiet(n, seed)
    t1 = run_collective(cluster, op, algo, nbytes=4 * KB).time
    t2 = run_collective(cluster, op, algo, nbytes=4 * KB).time
    assert t1 == t2


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 10), seed=st.integers(0, 100))
def test_collective_time_monotone_in_message_size(n, seed):
    cluster, _model = quiet(n, seed)
    times = [
        run_collective(cluster, "scatter", "linear", nbytes=m).time
        for m in (0, KB, 8 * KB, 64 * KB)
    ]
    assert all(b >= a for a, b in zip(times, times[1:]))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), m=st.integers(1, 1 << 18))
def test_scatter_time_grows_with_cluster_size(seed, m):
    small, _ = quiet(4, seed)
    large, _ = quiet(10, seed)
    # Same node 0? Different ground truths, so compare loosely: more
    # receivers means more serial root slots — at least 1.5x for 2.5x n.
    t_small = run_collective(small, "scatter", "linear", nbytes=m).time
    t_large = run_collective(large, "scatter", "linear", nbytes=m).time
    assert t_large > t_small * 0.8  # never collapses


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 10), seed=st.integers(0, 100), m=st.integers(0, 1 << 17))
def test_pipelined_prediction_bounds_des_linear_scatter(n, seed, m):
    """predict_linear_pipelined is the exact DES makespan when the last
    message finishes last; in general it differs only through message
    orderings, never by more than the largest single receive cost."""
    cluster, model = quiet(n, seed)
    observed = run_collective(cluster, "scatter", "linear", nbytes=m).time
    pipelined = predict_linear_pipelined(model, m)
    slack = max(model.wire_and_remote_cost(0, i, m) for i in range(1, n))
    assert observed <= pipelined + 1e-12
    assert observed >= pipelined - slack


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 10), seed=st.integers(0, 100), m=st.integers(0, 1 << 17))
def test_formula4_upper_bounds_pipelined(n, seed, m):
    _cluster, model = quiet(n, seed)
    assert predict_linear_pipelined(model, m) <= predict_linear_scatter(model, m) + 1e-15


@settings(max_examples=10, deadline=None)
@given(n=st.sampled_from([4, 8, 16]), seed=st.integers(0, 100))
def test_binomial_prediction_reduces_to_eq3_when_homogeneous(n, seed):
    """With identical nodes, the recursion collapses to the homogeneous
    closed form log2(n) alpha + (n-1) beta M (paper eq. 3)."""
    rng = np.random.default_rng(seed)
    C = np.full(n, float(rng.uniform(20e-6, 80e-6)))
    t = np.full(n, float(rng.uniform(2e-9, 12e-9)))
    L = np.full((n, n), float(rng.uniform(20e-6, 80e-6)))
    np.fill_diagonal(L, 0.0)
    beta = np.full((n, n), float(rng.uniform(1e7, 2e8)))
    np.fill_diagonal(beta, np.inf)
    model = ExtendedLMOModel(C=C, t=t, L=L, beta=beta)
    hockney = model.to_heterogeneous_hockney().averaged()
    M = 8 * KB
    expected = np.log2(n) * hockney.alpha + (n - 1) * hockney.beta * M
    assert predict_binomial_scatter(hockney, M, n=n) == pytest.approx(expected, rel=1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 50))
def test_lmo_beats_hockney_when_processors_matter(seed):
    """Whenever processor costs are a real fraction of the transfer (the
    regime the paper studies — gigabit wire, t comparable to 1/beta), the
    exact-parameter LMO scatter prediction beats both Hockney readings.

    (On a wire-dominated cluster the parallel Hockney reading can win by
    luck: formula (4)'s full serial term plus the max over wires
    over-counts when orderings vary — a genuine limitation, not a bug.)
    """
    n = 8
    gt = GroundTruth.random(n, seed=seed, beta_range=(0.9e8, 1.2e8))
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    model = ExtendedLMOModel.from_ground_truth(gt)
    hockney = model.to_heterogeneous_hockney()
    M = 48 * KB
    observed = run_collective(cluster, "scatter", "linear", nbytes=M).time
    err = lambda p: abs(p - observed) / observed
    lmo_err = err(predict_linear_scatter(model, M))
    assert lmo_err <= err(predict_linear_scatter(hockney, M)) + 1e-12
    assert lmo_err <= err(predict_linear_scatter(hockney, M, assumption="parallel")) + 1e-12


def test_estimation_on_homogeneous_cluster_gives_uniform_parameters():
    """The LMO model 'is designed for homogeneous and heterogeneous
    clusters': on identical nodes all per-node estimates agree."""
    from repro.estimation import AnalyticEngine, estimate_extended_lmo

    n = 6
    C = np.full(n, 50e-6)
    t = np.full(n, 10e-9)
    L = np.full((n, n), 55e-6)
    np.fill_diagonal(L, 0.0)
    beta = np.full((n, n), 1e8)
    np.fill_diagonal(beta, np.inf)
    gt = GroundTruth(C=C, t=t, L=L, beta=beta)
    model = estimate_extended_lmo(AnalyticEngine(gt), reps=1).model
    assert np.ptp(model.C) < 1e-12
    assert np.ptp(model.t) < 1e-15


@settings(max_examples=8, deadline=None)
@given(n=st.integers(3, 8), seed=st.integers(0, 50), fault_seed=st.integers(0, 50),
       op=st.sampled_from(["scatter", "gather"]))
def test_faulted_runs_are_bit_identical_per_seed(n, seed, fault_seed, op):
    """Same cluster seed + same FaultPlan => bit-identical traces."""
    from repro.cluster import FaultInjector, FaultPlan, FlakyLink, NodeSlowdown

    plan = FaultPlan(faults=(
        NodeSlowdown(node=0, factor=3.0),
        FlakyLink(a=0, b=1, loss_prob=0.5),
    ), seed=fault_seed)
    times = []
    for _ in range(2):
        cluster, _model = quiet(n, seed)
        cluster.attach_injector(FaultInjector(plan))
        times.append([
            run_collective(cluster, op, "linear", nbytes=4 * KB).time
            for _ in range(3)
        ])
    assert times[0] == times[1]


@settings(max_examples=8, deadline=None)
@given(n=st.integers(3, 8), seed=st.integers(0, 50))
def test_empty_fault_plan_is_invisible(n, seed):
    """An injector with no faults must not perturb the simulation at all."""
    from repro.cluster import FaultInjector, FaultPlan

    cluster, _model = quiet(n, seed)
    baseline = run_collective(cluster, "scatter", "linear", nbytes=4 * KB).time
    cluster.attach_injector(FaultInjector(FaultPlan()))
    assert run_collective(cluster, "scatter", "linear", nbytes=4 * KB).time == baseline


@settings(max_examples=8, deadline=None)
@given(n=st.integers(3, 8), seed=st.integers(0, 50), fault_seed=st.integers(0, 50))
def test_robust_estimation_is_deterministic_under_faults(n, seed, fault_seed):
    """Same seeds + same plan => bit-identical robust estimates."""
    from repro.cluster import FaultInjector, FaultPlan, FlakyLink
    from repro.estimation import DESEngine, estimate_extended_lmo_robust

    plan = FaultPlan(faults=(FlakyLink(a=0, b=1, loss_prob=0.4),), seed=fault_seed)
    models = []
    for _ in range(2):
        cluster, _model = quiet(n, seed)
        cluster.attach_injector(FaultInjector(plan))
        models.append(estimate_extended_lmo_robust(DESEngine(cluster), reps=2).model)
    np.testing.assert_array_equal(models[0].C, models[1].C)
    np.testing.assert_array_equal(models[0].t, models[1].t)
    np.testing.assert_array_equal(models[0].L, models[1].L)
    np.testing.assert_array_equal(models[0].beta, models[1].beta)
