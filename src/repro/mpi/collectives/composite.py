"""Composite large-message algorithms: van de Geijn bcast, reduce-scatter,
Rabenseifner allreduce.

The bandwidth-optimal compositions MPI implementations switch to for
large vectors — more entries of the algorithm menu that model-driven
selection (paper Fig. 6) must rank:

* **van de Geijn broadcast** — binomial *scatter* of the message's
  segments, then ring *allgather*; every byte crosses each wire once,
  unlike tree broadcasts that resend whole messages;
* **reduce-scatter** — ring exchange of partial blocks with combining,
  leaving rank ``r`` with the fully reduced block ``r``;
* **Rabenseifner allreduce** — reduce-scatter followed by ring
  allgather: ~2 M bytes per node total, versus ``log2(n) * M`` for the
  recursive-doubling butterfly.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.collectives import binomial, ring
from repro.mpi.comm import COLL_TAG, RankComm

__all__ = ["van_de_geijn_bcast", "ring_reduce_scatter", "rabenseifner_allreduce"]


def _segment_sizes(nbytes: int, parts: int) -> list[int]:
    base = nbytes // parts
    sizes = [base] * parts
    for idx in range(nbytes - base * parts):
        sizes[idx] += 1
    return sizes


def van_de_geijn_bcast(
    comm: RankComm,
    root: int,
    nbytes: int,
    payload: Any = None,
) -> Generator:
    """Broadcast as binomial scatter of segments + ring allgather.

    The message is cut into ``size`` segments; the binomial scatter moves
    each segment once down the tree, the ring allgather circulates them.
    Per-node traffic ~ ``2 M`` instead of the tree bcast's ``M log2 n``
    on the critical path — the large-message winner.
    """
    size = comm.size
    seg_sizes = _segment_sizes(nbytes, size)
    segments = None
    if comm.rank == root and payload is not None:
        raw = bytes(payload)
        if len(raw) != nbytes:
            raise ValueError(f"payload has {len(raw)} bytes, nbytes says {nbytes}")
        segments, offset = [], 0
        for seg in seg_sizes:
            segments.append(raw[offset:offset + seg])
            offset += seg
    # Phase 1: binomial scatter of the segments (segment r to rank r).
    # binomial.scatter charges blocks * block_nbytes; segments differ by
    # at most one byte, so the average segment is the honest block size.
    block = max(1, nbytes // size)
    my_segment = yield from binomial.scatter(comm, root, block, data=segments)
    # Phase 2: ring allgather of the segments.
    gathered = yield from ring.allgather(comm, block, block=my_segment)
    if gathered is not None and all(isinstance(g, (bytes, bytearray)) for g in gathered):
        return b"".join(gathered)
    return gathered


def ring_reduce_scatter(
    comm: RankComm,
    block_nbytes: int,
    blocks: Any = None,
    combine=None,
) -> Generator:
    """Ring reduce-scatter: rank ``r`` ends with the reduced block ``r``.

    In step ``k`` each rank sends the partial it just finished combining
    to its right neighbour and receives the next one from the left; after
    ``n-1`` steps every block has visited every rank exactly once.
    ``blocks`` is this rank's list of ``n`` input blocks (one per target).
    """
    size, me = comm.size, comm.rank
    right = (me + 1) % size
    left = (me - 1) % size
    cluster = comm.layer.cluster
    # Block b starts at rank (b+1) % n carrying only that rank's own
    # contribution, moves right each step, and every host folds in its
    # contribution on arrival; after n-1 steps block b lands, fully
    # reduced, at rank b.  My first outgoing block is therefore (me-1).
    carried = None if blocks is None else blocks[(me - 1) % size]
    for step in range(size - 1):
        send_req = comm.isend(right, payload=carried, nbytes=block_nbytes,
                              tag=COLL_TAG + step)
        env = yield from comm.wait(comm.irecv(left, tag=COLL_TAG + step))
        yield send_req.sent
        incoming_idx = (me - 2 - step) % size
        mine = None if blocks is None else blocks[incoming_idx]
        cost = cluster.noisy(block_nbytes * cluster.ground_truth.t[me])
        yield from cluster.cpu[me].hold(cluster.sim, cost)
        carried = combine(env.payload, mine) if combine is not None else env.payload
    # The last fold was for block (me - 2 - (n-2)) % n == me: done.
    return carried


def rabenseifner_allreduce(
    comm: RankComm,
    nbytes: int,
    value: Any = None,
    combine=None,
) -> Generator:
    """Allreduce as ring reduce-scatter + ring allgather.

    ``value`` is this rank's full input vector, conceptually split into
    ``n`` equal blocks; ``combine`` reduces two block payloads.  For
    timing purposes blocks are ``nbytes / n`` each; the data path carries
    whatever ``value`` slices naturally (lists/arrays) or opaque values.
    """
    size = comm.size
    block = max(1, nbytes // size)

    def slice_block(vec: Any, idx: int) -> Any:
        if vec is None:
            return None
        try:
            per = len(vec) // size
            return vec[idx * per:(idx + 1) * per]
        except TypeError:
            return vec  # opaque scalar contribution

    blocks = [slice_block(value, idx) for idx in range(size)]
    reduced = yield from ring_reduce_scatter(comm, block, blocks=blocks,
                                             combine=combine)
    gathered = yield from ring.allgather(comm, block, block=reduced)
    return gathered
