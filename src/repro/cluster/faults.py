"""Seeded, deterministic fault injection for the simulated cluster.

The paper's central validation story is that real clusters misbehave:
linear gather shows non-deterministic RTO escalations "up to 0.25 sec",
and the M1/M2 threshold regimes exist precisely because hardware and
TCP stacks depart from the clean analytic model.  A model (and a model
*estimation pipeline*) is only useful if it survives that reality.

This module turns ad-hoc fault injection (:meth:`SimulatedCluster.degrade_node`)
into a schedulable subsystem:

* :class:`NodeSlowdown` — a node's processing delays (``C_i``, ``t_i``)
  multiplied by a factor, optionally time-windowed (a *brownout* that
  auto-reverts: thermal throttle, a daemon stealing a core for a while);
* :class:`LinkDegradation` — one link's fixed latency raised and/or its
  transmission rate lowered (``L_ij`` up, ``beta_ij`` down): duplex
  renegotiation, a flaky cable, switch-port buffering misconfiguration;
* :class:`FlakyLink` — probabilistic packet loss on a link; every lost
  head-of-line burst costs a TCP retransmission timeout, so escalations
  hit *arbitrary* transfers, not just gather incast;
* :class:`NodeHang` — a node freezes for a window; transfers touching it
  stall until the hang clears (kernel lockup, swap storm);
* :class:`NodeCrash` — a node dies outright at ``start`` and never comes
  back: every transfer touching it from then on stalls a dead-peer
  timeout (power supply failure, kernel panic) — the fault that forces
  the campaign layer's circuit breakers to reroute around the node;
* :class:`ProcessCrash` — not a hardware fault at all: the *measuring
  process* dies after ``after_experiments`` completed experiments
  (OOM-kill, wall-clock deadline, operator Ctrl-C), raising
  :class:`SimulatedCrash` so a durable campaign's write-ahead journal and
  crash-resume path can be exercised deterministically.

A :class:`FaultPlan` is a frozen, seeded collection of faults over
*cumulative* simulated time (the clock keeps advancing across the
back-to-back runs of an estimation schedule).  A :class:`FaultInjector`
binds a plan to one cluster; the transport consults it on every transfer,
so two clusters with the same seed and the same plan produce bit-identical
traces — the property tests rely on this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = [
    "DEAD_PEER_STALL",
    "FaultInjector",
    "FaultPlan",
    "FlakyLink",
    "LinkDegradation",
    "NodeCrash",
    "NodeHang",
    "NodeSlowdown",
    "ProcessCrash",
    "SimulatedCrash",
]

#: How long a transfer touching a crashed node stalls before the
#: initiator gives up (per attempt).  Far above any retry budget the
#: robust/campaign paths grant, so every attempt against a dead node is
#: rejected as a timeout — mirroring a TCP dead-peer detection interval.
DEAD_PEER_STALL = 60.0


class SimulatedCrash(RuntimeError):
    """The measuring process died mid-campaign (see :class:`ProcessCrash`)."""


def _check_window(start: float, end: float) -> None:
    if start < 0 or end <= start:
        raise ValueError(f"need 0 <= start < end, got [{start}, {end})")


@dataclass(frozen=True)
class NodeSlowdown:
    """Multiply one node's ``C_i``/``t_i`` by ``factor`` during a window.

    With the default infinite window this is exactly
    :meth:`SimulatedCluster.degrade_node`, but revocable; with a finite
    window it is a brownout that auto-reverts.
    """

    node: int
    factor: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class LinkDegradation:
    """Raise ``L_ab`` by ``latency_factor`` and scale ``beta_ab`` by
    ``rate_factor`` (<= 1 slows the link) during a window."""

    a: int
    b: int
    latency_factor: float = 1.0
    rate_factor: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a link needs two distinct endpoints")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor < 1 would *improve* the link")
        if not (0 < self.rate_factor <= 1.0):
            raise ValueError("rate_factor must be in (0, 1]")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class FlakyLink:
    """Packet loss on link ``a-b``: each transfer crossing the link during
    the window suffers a TCP RTO escalation with probability ``loss_prob``."""

    a: int
    b: int
    loss_prob: float
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a link needs two distinct endpoints")
        if not (0 < self.loss_prob <= 1):
            raise ValueError(f"loss_prob must be in (0, 1], got {self.loss_prob}")
        _check_window(self.start, self.end)


@dataclass(frozen=True)
class NodeHang:
    """Node ``node`` freezes during ``[start, start + duration)``.

    Transfers touching the node during the window stall until it clears
    (the duration must be finite — an unbounded hang would deadlock the
    simulation instead of exercising timeout/retry paths).
    """

    node: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if not (0 < self.duration < math.inf):
            raise ValueError(f"duration must be finite and positive, got {self.duration}")

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` dies at ``start`` and stays dead.

    Unlike :class:`NodeHang` the window never closes: every transfer
    touching the node from ``start`` on stalls :data:`DEAD_PEER_STALL`
    simulated seconds (per attempt) — long enough that any sane timeout
    policy rejects the sample, short enough that the simulation still
    terminates.  The campaign layer's circuit breakers exist to stop
    paying even that.
    """

    node: int
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")


@dataclass(frozen=True)
class ProcessCrash:
    """The measuring *process* dies after ``after_experiments`` experiments.

    The experiment counter is advanced by the campaign runner
    (:meth:`FaultInjector.note_experiment`); once it reaches the limit the
    next notification raises :class:`SimulatedCrash`.  Hardware state is
    untouched — this models an OOM-kill, a deadline, or an operator
    Ctrl-C, the failure mode the write-ahead journal exists to survive.
    """

    after_experiments: int

    def __post_init__(self) -> None:
        if self.after_experiments < 1:
            raise ValueError(
                f"after_experiments must be >= 1, got {self.after_experiments}"
            )


Fault = Union[NodeSlowdown, LinkDegradation, FlakyLink, NodeHang, NodeCrash, ProcessCrash]

_FAULT_TYPES = (NodeSlowdown, LinkDegradation, FlakyLink, NodeHang, NodeCrash, ProcessCrash)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults over cumulative sim time."""

    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, _FAULT_TYPES):
                raise TypeError(f"not a fault: {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def nodes_touched(self) -> set[int]:
        """Every node some fault involves."""
        touched: set[int] = set()
        for fault in self.faults:
            if isinstance(fault, (NodeSlowdown, NodeHang, NodeCrash)):
                touched.add(fault.node)
            elif isinstance(fault, ProcessCrash):
                continue  # kills the measuring process, not a node
            else:
                touched.update((fault.a, fault.b))
        return touched

    def validate(self, n: int) -> None:
        """Raise if any fault references a node outside ``0..n-1``."""
        bad = sorted(node for node in self.nodes_touched() if not (0 <= node < n))
        if bad:
            raise ValueError(f"fault plan references out-of-range nodes {bad}")

    def describe(self) -> str:
        """Human-readable one-line-per-fault summary."""
        if not self.faults:
            return "(no faults)"
        lines = []
        for fault in self.faults:
            if isinstance(fault, NodeSlowdown):
                window = "" if fault.end == math.inf else f" in [{fault.start:g}, {fault.end:g}) s"
                lines.append(f"slow node {fault.node} x{fault.factor:g}{window}")
            elif isinstance(fault, LinkDegradation):
                window = "" if fault.end == math.inf else f" in [{fault.start:g}, {fault.end:g}) s"
                lines.append(
                    f"degrade link {fault.a}-{fault.b} "
                    f"(latency x{fault.latency_factor:g}, rate x{fault.rate_factor:g}){window}"
                )
            elif isinstance(fault, FlakyLink):
                window = "" if fault.end == math.inf else f" in [{fault.start:g}, {fault.end:g}) s"
                lines.append(f"flaky link {fault.a}-{fault.b} (loss {fault.loss_prob:.0%}){window}")
            elif isinstance(fault, NodeCrash):
                lines.append(f"crash node {fault.node} at {fault.start:g} s (dead from then on)")
            elif isinstance(fault, ProcessCrash):
                lines.append(
                    f"kill measuring process after {fault.after_experiments} experiments"
                )
            else:
                lines.append(
                    f"hang node {fault.node} in [{fault.start:g}, {fault.end:g}) s"
                )
        return "\n".join(lines)


@dataclass
class InjectorStats:
    """Counters of what the injector actually did (tests, chaos reports)."""

    loss_escalations: int = 0
    loss_escalation_time: float = 0.0
    hang_stalls: int = 0
    hang_stall_time: float = 0.0
    slowed_activities: int = 0
    degraded_link_crossings: int = 0

    def summary(self) -> str:
        return (
            f"loss escalations: {self.loss_escalations} "
            f"({self.loss_escalation_time:.3f} s), "
            f"hang stalls: {self.hang_stalls} ({self.hang_stall_time:.3f} s), "
            f"slowed activities: {self.slowed_activities}, "
            f"degraded link crossings: {self.degraded_link_crossings}"
        )


class FaultInjector:
    """Binds a :class:`FaultPlan` to one cluster and answers, per activity,
    *what the hardware looks like right now*.

    The injector owns its own random generator (seeded from the plan) so
    that fault sampling never perturbs the cluster's noise stream: the
    same plan on the same cluster seed reproduces the same trace, and
    removing the plan restores the fault-free trace bit-for-bit.

    Time is *cumulative*: the cluster's simulator restarts at zero for
    every run, so the injector accumulates completed-run durations into an
    epoch offset (see :meth:`SimulatedCluster.reset`).  Fault windows are
    expressed on this cumulative clock.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.cluster = None
        self.epoch = 0.0
        self.stats = InjectorStats()
        self._slowdowns = [f for f in plan.faults if isinstance(f, NodeSlowdown)]
        self._link_degradations = [f for f in plan.faults if isinstance(f, LinkDegradation)]
        self._flaky = [f for f in plan.faults if isinstance(f, FlakyLink)]
        self._hangs = [f for f in plan.faults if isinstance(f, NodeHang)]
        self._crashes = [f for f in plan.faults if isinstance(f, NodeCrash)]
        self._process_crashes = [f for f in plan.faults if isinstance(f, ProcessCrash)]
        self.experiments_completed = 0

    # -- lifecycle ----------------------------------------------------------
    def bind(self, cluster) -> None:
        """Attach to ``cluster`` (called by ``attach_injector``)."""
        self.plan.validate(cluster.n)
        self.cluster = cluster

    def advance_epoch(self, elapsed: float) -> None:
        """Account a completed run's duration into the cumulative clock."""
        if elapsed > 0:
            self.epoch += elapsed

    @property
    def now(self) -> float:
        """Cumulative simulated time (epoch + current run's clock)."""
        sim_now = self.cluster.sim.now if self.cluster is not None else 0.0
        return self.epoch + sim_now

    # -- per-activity queries ------------------------------------------------
    def cpu_factor(self, node: int) -> float:
        """Combined slowdown factor on ``node``'s processing right now."""
        now = self.now
        factor = 1.0
        for fault in self._slowdowns:
            if fault.node == node and fault.start <= now < fault.end:
                factor *= fault.factor
        if factor != 1.0:
            self.stats.slowed_activities += 1
        return factor

    def link_factors(self, a: int, b: int) -> tuple[float, float]:
        """(latency_factor, rate_factor) on link ``a-b`` right now."""
        now = self.now
        latency, rate = 1.0, 1.0
        for fault in self._link_degradations:
            if {fault.a, fault.b} == {a, b} and fault.start <= now < fault.end:
                latency *= fault.latency_factor
                rate *= fault.rate_factor
        if latency != 1.0 or rate != 1.0:
            self.stats.degraded_link_crossings += 1
        return latency, rate

    def hang_stall(self, *nodes: int) -> float:
        """Seconds until every hang involving ``nodes`` clears (0 = none).

        A crashed node never clears: each touch costs one full
        :data:`DEAD_PEER_STALL` on top of any window hangs, so repeated
        attempts keep timing out instead of deadlocking the simulation.
        """
        now = self.now
        release = now
        for fault in self._hangs:
            if fault.node in nodes and fault.start <= now < fault.end:
                release = max(release, fault.end)
        for crash in self._crashes:
            if crash.node in nodes and now >= crash.start:
                release = max(release, now + DEAD_PEER_STALL)
        stall = release - now
        if stall > 0:
            self.stats.hang_stalls += 1
            self.stats.hang_stall_time += stall
        return stall

    # -- process-level faults -----------------------------------------------
    def note_experiment(self) -> None:
        """Account one completed experiment; dies on a due :class:`ProcessCrash`.

        Called by the campaign runner after journaling each experiment.
        The raise happens *after* the completed experiment is safely on
        disk — the crash model is "the process died between units", the
        mid-record case being covered by the journal's torn-write
        tolerance.
        """
        self.experiments_completed += 1
        for crash in self._process_crashes:
            if self.experiments_completed >= crash.after_experiments:
                raise SimulatedCrash(
                    f"measuring process died after {self.experiments_completed} "
                    f"experiments (ProcessCrash at {crash.after_experiments})"
                )

    def loss_delay(self, src: int, dst: int) -> float:
        """RTO escalation delay for a transfer crossing ``src-dst`` (0 = none).

        Each active flaky link on the pair is an independent loss source;
        a loss costs one full retransmission timeout drawn from the
        cluster profile's ``rto_base + U(0, rto_jitter)`` — the same
        magnitude as the paper's incast escalations, which is the point:
        the robust estimation path cannot tell them apart and must survive
        both.
        """
        now = self.now
        delay = 0.0
        for fault in self._flaky:
            if {fault.a, fault.b} == {src, dst} and fault.start <= now < fault.end:
                if self.rng.random() < fault.loss_prob:
                    profile = self.cluster.profile
                    delay += profile.rto_base + float(
                        self.rng.uniform(0.0, profile.rto_jitter)
                    )
        if delay > 0:
            self.stats.loss_escalations += 1
            self.stats.loss_escalation_time += delay
        return delay
