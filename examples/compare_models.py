"""Model shoot-out: estimate all five communication performance models on
the same simulated cluster and rank their linear scatter/gather accuracy.

This is the workload of the paper's Section V in miniature: Hockney
(homogeneous + heterogeneous), LogGP, PLogP and the extended LMO model,
each estimated by its own published procedure, each predicting the same
collectives through one batched :func:`repro.api.predict_many` call per
model, judged against the same observations.

Run with::

    python examples/compare_models.py
"""

from repro import api
from repro.experiments.common import ModelSuite

KB = 1024
#: Sweep spans the eager/rendezvous leap at 64 KB: PLogP is competitive
#: below it (as the paper notes) but diverges beyond, where LMO holds.
SIZES = tuple(int(m * KB) for m in (2, 8, 16, 32, 48, 96, 128))


def main() -> None:
    estimation_cluster = api.load_cluster(profile="lam", seed=1)
    suite = ModelSuite.estimate(estimation_cluster)
    print("estimation cost per model (simulated cluster seconds):")
    for name, cost in suite.estimation_times.items():
        print(f"  {name:<14} {cost:8.2f} s")
    print()

    observation_cluster = api.load_cluster(profile="lam", seed=2)
    models = {
        "hom-Hockney": suite.hockney_hom,
        "het-Hockney": suite.hockney_het,
        "LogGP": suite.loggp,
        "PLogP": suite.plogp,
        "LMO": suite.lmo,
    }

    for operation in ("scatter", "gather"):
        print(f"linear {operation}: mean relative prediction error")
        observed = {
            m: api.measure(observation_cluster, operation, "linear", m,
                           max_reps=15).mean
            for m in SIZES
        }
        requests = [
            api.PredictRequest(operation, "linear", float(m)) for m in SIZES
        ]
        scores = {}
        for name, model in models.items():
            predictions = api.predict_many(model, requests)
            errors = [
                abs(predicted - observed[m]) / observed[m]
                for m, predicted in zip(SIZES, predictions)
            ]
            scores[name] = sum(errors) / len(errors)
        for rank, (name, err) in enumerate(
            sorted(scores.items(), key=lambda kv: kv[1]), start=1
        ):
            print(f"  {rank}. {name:<12} {err:7.1%}")
        print()

    print("(the paper's conclusion: the LMO model, which fully separates")
    print(" constant/variable processor/network contributions, predicts")
    print(" collectives far more accurately than the traditional models)")


if __name__ == "__main__":
    main()
