"""Common protocol of communication performance models.

Two families exist, mirroring Section II of the paper:

* **homogeneous** models — one set of scalar parameters for the whole
  cluster; ``p2p_time`` ignores which processors communicate;
* **heterogeneous** models — per-processor and/or per-link parameters.

Every model exposes ``p2p_time(i, j, nbytes)`` so collective-prediction
code can treat them uniformly; homogeneous models simply ignore ``i``/``j``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["CommunicationModel", "validate_rank", "validate_nbytes"]


@runtime_checkable
class CommunicationModel(Protocol):
    """Anything that predicts point-to-point communication time."""

    #: Number of processors the model describes.
    n: int

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """Predicted time to send ``nbytes`` from processor i to j (seconds)."""
        ...


def validate_rank(n: int, *ranks: int) -> None:
    """Raise if any rank is outside ``0..n-1``."""
    for rank in ranks:
        if not (0 <= rank < n):
            raise ValueError(f"rank {rank} out of range for {n} processors")


def validate_nbytes(nbytes: float) -> None:
    """Raise on negative message sizes."""
    if nbytes < 0:
        raise ValueError(f"negative message size {nbytes!r}")
