"""Telemetry is a process-global switch; never let it leak across tests."""

import pytest

from repro.obs import runtime as _obs


@pytest.fixture(autouse=True)
def _telemetry_off():
    _obs.disable()
    yield
    _obs.disable()
