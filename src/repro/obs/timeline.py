"""Bounded ring-buffer time series over :class:`MetricsRegistry`.

The registry (:mod:`repro.obs.metrics`) is instantaneous: one number per
counter child, no history.  Every alert rule therefore judges a single
snapshot, which cannot express "the error *rate* over the last five
minutes" — the quantity SLO burn-rate alerting is defined on.  The
timeline store adds the missing axis:

* :meth:`TimelineStore.tick` snapshots the registry and folds the
  *delta* since the previous tick into fixed-width windows — counter
  increments and histogram bucket increments add up; gauges keep their
  most recent ``(timestamp, value)`` observation per child.
* Windows live in tiered rings (:data:`DEFAULT_TIERS`: 1 s x 120,
  10 s x 120, 60 s x 180 — two minutes at 1 s resolution, three hours at
  one minute), each a bounded deque so memory is fixed no matter how
  long the process runs.
* Queries — :meth:`rate`, :meth:`sum_over_window`,
  :meth:`quantile_over_window`, :meth:`gauge` — merge the windows of the
  finest tier that still covers the requested horizon.

Ticks are driven by :func:`repro.obs.runtime.pulse` from naturally
periodic call sites (service dispatch, campaign units, supervisor
probes), so there is no background thread; tests call
``store.tick(now=...)`` directly and get fully deterministic windows.

Window merging is associative (property-tested): counters and histogram
deltas are sums, and gauges resolve per-key by *latest timestamp* (a
semilattice join), not by which window happened to be merged last.

Persistence is compact JSONL — a header line then one line per window —
plus ``to_dict``/``from_dict`` for embedding in the telemetry snapshot
document under its optional ``"timeline"`` key.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, bucket_quantile

__all__ = [
    "DEFAULT_TIERS",
    "TIMELINE_FORMAT",
    "TimelineStore",
    "Window",
    "WindowTier",
    "enable_timeline",
    "merge_windows",
]

TIMELINE_FORMAT = "repro-timeline"
TIMELINE_VERSION = 1

#: A child key: (family name, sorted ``(label, value)`` pairs).
Key = tuple[str, tuple[tuple[str, str], ...]]


@dataclass(frozen=True)
class WindowTier:
    """One resolution tier: windows of ``width`` seconds, ``capacity`` deep."""

    width: float
    capacity: int

    def __post_init__(self) -> None:
        if not (self.width > 0.0 and math.isfinite(self.width)):
            raise ValueError(f"tier width must be positive, got {self.width!r}")
        if self.capacity < 1:
            raise ValueError(f"tier capacity must be >= 1, got {self.capacity!r}")

    @property
    def horizon(self) -> float:
        """Seconds of history this tier can hold when full."""
        return self.width * self.capacity


#: 2 min at 1 s resolution, 20 min at 10 s, 3 h at 1 min.
DEFAULT_TIERS: tuple[WindowTier, ...] = (
    WindowTier(width=1.0, capacity=120),
    WindowTier(width=10.0, capacity=120),
    WindowTier(width=60.0, capacity=180),
)


def _key_of(name: str, labels: Mapping[str, Any]) -> Key:
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _key_matches(key: Key, name: str,
                 wanted: Optional[Mapping[str, Any]]) -> bool:
    if key[0] != name:
        return False
    if not wanted:
        return True
    have = dict(key[1])
    return all(have.get(str(k)) == str(v) for k, v in wanted.items())


@dataclass
class Window:
    """One fixed-width window of metric deltas.

    ``counters`` maps child key -> summed delta; ``histograms`` maps
    child key -> ``{"buckets": [[bound, dn], ...], "sum": ds, "count": dc}``
    (snapshot bucket form, per-bucket deltas); ``gauges`` maps child key
    -> ``(timestamp, value)`` of the latest observation.
    """

    width: float
    index: int
    ticks: int = 0
    counters: dict[Key, float] = field(default_factory=dict)
    gauges: dict[Key, tuple[float, float]] = field(default_factory=dict)
    histograms: dict[Key, dict[str, Any]] = field(default_factory=dict)

    @property
    def start(self) -> float:
        return self.index * self.width

    @property
    def end(self) -> float:
        return (self.index + 1) * self.width

    def add_counter(self, key: Key, delta: float) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + delta

    def add_gauge(self, key: Key, ts: float, value: float) -> None:
        got = self.gauges.get(key)
        if got is None or ts >= got[0]:
            self.gauges[key] = (ts, value)

    def add_histogram(self, key: Key, buckets: Sequence[Sequence[Any]],
                      dsum: float, dcount: float) -> None:
        got = self.histograms.get(key)
        if got is None:
            self.histograms[key] = {
                "buckets": [[bound, float(n)] for bound, n in buckets],
                "sum": float(dsum),
                "count": float(dcount),
            }
            return
        for slot, (_, n) in zip(got["buckets"], buckets):
            slot[1] += float(n)
        got["sum"] += float(dsum)
        got["count"] += float(dcount)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (entries sorted, stable across merges)."""
        out: dict[str, Any] = {
            "width": self.width, "index": self.index, "ticks": self.ticks,
        }
        if self.counters:
            out["counters"] = [
                {"name": k[0], "labels": dict(k[1]), "value": v}
                for k, v in sorted(self.counters.items())
            ]
        if self.gauges:
            out["gauges"] = [
                {"name": k[0], "labels": dict(k[1]), "ts": tv[0], "value": tv[1]}
                for k, tv in sorted(self.gauges.items())
            ]
        if self.histograms:
            out["histograms"] = [
                {"name": k[0], "labels": dict(k[1]), "buckets": h["buckets"],
                 "sum": h["sum"], "count": h["count"]}
                for k, h in sorted(self.histograms.items())
            ]
        return out

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Window":
        win = cls(width=float(doc["width"]), index=int(doc["index"]),
                  ticks=int(doc.get("ticks", 0)))
        for entry in doc.get("counters", ()):
            win.counters[_key_of(entry["name"], entry["labels"])] = float(entry["value"])
        for entry in doc.get("gauges", ()):
            win.gauges[_key_of(entry["name"], entry["labels"])] = (
                float(entry["ts"]), float(entry["value"]))
        for entry in doc.get("histograms", ()):
            win.histograms[_key_of(entry["name"], entry["labels"])] = {
                "buckets": [[b, float(n)] for b, n in entry["buckets"]],
                "sum": float(entry["sum"]), "count": float(entry["count"]),
            }
        return win


def merge_windows(a: Window, b: Window) -> Window:
    """Merge two windows (associative; commutative up to gauge ties).

    Counters and histogram deltas add.  Gauges resolve per key by latest
    observation timestamp — *not* by window recency — so a key missing
    from the newest window cannot resurrect a stale value ahead of a
    fresher one, and any merge order yields the same result.
    """
    if a.width != b.width:
        raise ValueError(
            f"cannot merge windows of different widths {a.width} and {b.width}")
    out = Window(width=a.width, index=min(a.index, b.index),
                 ticks=a.ticks + b.ticks)
    for src in (a, b):
        for key, delta in src.counters.items():
            out.add_counter(key, delta)
        for key, (ts, value) in src.gauges.items():
            out.add_gauge(key, ts, value)
        for key, hist in src.histograms.items():
            out.add_histogram(key, hist["buckets"], hist["sum"], hist["count"])
    return out


class TimelineStore:
    """Tiered ring-buffer history of one registry's metrics.

    ``clock`` defaults to ``time.monotonic``; tests pass explicit
    ``now=`` values to :meth:`tick` and the query methods instead.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tiers: Sequence[WindowTier] = DEFAULT_TIERS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not tiers:
            raise ValueError("need at least one tier")
        self.registry = registry
        self.tiers = tuple(sorted(tiers, key=lambda t: t.width))
        if len({t.width for t in self.tiers}) != len(self.tiers):
            raise ValueError("tier widths must be distinct")
        self._clock = clock
        self._rings: tuple[deque[Window], ...] = tuple(deque() for _ in self.tiers)
        self._last_snapshot: Optional[dict[str, Any]] = None
        self._last_tick: Optional[float] = None
        self.ticks = 0
        self.dropped = 0  # windows evicted from full rings

    # -- ingestion -----------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> None:
        """Snapshot the registry and fold the delta into every tier.

        The first tick establishes the baseline (deltas start at zero so
        pre-attach totals are not misread as a burst).  A ``now`` that
        runs backwards is clamped to the previous tick — rates never go
        negative because of clock weirdness.
        """
        if self.registry is None:
            raise ValueError("this store has no registry (query-only)")
        if now is None:
            now = self._clock()
        if self._last_tick is not None and now < self._last_tick:
            now = self._last_tick
        snapshot = self.registry.snapshot()
        previous, self._last_snapshot = self._last_snapshot, snapshot
        self._last_tick = now
        self.ticks += 1
        windows = [self._window_at(tier_idx, now)
                   for tier_idx in range(len(self.tiers))]
        for win in windows:
            win.ticks += 1
        for name, family in snapshot.items():
            kind = family.get("type")
            prev_samples = _samples_by_labels(previous, name)
            for sample in family.get("samples", ()):
                key = _key_of(name, sample.get("labels", {}))
                before = prev_samples.get(key[1])
                if kind == "counter":
                    value = float(sample["value"])
                    base = float(before["value"]) if before else 0.0
                    # A registry reset between ticks shows as a shrinking
                    # counter: restart the delta from the new value.
                    delta = value - base if value >= base else value
                    if delta > 0.0:
                        for win in windows:
                            win.add_counter(key, delta)
                elif kind == "gauge":
                    value = float(sample["value"])
                    for win in windows:
                        win.add_gauge(key, now, value)
                elif kind == "histogram":
                    deltas, dsum, dcount = _histogram_delta(sample, before)
                    if dcount > 0.0:
                        for win in windows:
                            win.add_histogram(key, deltas, dsum, dcount)

    def maybe_tick(self, now: Optional[float] = None) -> bool:
        """Tick if the finest window width has elapsed since the last one."""
        if self.registry is None:
            return False
        if now is None:
            now = self._clock()
        if self._last_tick is not None and now - self._last_tick < self.tiers[0].width:
            return False
        self.tick(now=now)
        return True

    def _window_at(self, tier_idx: int, now: float) -> Window:
        tier = self.tiers[tier_idx]
        ring = self._rings[tier_idx]
        index = math.floor(now / tier.width)
        for win in reversed(ring):
            if win.index == index:
                return win
            if win.index < index:
                break
        win = Window(width=tier.width, index=index)
        ring.append(win)
        while len(ring) > tier.capacity:
            ring.popleft()
            self.dropped += 1
        return win

    # -- queries -------------------------------------------------------------
    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self._last_tick is not None:
            return self._last_tick
        return self._clock()

    def _tier_for(self, window_seconds: float) -> int:
        """Finest tier whose full ring still covers the horizon."""
        for idx, tier in enumerate(self.tiers):
            if tier.horizon >= window_seconds:
                return idx
        return len(self.tiers) - 1

    def windows_in(self, window_seconds: float,
                   now: Optional[float] = None) -> list[Window]:
        """The windows overlapping ``[now - window_seconds, now]``."""
        if window_seconds <= 0.0:
            raise ValueError(f"window must be positive, got {window_seconds!r}")
        now = self._now(now)
        ring = self._rings[self._tier_for(window_seconds)]
        cutoff = now - window_seconds
        return [win for win in ring if win.end > cutoff and win.start <= now]

    def merged(self, window_seconds: float,
               now: Optional[float] = None) -> Optional[Window]:
        """All windows in the horizon merged into one (None when empty)."""
        selected = self.windows_in(window_seconds, now=now)
        if not selected:
            return None
        merged = selected[0]
        for win in selected[1:]:
            merged = merge_windows(merged, win)
        return merged

    def sum_over_window(self, name: str, window_seconds: float,
                        labels: Optional[Mapping[str, Any]] = None,
                        now: Optional[float] = None) -> float:
        """Summed counter delta (or histogram observation count) over the
        horizon, filtered to children whose labels include ``labels``."""
        total = 0.0
        for win in self.windows_in(window_seconds, now=now):
            for key, delta in win.counters.items():
                if _key_matches(key, name, labels):
                    total += delta
            for key, hist in win.histograms.items():
                if _key_matches(key, name, labels):
                    total += hist["count"]
        return total

    def rate(self, name: str, window_seconds: float,
             labels: Optional[Mapping[str, Any]] = None,
             now: Optional[float] = None) -> float:
        """Per-second increase of a counter family over the horizon."""
        return self.sum_over_window(name, window_seconds, labels=labels,
                                    now=now) / window_seconds

    def gauge(self, name: str, labels: Optional[Mapping[str, Any]] = None,
              window_seconds: Optional[float] = None,
              now: Optional[float] = None) -> float:
        """Latest gauge observation within the horizon (NaN when absent)."""
        horizon = window_seconds if window_seconds is not None \
            else self.tiers[-1].horizon
        best: Optional[tuple[float, float]] = None
        for win in self.windows_in(horizon, now=now):
            for key, tv in win.gauges.items():
                if _key_matches(key, name, labels):
                    if best is None or tv[0] >= best[0]:
                        best = tv
        return best[1] if best is not None else float("nan")

    def histogram_over_window(
        self, name: str, window_seconds: float,
        labels: Optional[Mapping[str, Any]] = None,
        now: Optional[float] = None,
    ) -> tuple[list[list[Any]], float, float]:
        """Merged histogram deltas over the horizon: (buckets, sum, count)."""
        merged: list[list[Any]] = []
        total_sum = 0.0
        total_count = 0.0
        for win in self.windows_in(window_seconds, now=now):
            for key, hist in win.histograms.items():
                if not _key_matches(key, name, labels):
                    continue
                total_sum += hist["sum"]
                total_count += hist["count"]
                if not merged:
                    merged = [[bound, float(n)] for bound, n in hist["buckets"]]
                else:
                    for slot, (_, n) in zip(merged, hist["buckets"]):
                        slot[1] += float(n)
        return merged, total_sum, total_count

    def quantile_over_window(self, name: str, q: float, window_seconds: float,
                             labels: Optional[Mapping[str, Any]] = None,
                             now: Optional[float] = None) -> float:
        """Interpolated quantile of a histogram family's observations that
        landed inside the horizon (NaN when none did)."""
        buckets, _sum, count = self.histogram_over_window(
            name, window_seconds, labels=labels, now=now)
        if count <= 0.0:
            return float("nan")
        return bucket_quantile(buckets, int(count), q)

    def series(self, name: str, window_seconds: float,
               labels: Optional[Mapping[str, Any]] = None,
               now: Optional[float] = None) -> list[tuple[float, float]]:
        """Per-window ``(window_end, per-second rate)`` points for sparklines."""
        points: list[tuple[float, float]] = []
        for win in self.windows_in(window_seconds, now=now):
            total = 0.0
            for key, delta in win.counters.items():
                if _key_matches(key, name, labels):
                    total += delta
            for key, hist in win.histograms.items():
                if _key_matches(key, name, labels):
                    total += hist["count"]
            points.append((win.end, total / win.width))
        return points

    def counter_names(self) -> list[str]:
        """Counter/histogram family names with any activity on record."""
        names: set[str] = set()
        for ring in self._rings:
            for win in ring:
                names.update(key[0] for key in win.counters)
                names.update(key[0] for key in win.histograms)
        return sorted(names)

    @property
    def last_tick(self) -> Optional[float]:
        return self._last_tick

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": TIMELINE_FORMAT,
            "version": TIMELINE_VERSION,
            "tiers": [{"width": t.width, "capacity": t.capacity}
                      for t in self.tiers],
            "ticks": self.ticks,
            "dropped": self.dropped,
            "last_tick": self._last_tick,
            "windows": [win.to_dict() for ring in self._rings for win in ring],
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TimelineStore":
        """Rebuild a query-only store (no registry) from :meth:`to_dict`."""
        if doc.get("format") != TIMELINE_FORMAT:
            raise ValueError(f"not a timeline document: format={doc.get('format')!r}")
        if int(doc.get("version", 0)) > TIMELINE_VERSION:
            raise ValueError(f"timeline version {doc.get('version')} is newer "
                             f"than supported ({TIMELINE_VERSION})")
        tiers = tuple(WindowTier(width=float(t["width"]), capacity=int(t["capacity"]))
                      for t in doc["tiers"])
        store = cls(registry=None, tiers=tiers)
        store.ticks = int(doc.get("ticks", 0))
        store.dropped = int(doc.get("dropped", 0))
        last_tick = doc.get("last_tick")
        store._last_tick = float(last_tick) if last_tick is not None else None
        widths = {t.width: i for i, t in enumerate(store.tiers)}
        for entry in doc.get("windows", ()):
            win = Window.from_dict(entry)
            tier_idx = widths.get(win.width)
            if tier_idx is None:
                continue
            store._rings[tier_idx].append(win)
        for ring in store._rings:
            ring_sorted = sorted(ring, key=lambda w: w.index)
            ring.clear()
            ring.extend(ring_sorted)
        return store

    def write_jsonl(self, path: str) -> None:
        """Compact JSONL: a header line, then one line per window."""
        doc = self.to_dict()
        windows = doc.pop("windows")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
            for win in windows:
                fh.write(json.dumps(win, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def read_jsonl(cls, path: str) -> "TimelineStore":
        with open(path, "r", encoding="utf-8") as fh:
            header_line = fh.readline()
            if not header_line.strip():
                raise ValueError(f"{path}: empty timeline file")
            doc = json.loads(header_line)
            windows = []
            for line in fh:
                if line.strip():
                    windows.append(json.loads(line))
        doc["windows"] = windows
        return cls.from_dict(doc)


def _samples_by_labels(snapshot: Optional[Mapping[str, Any]],
                       name: str) -> dict[tuple[tuple[str, str], ...], Any]:
    if not snapshot:
        return {}
    family = snapshot.get(name)
    if not family:
        return {}
    return {
        _key_of(name, sample.get("labels", {}))[1]: sample
        for sample in family.get("samples", ())
    }


def _histogram_delta(
    sample: Mapping[str, Any], before: Optional[Mapping[str, Any]],
) -> tuple[list[list[Any]], float, float]:
    """Per-bucket increments since ``before`` (reset-aware, clamped >= 0)."""
    buckets = sample["buckets"]
    if before is None or float(sample["count"]) < float(before["count"]):
        deltas = [[bound, float(n)] for bound, n in buckets]
        return deltas, float(sample["sum"]), float(sample["count"])
    prev = {idx: float(n) for idx, (_, n) in enumerate(before["buckets"])}
    deltas = []
    for idx, (bound, n) in enumerate(buckets):
        deltas.append([bound, max(0.0, float(n) - prev.get(idx, 0.0))])
    dsum = float(sample["sum"]) - float(before["sum"])
    dcount = max(0.0, float(sample["count"]) - float(before["count"]))
    return deltas, dsum, dcount


def enable_timeline(
    tiers: Optional[Iterable[WindowTier]] = None,
    clock: Callable[[], float] = time.monotonic,
) -> "TimelineStore":
    """Attach a timeline store to the active telemetry session.

    Enables telemetry if it is off; idempotent while a store is already
    attached (the existing store is returned so layered callers share
    windows, mirroring :func:`repro.obs.runtime.enable`).
    """
    from repro.obs import runtime as _runtime

    tel = _runtime.enable()
    if tel.timeline is None:
        tel.timeline = TimelineStore(
            tel.registry,
            tiers=tuple(tiers) if tiers is not None else DEFAULT_TIERS,
            clock=clock,
        )
    return tel.timeline
