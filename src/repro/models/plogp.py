"""The parameterized LogP model, PLogP [Kielmann et al., IPDPS 2000].

In PLogP every parameter except the latency is a *piecewise-linear
function of the message size*: send overhead ``o_s(M)`` and receive
overhead ``o_r(M)`` (variable processor contributions) and the gap
``g(M)`` (reciprocal end-to-end bandwidth at size M, a mixed
processor+network contribution, with ``g(M) >= o_s(M), o_r(M)``).
A point-to-point transfer costs ``L + g(M)``.

:class:`PiecewiseLinear` is the function representation used both here and
by the adaptive estimation procedure (:mod:`repro.estimation.plogp_est`),
which inserts breakpoints wherever linear extrapolation fails — the
paper's description of how PLogP measurement selects message sizes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.models.base import (
    ArrayLike,
    broadcast_result,
    validate_nbytes_batch,
    validate_rank_batch,
)

__all__ = ["PiecewiseLinear", "PLogPModel"]


@dataclass(frozen=True)
class PiecewiseLinear:
    """A piecewise-linear function given by sorted ``(x, y)`` breakpoints.

    Evaluation interpolates between breakpoints and extrapolates the last
    segment beyond either end (a one-point function is constant).
    """

    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys) or not self.xs:
            raise ValueError("need equally many xs and ys, at least one point")
        if any(b <= a for a, b in zip(self.xs, self.xs[1:])):
            raise ValueError("xs must be strictly increasing")

    @staticmethod
    def from_samples(points: Sequence[tuple[float, float]]) -> "PiecewiseLinear":
        """Build from unsorted samples (duplicate x keeps the last y)."""
        dedup: dict[float, float] = {}
        for x, y in points:
            dedup[float(x)] = float(y)
        xs = tuple(sorted(dedup))
        return PiecewiseLinear(xs, tuple(dedup[x] for x in xs))

    def __call__(self, x: float) -> float:
        xs, ys = self.xs, self.ys
        if len(xs) == 1:
            return ys[0]
        if x <= xs[0]:
            k = 0
        elif x >= xs[-1]:
            k = len(xs) - 2
        else:
            k = bisect.bisect_right(xs, x) - 1
        x0, x1 = xs[k], xs[k + 1]
        y0, y1 = ys[k], ys[k + 1]
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0)

    def batch(self, x: ArrayLike) -> np.ndarray:
        """Vectorized ``__call__``: same interpolation/extrapolation rules."""
        arr = np.asarray(x, dtype=float)
        xs = np.asarray(self.xs)
        ys = np.asarray(self.ys)
        if len(xs) == 1:
            return np.full(arr.shape, ys[0])
        k = np.clip(np.searchsorted(xs, arr, side="right") - 1, 0, len(xs) - 2)
        x0, x1 = xs[k], xs[k + 1]
        y0, y1 = ys[k], ys[k + 1]
        return y0 + (y1 - y0) * (arr - x0) / (x1 - x0)

    def breakpoints(self) -> list[tuple[float, float]]:
        """The ``(x, y)`` breakpoint list."""
        return list(zip(self.xs, self.ys))

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"xs": list(self.xs), "ys": list(self.ys)}

    @classmethod
    def from_dict(cls, params: dict) -> "PiecewiseLinear":
        """Inverse of :meth:`to_dict`."""
        return cls(xs=tuple(params["xs"]), ys=tuple(params["ys"]))


@dataclass(frozen=True)
class PLogPModel:
    """Homogeneous PLogP parameters.

    Attributes
    ----------
    L:
        Latency, seconds — "a constant that combines all fixed
        contribution factors" (explicitly non-intuitive, per the paper).
    o_s, o_r:
        Send/receive overheads as functions of message size, seconds.
    g:
        Gap as a function of message size, seconds; ``1/g(M)`` is the
        end-to-end bandwidth at size ``M``.
    P:
        Number of processors.
    """

    L: float
    o_s: PiecewiseLinear
    o_r: PiecewiseLinear
    g: PiecewiseLinear
    P: int

    def __post_init__(self) -> None:
        if self.L < 0:
            raise ValueError("negative PLogP latency")
        if self.P < 2:
            raise ValueError("a communication model needs P >= 2")

    @property
    def n(self) -> int:
        """Processor count (protocol-compatible alias of ``P``)."""
        return self.P

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``L + g(M)``."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized ``L + g(M)`` over broadcastable arrays."""
        validate_rank_batch(self.P, i, j)
        nb = validate_nbytes_batch(nbytes)
        return broadcast_result(self.L + self.g.batch(nb), i, j, nb)

    def gap_covers_overheads(self, nbytes: float) -> bool:
        """PLogP's structural assumption ``g(M) >= o_s(M), o_r(M)``."""
        gm = self.g(nbytes)
        return gm >= self.o_s(nbytes) and gm >= self.o_r(nbytes)

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"L": self.L, "P": self.P, "o_s": self.o_s.to_dict(),
                "o_r": self.o_r.to_dict(), "g": self.g.to_dict()}

    @classmethod
    def from_dict(cls, params: dict) -> "PLogPModel":
        """Inverse of :meth:`to_dict`."""
        return cls(L=params["L"], P=params["P"],
                   o_s=PiecewiseLinear.from_dict(params["o_s"]),
                   o_r=PiecewiseLinear.from_dict(params["o_r"]),
                   g=PiecewiseLinear.from_dict(params["g"]))
