"""Simulated single-switch heterogeneous cluster substrate.

This package stands in for the paper's physical testbed (the 16-node
heterogeneous Ethernet cluster of Table I): hardware specs, ground-truth
LMO parameters, MPI/TCP irregularity profiles, measurement noise, and the
discrete-event transport tying them together.
"""

from repro.cluster.faults import (
    FaultInjector,
    FaultPlan,
    FlakyLink,
    LinkDegradation,
    NodeCrash,
    NodeHang,
    NodeSlowdown,
    ProcessCrash,
    SimulatedCrash,
)
from repro.cluster.machine import SimulatedCluster, TransportStats
from repro.cluster.noise import NoiseModel
from repro.cluster.params import GroundTruth, synthesize_ground_truth
from repro.cluster.profiles import IDEAL, LAM_7_1_3, MPICH_1_2_7, OPEN_MPI, MpiProfile
from repro.cluster.topology import TwoSwitchTopology
from repro.cluster.spec import (
    TABLE1_NODE_TYPES,
    ClusterSpec,
    NodeType,
    homogeneous_cluster,
    random_cluster,
    table1_cluster,
)

__all__ = [
    "ClusterSpec",
    "FaultInjector",
    "FaultPlan",
    "FlakyLink",
    "GroundTruth",
    "IDEAL",
    "LAM_7_1_3",
    "LinkDegradation",
    "MPICH_1_2_7",
    "MpiProfile",
    "NodeCrash",
    "NodeHang",
    "NodeSlowdown",
    "NodeType",
    "ProcessCrash",
    "SimulatedCrash",
    "NoiseModel",
    "OPEN_MPI",
    "SimulatedCluster",
    "TABLE1_NODE_TYPES",
    "TransportStats",
    "TwoSwitchTopology",
    "homogeneous_cluster",
    "random_cluster",
    "synthesize_ground_truth",
    "table1_cluster",
]
