"""Model-based optimization of collectives (the paper's Figs. 6 and 7).

Three optimizations driven by the estimated LMO model:

1. algorithm selection — switch between linear and binomial scatter where
   the model (not a homogeneous rule of thumb) says so;
2. gather message-splitting — avoid the TCP-incast escalation region
   using the estimated empirical parameters (M1, M2), with the expected
   gain predicted up front by :func:`repro.api.optimize_gather`;
3. processor-to-tree mapping — place slow processors at leaf positions of
   the binomial tree.

Run with::

    python examples/optimize_collectives.py
"""

import numpy as np

from repro import api
from repro.experiments.common import ModelSuite
from repro.models import binomial_tree
from repro.mpi import run_collective, run_ranks
from repro.mpi.collectives import linear
from repro.optimize import (
    crossover_size,
    optimize_mapping,
    optimized_gather,
    predict_algorithms,
)

KB = 1024


def measure_gather(cluster, factory, nbytes, reps=10):
    times = []
    for _ in range(reps):
        programs = {
            rank: (lambda comm: factory(comm, 0, nbytes)) for rank in range(cluster.n)
        }
        results = run_ranks(cluster, programs)
        times.append(max(res.finish for res in results.values()))
    return float(np.mean(times)), float(np.max(times))


def main() -> None:
    cluster = api.load_cluster(profile="lam", seed=3)
    suite = ModelSuite.estimate(api.load_cluster(profile="lam", seed=4))
    lmo = suite.lmo

    # -- 1. algorithm selection ------------------------------------------
    print("1. scatter algorithm selection (LMO-driven)")
    switch = crossover_size(lmo, "scatter", lo=16, hi=1 << 20)
    print(f"   model's binomial->linear crossover: "
          f"{switch} bytes" if switch else "   no crossover in range")
    for m in (1 * KB, 16 * KB, 150 * KB):
        choice = predict_algorithms(lmo, "scatter", m)
        observed = {
            algo: run_collective(cluster, "scatter", algo, nbytes=m).time
            for algo in ("linear", "binomial")
        }
        actual_best = min(observed, key=observed.__getitem__)
        print(f"   M={m:>7}: model picks {choice.best:<8} "
              f"observed winner {actual_best:<8} "
              f"({observed['linear'] * 1e3:.2f} vs {observed['binomial'] * 1e3:.2f} ms)")
    print()

    # -- 2. gather splitting ------------------------------------------------
    print("2. gather message-splitting (empirical M1/M2 from the LMO model)")
    irregularity = lmo.gather_irregularity
    assert irregularity is not None
    print(f"   estimated M1={irregularity.m1 / KB:.0f} KB, "
          f"M2={irregularity.m2 / KB:.0f} KB, "
          f"escalations ~{irregularity.escalation_value * 1e3:.0f} ms")
    split_sizes = (16 * KB, 32 * KB, 48 * KB)
    plan = api.optimize_gather(lmo, split_sizes)
    for m, chunks, predicted_gain in zip(split_sizes, plan.chunk_counts,
                                         plan.speedups):
        native_mean, native_worst = measure_gather(
            cluster, lambda c, r, n: linear.gather(c, r, n), m
        )
        opt_mean, opt_worst = measure_gather(
            cluster, lambda c, r, n: optimized_gather(c, r, n, irregularity), m
        )
        print(f"   M={m // KB:>3} KB ({chunks} chunks, predicted "
              f"{predicted_gain:4.1f}x): native {native_mean * 1e3:7.1f} ms "
              f"(worst {native_worst * 1e3:7.1f}), optimized {opt_mean * 1e3:6.2f} ms "
              f"-> {native_mean / opt_mean:5.1f}x")
    print()

    # -- 3. tree mapping ----------------------------------------------------
    print("3. binomial-tree processor mapping (heterogeneous placement)")
    tree = binomial_tree(16, 0)
    nbytes = 16 * KB
    mapping = optimize_mapping(lmo, tree, nbytes, exhaustive_limit=7, max_rounds=8)
    identity_pred = predict_algorithms(lmo, "scatter", nbytes).predictions["binomial"]
    print(f"   predicted binomial scatter: identity mapping "
          f"{identity_pred * 1e3:.2f} ms, optimized mapping "
          f"{mapping.predicted * 1e3:.2f} ms "
          f"({mapping.evaluations} evaluations)")
    observed_identity = run_collective(cluster, "scatter", "binomial", nbytes=nbytes).time
    observed_mapped = run_collective(
        cluster, "scatter", "binomial", nbytes=nbytes, tree=mapping.tree
    ).time
    print(f"   observed:                   identity {observed_identity * 1e3:.2f} ms, "
          f"optimized {observed_mapped * 1e3:.2f} ms")
    print()
    print("(a homogeneous model would predict identical times for every")
    print(" mapping — heterogeneous placement is invisible to it)")
    print()

    # -- 4. whole-application planning -----------------------------------
    print("4. planning an application's communication (one algorithm per call)")
    from repro.optimize import CollectiveCall, plan_collectives

    calls = [
        CollectiveCall("bcast", 256, count=50),          # control messages
        CollectiveCall("scatter", 128 * KB),             # input distribution
        CollectiveCall("allreduce", 64 * KB, count=20),  # iteration sync
        CollectiveCall("gather", 128 * KB),              # result collection
    ]
    plan = plan_collectives(lmo, calls)
    print(plan.render())


if __name__ == "__main__":
    main()
