"""End-to-end checks that the instrumented subsystems feed telemetry.

Every test here exercises a real code path — a campaign, a breaker, the
sweep cache, a simulated transfer over a flaky link, a maintenance
cycle — with telemetry enabled, and asserts the metrics/events/spans it
must produce.  The final test asserts the inverse: with telemetry off,
nothing is recorded anywhere.
"""

import pytest

from repro import predict_service
from repro.cluster import (
    IDEAL,
    FaultInjector,
    FaultPlan,
    FlakyLink,
    GroundTruth,
    LAM_7_1_3,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import (
    Campaign,
    CampaignConfig,
    DESEngine,
    ModelMaintainer,
    RetryPolicy,
    campaign_status,
    roundtrip,
    run_schedule_robust,
)
from repro.estimation.breakers import BreakerPolicy, CircuitBreaker
from repro.models import ExtendedLMOModel
from repro.obs import runtime as _obs

pytestmark = pytest.mark.campaign

KB = 1024


def quiet_cluster(n=4, seed=5):
    gt = GroundTruth.random(n, seed=seed)
    return SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt, profile=IDEAL,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
    )


# -- campaign + journal ---------------------------------------------------------
def test_campaign_emits_unit_journal_and_budget_metrics(tmp_path):
    tel = _obs.enable(fresh=True)
    path = str(tmp_path / "camp.jsonl")
    result = Campaign.start(
        DESEngine(quiet_cluster()), path, CampaignConfig(seed=11, timeout=5.0),
    ).run()
    assert result.stopped == "complete"

    reg = tel.registry
    total = result.total_experiments
    assert reg.value("campaign_units_total", outcome="done") == total
    assert reg.value("campaign_units_started_total") == total
    # Every unit ran under a span, inside one campaign.run span.
    assert len(tel.spans.finished("campaign.unit")) == total
    assert len(tel.spans.finished("campaign.run")) == 1
    # Journal instrumentation: one append per started/done record at
    # minimum, with matching latency observations.
    appends = reg.total("journal_appends_total")
    assert appends >= 2 * total
    hist = reg.histogram("journal_append_seconds")
    assert hist.count == appends
    assert hist.sum > 0
    # Budgets and board state are flushed as gauges.
    assert reg.value("campaign_budget_repetitions_used") == result.repetitions
    assert reg.value("campaign_coverage") == 1.0
    assert reg.value("breaker_nodes", state="closed") == 4
    assert reg.value("breaker_nodes", state="open") == 0
    # Checkpoints narrate as events.
    assert tel.events.count("campaign_checkpoint") >= 1


def test_status_replay_is_suppressed_not_recounted(tmp_path):
    path = str(tmp_path / "camp.jsonl")
    Campaign.start(
        DESEngine(quiet_cluster()), path, CampaignConfig(seed=11, timeout=5.0),
    ).run()

    tel = _obs.enable(fresh=True)
    status = campaign_status(path)
    # Replaying the journal rebuilt a breaker board, but none of that is
    # live activity: no counters, no events leaked into the session.
    assert tel.registry.total("breaker_transitions_total") == 0
    assert tel.registry.total("campaign_units_total") == 0
    assert len(tel.events) == 0
    assert status.coverage == 1.0
    assert status.quarantined == ()
    assert status.solved_triplets == status.total_triplets == 4


# -- circuit breakers -----------------------------------------------------------
def test_breaker_transitions_count_and_narrate():
    tel = _obs.enable(fresh=True)
    breaker = CircuitBreaker(3, BreakerPolicy(failure_threshold=2, cooldown_units=3))
    breaker.record_failure(0)
    breaker.record_failure(1)          # -> OPEN
    assert breaker.allows(4)           # cooldown over -> HALF_OPEN
    breaker.record_success()           # probe ok -> CLOSED

    reg = tel.registry
    assert reg.value("breaker_transitions_total", to="open") == 1
    assert reg.value("breaker_transitions_total", to="half_open") == 1
    assert reg.value("breaker_transitions_total", to="closed") == 1
    assert reg.value("breaker_opens_total", node="3") == 1
    assert reg.value("breaker_half_opens_total", node="3") == 1
    trips = tel.events.events("breaker_transition", min_level="warning")
    assert len(trips) == 1
    assert trips[0]["node"] == 3 and trips[0]["new"] == "open"


# -- robust runner --------------------------------------------------------------
def test_robust_runner_flushes_sample_accounting():
    tel = _obs.enable(fresh=True)
    cluster = quiet_cluster(n=5, seed=3)
    cluster.profile = LAM_7_1_3
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(FlakyLink(a=0, b=1, loss_prob=0.5),), seed=9,
    )))
    _results, stats = run_schedule_robust(
        DESEngine(cluster), [roundtrip(0, 1, 8 * KB)], reps=3,
        policy=RetryPolicy(),
    )
    assert stats.timeouts > 0
    reg = tel.registry
    assert reg.value("robust_samples_total", reason="timeout") == stats.timeouts
    assert reg.value("robust_samples_total", reason="retry") == stats.retries
    assert reg.value("robust_samples_total", reason="degraded") == len(stats.degraded)


# -- prediction sweep cache -----------------------------------------------------
def test_predict_cache_counters_track_cache_info():
    tel = _obs.enable(fresh=True)
    predict_service.clear_cache()
    gt = GroundTruth.random(4, seed=2)
    model = ExtendedLMOModel(gt.C, gt.t, gt.L, gt.beta)
    sizes = [KB, 2 * KB, 4 * KB]
    predict_service.predict_sweep(model, "scatter", "linear", sizes)
    predict_service.predict_sweep(model, "scatter", "linear", sizes)  # hit

    info = predict_service.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1
    reg = tel.registry
    assert reg.value("predict_cache_total", result="hit") == info["hits"]
    assert reg.value("predict_cache_total", result="miss") == info["misses"]
    batch = reg.histogram("predict_sweep_batch_size", lo=0, hi=20)
    assert batch.count == 1 and batch.sum == len(sizes)
    assert reg.histogram("predict_sweep_seconds").count == 1
    predict_service.clear_cache()


# -- simulated cluster ----------------------------------------------------------
def test_kernel_event_counts_flush_on_reset():
    tel = _obs.enable(fresh=True)
    cluster = quiet_cluster()
    DESEngine(cluster).run(roundtrip(0, 1, KB))
    processed = cluster.sim.events_processed
    assert processed > 0
    assert tel.registry.total("sim_events_total") == 0  # not yet flushed
    cluster.reset()
    assert tel.registry.value("sim_events_total") == processed
    cluster.reset()  # fresh sim, nothing new to flush
    assert tel.registry.value("sim_events_total") == processed


def test_rto_escalations_match_injector_accounting():
    tel = _obs.enable(fresh=True)
    cluster = quiet_cluster(n=5, seed=3)
    cluster.profile = LAM_7_1_3
    injector = FaultInjector(FaultPlan(
        faults=(FlakyLink(a=0, b=1, loss_prob=0.5),), seed=9,
    ))
    cluster.attach_injector(injector)
    engine = DESEngine(cluster)
    for _ in range(20):
        engine.run(roundtrip(0, 1, 8 * KB))

    losses = injector.stats.loss_escalations
    assert losses > 0
    assert tel.registry.value("rto_escalations_total", cause="loss") == losses
    events = tel.events.events("rto_escalation", cause="loss")
    assert len(events) == losses
    sample = events[0]
    assert {sample["src"], sample["dst"]} == {0, 1}
    assert sample["delay"] > 0 and sample["sim_time"] >= 0
    assert sample["level"] == "warning"


# -- maintainer -----------------------------------------------------------------
def test_maintainer_cycles_feed_metrics_events_and_spans():
    tel = _obs.enable(fresh=True)
    maintainer = ModelMaintainer(DESEngine(quiet_cluster()))
    maintainer.bootstrap()
    maintainer.cycle()

    reg = tel.registry
    assert reg.value("maintainer_cycles_total", action="bootstrap") == 1
    assert reg.value("maintainer_cycles_total", action="ok") == 1
    assert reg.value("maintainer_worst_drift") >= 0
    # The session event log mirrors the maintainer's own history.
    assert tel.events.count("heal_cycle") == len(maintainer.health_records()) == 2
    assert len(tel.spans.finished("maintainer.bootstrap")) == 1
    assert len(tel.spans.finished("maintainer.cycle")) == 1


# -- transfer-size telemetry (the escalation detector's feed) -------------------
def lam_cluster(n=6, seed=3):
    gt = GroundTruth.random(n, seed=seed)
    return SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt, profile=LAM_7_1_3,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
    )


def test_transfers_feed_size_histograms_and_incast_marks_escalated():
    import repro.api as api

    tel = _obs.enable(fresh=True)
    cluster = lam_cluster()
    # Gather in the irregularity region: incast escalations are natural.
    api.measure(cluster, "gather", "linear", 32 * KB, max_reps=8)
    reg = tel.registry
    transfers = reg.total("sim_transfer_bytes")
    escalated = reg.total("sim_escalated_transfer_bytes")
    incasts = reg.value("rto_escalations_total", cause="incast")
    assert transfers > 0
    # Every natural escalation marked exactly one sized transfer.
    assert escalated == incasts > 0
    # The narrated escalation events now carry the transfer size.
    events = tel.events.events("rto_escalation", cause="incast")
    assert events and all(e["nbytes"] == 32 * KB for e in events)
    # Delay samples landed in the cause-labeled histogram.
    snap = reg.snapshot()
    delay_samples = snap["rto_escalation_seconds"]["samples"]
    assert any(s["labels"] == {"cause": "incast"} and s["count"] == incasts
               for s in delay_samples)


def test_loss_escalations_do_not_count_as_escalated_transfers():
    tel = _obs.enable(fresh=True)
    cluster = quiet_cluster(n=4, seed=3)
    cluster.profile = LAM_7_1_3
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(FlakyLink(a=0, b=1, loss_prob=0.6),), seed=9,
    )))
    engine = DESEngine(cluster)
    for _ in range(20):
        engine.run(roundtrip(0, 1, KB))  # far below M1: no incast
    reg = tel.registry
    losses = reg.value("rto_escalations_total", cause="loss")
    assert losses > 0
    # Injected-fault escalations are size-independent noise: they must
    # not pollute the escalation-region estimate.
    assert reg.total("sim_escalated_transfer_bytes") == 0
    assert reg.total("sim_transfer_bytes") > 0


# -- residual feeds --------------------------------------------------------------
def test_api_measure_feeds_residual_monitor():
    import repro.api as api
    from repro.obs.insight import scorecards

    cluster = quiet_cluster()
    outcome = api.estimate(cluster, "lmo", quick=True)
    tel = _obs.enable(fresh=True)
    api.measure(cluster, "gather", "linear", 4 * KB, models={"lmo": outcome.model})
    cards = scorecards(tel.registry.snapshot())
    assert [(c.model, c.operation) for c in cards] == [("lmo", "gather/linear")]
    assert cards[0].count == 1


def test_suite_record_residuals_feeds_monitor_per_point():
    from repro.benchlib import BenchmarkSuite
    from repro.obs.insight import scorecards
    from repro.stats import MeasurementPolicy

    cluster = quiet_cluster()
    import repro.api as api

    model = api.estimate(cluster, "lmo", quick=True).model
    suite = BenchmarkSuite(cluster, policy=MeasurementPolicy(min_reps=2, max_reps=2))
    result = suite.run(operations=["scatter"], sizes=[KB])

    # Telemetry off: a silent no-op.
    assert _obs.ACTIVE is None
    assert result.record_residuals({"lmo": model}) == 0

    tel = _obs.enable(fresh=True)
    ingested = result.record_residuals({"lmo": model})
    assert ingested == len(result.predictions(model))
    cards = scorecards(tel.registry.snapshot())
    assert {c.operation for c in cards} == {
        f"scatter/{algo}" for (_op, algo, _n) in result.predictions(model)
    }


def test_maintainer_spot_checks_feed_residuals():
    from repro.obs.insight.residuals import ABS_ERROR_METRIC

    tel = _obs.enable(fresh=True)
    maintainer = ModelMaintainer(DESEngine(quiet_cluster()))
    maintainer.bootstrap()
    maintainer.cycle()
    snap = tel.registry.snapshot()
    assert ABS_ERROR_METRIC in snap
    labels = snap[ABS_ERROR_METRIC]["samples"][0]["labels"]
    assert labels["model"] == "lmo" and labels["operation"] == "roundtrip"


# -- the off switch -------------------------------------------------------------
def test_everything_is_silent_when_disabled(tmp_path):
    assert _obs.ACTIVE is None
    path = str(tmp_path / "camp.jsonl")
    Campaign.start(
        DESEngine(quiet_cluster()), path, CampaignConfig(seed=11, timeout=5.0),
    ).run()
    predict_service.clear_cache()
    gt = GroundTruth.random(4, seed=2)
    predict_service.predict_sweep(
        ExtendedLMOModel(gt.C, gt.t, gt.L, gt.beta), "scatter", "linear", [KB],
    )
    # Nothing above turned telemetry on as a side effect.
    assert _obs.ACTIVE is None
    predict_service.clear_cache()
