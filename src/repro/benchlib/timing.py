"""Timing methods for collective benchmarks (MPIBlib [12]).

MPIBlib offers several ways to time a collective, trading accuracy for
cost; the paper (Sec. IV) picks sender-side timing for its estimation
experiments as "fast and quite accurate ... on a small number of
processors".  On the simulator every method is available exactly:

* ``global``  — barrier-synchronized start to last rank's completion
  (what an omniscient observer calls the duration; MPIBlib approximates
  it with synchronized clocks);
* ``root``    — the root's local completion time (sender-side timing);
* ``maxrank`` — alias of ``global`` kept for MPIBlib naming familiarity.
"""

from __future__ import annotations

from typing import Callable

from repro.mpi.runtime import CollectiveRun

__all__ = ["TIMING_METHODS", "duration"]


def _global(run: CollectiveRun) -> float:
    return run.time


def _root(run: CollectiveRun) -> float:
    return run.root_time


TIMING_METHODS: dict[str, Callable[[CollectiveRun], float]] = {
    "global": _global,
    "maxrank": _global,
    "root": _root,
}


def duration(run: CollectiveRun, method: str = "global") -> float:
    """Extract a duration from a collective run by timing method."""
    try:
        extract = TIMING_METHODS[method]
    except KeyError:
        raise KeyError(
            f"unknown timing method {method!r}; available: {sorted(TIMING_METHODS)}"
        ) from None
    return extract(run)
