"""Property-based fuzzing of the MPI layer: random traffic patterns.

Generates random matched send/receive programs and asserts the global
contracts: no deadlock, every payload arrives intact exactly once, and
timing is deterministic and monotone under size scaling.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import IDEAL, LAM_7_1_3, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.mpi import run_ranks

KB = 1024


def quiet_cluster(n, seed, profile=IDEAL):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=profile,
        noise=NoiseModel.none(),
        seed=seed,
    )


@st.composite
def traffic_pattern(draw):
    """A random list of (src, dst, nbytes, tag) with distinct src/dst."""
    n = draw(st.integers(3, 8))
    messages = []
    count = draw(st.integers(1, 12))
    for idx in range(count):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1).filter(lambda d, s=src: d != s))
        nbytes = draw(st.sampled_from([0, 1, 100, 4 * KB, 70 * KB]))
        messages.append((src, dst, nbytes, idx))
    return n, messages


def build_programs(messages):
    """Matched sender/receiver programs; receivers use per-message tags."""
    sends: dict[int, list] = {}
    recvs: dict[int, list] = {}
    for src, dst, nbytes, tag in messages:
        sends.setdefault(src, []).append((dst, nbytes, tag))
        recvs.setdefault(dst, []).append((src, nbytes, tag))
    received: dict[int, bytes] = {}

    def factory(rank):
        def program(comm):
            reqs = []
            for src, _nbytes, tag in recvs.get(rank, []):
                reqs.append(comm.irecv(src, tag=tag))
            for dst, nbytes, tag in sends.get(rank, []):
                payload = bytes([tag % 256]) * nbytes if nbytes else b""
                yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=tag)
            for req in reqs:
                env = yield from comm.wait(req)
                received[env.tag] = env.payload
            return None

        return program

    ranks = set(sends) | set(recvs)
    return {rank: factory(rank) for rank in ranks}, received


@settings(max_examples=30, deadline=None)
@given(pattern=traffic_pattern(), seed=st.integers(0, 100))
def test_random_traffic_never_deadlocks_and_delivers_everything(pattern, seed):
    n, messages = pattern
    cluster = quiet_cluster(n, seed)
    programs, received = build_programs(messages)
    run_ranks(cluster, programs)  # raises DeadlockError on failure
    assert len(received) == len(messages)
    for _src, _dst, nbytes, tag in messages:
        payload = received[tag]
        expected = bytes([tag % 256]) * nbytes if nbytes else b""
        assert payload == expected


@settings(max_examples=15, deadline=None)
@given(pattern=traffic_pattern(), seed=st.integers(0, 100))
def test_random_traffic_is_deterministic(pattern, seed):
    n, messages = pattern

    def finish_time():
        cluster = quiet_cluster(n, seed)
        programs, _received = build_programs(messages)
        results = run_ranks(cluster, programs)
        return max(res.finish for res in results.values())

    assert finish_time() == finish_time()


@settings(max_examples=15, deadline=None)
@given(pattern=traffic_pattern(), seed=st.integers(0, 100))
def test_random_traffic_under_lam_profile_completes(pattern, seed):
    """Rendezvous gates and escalations must never deadlock any matched
    pattern (mixed eager/rendezvous sizes included)."""
    n, messages = pattern
    cluster = quiet_cluster(n, seed, profile=LAM_7_1_3)
    programs, received = build_programs(messages)
    run_ranks(cluster, programs)
    assert len(received) == len(messages)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), scale=st.integers(2, 8))
def test_scaling_all_messages_scales_time_monotonically(seed, scale):
    n = 5
    messages = [(0, 1, 8 * KB, 0), (2, 3, 8 * KB, 1), (1, 4, 8 * KB, 2)]

    def finish_time(factor):
        cluster = quiet_cluster(n, seed)
        scaled = [(s, d, nb * factor, t) for s, d, nb, t in messages]
        programs, _ = build_programs(scaled)
        results = run_ranks(cluster, programs)
        return max(res.finish for res in results.values())

    assert finish_time(scale) > finish_time(1)
