"""Fig. 1 bench: linear scatter observation vs the four Hockney readings.

The kernel is one full 16-rank linear-scatter simulation at 64 KB — the
workload the figure measures at every size.
"""

from conftest import assert_checks

from repro.mpi import run_collective

KB = 1024


def test_fig1_shape(experiment_results):
    assert_checks(experiment_results("fig1"))


def test_bench_linear_scatter_64kb(benchmark, experiment_results, lam_cluster):
    assert_checks(experiment_results("fig1"))

    def kernel():
        return run_collective(lam_cluster, "scatter", "linear", nbytes=64 * KB).time

    duration = benchmark(kernel)
    assert duration > 0


def test_bench_hockney_predictions_sweep(benchmark, experiment_results, model_suite):
    """Kernel: the four Hockney predictions over the full size grid."""
    assert_checks(experiment_results("fig1"))
    from repro.experiments.common import SIZES_FULL
    from repro.models import predict_linear_scatter

    def kernel():
        total = 0.0
        for m in SIZES_FULL:
            total += predict_linear_scatter(model_suite.hockney_hom, m, assumption="sequential")
            total += predict_linear_scatter(model_suite.hockney_hom, m, assumption="parallel")
            total += predict_linear_scatter(model_suite.hockney_het, m, assumption="sequential")
            total += predict_linear_scatter(model_suite.hockney_het, m, assumption="parallel")
        return total

    assert benchmark(kernel) > 0
