"""Activity tracing for the simulated cluster: what happened, when, where.

A :class:`Tracer` records labelled activity intervals per lane (one lane
per node CPU, one per switch port, ...) and renders them as an ASCII
Gantt chart — the timeline view that makes the paper's arguments visible:
the root's CPU lane is solid during a linear scatter while the port lanes
overlap; a gather's port lane serializes; an RTO escalation is a long
gap.

The tracer is optional and zero-cost when absent: the cluster only calls
it if one is attached (:meth:`repro.cluster.machine.SimulatedCluster.attach_tracer`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Interval", "Tracer", "render_gantt", "to_chrome_trace"]


@dataclass(frozen=True)
class Interval:
    """One traced activity: ``[start, end)`` on a lane."""

    lane: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Accumulates activity intervals during a simulation run."""

    intervals: list[Interval] = field(default_factory=list)

    def record(self, lane: str, start: float, end: float, label: str = "") -> None:
        """Record one completed activity."""
        self.intervals.append(Interval(lane, start, end, label))

    def clear(self) -> None:
        self.intervals.clear()

    # -- queries --------------------------------------------------------------
    def lanes(self) -> list[str]:
        """Lane names in first-appearance order."""
        seen: dict[str, None] = {}
        for interval in self.intervals:
            seen.setdefault(interval.lane, None)
        return list(seen)

    def lane_intervals(self, lane: str) -> list[Interval]:
        """Intervals of one lane, sorted by start time."""
        return sorted(
            (i for i in self.intervals if i.lane == lane), key=lambda i: i.start
        )

    def busy_time(self, lane: str) -> float:
        """Total busy (possibly overlapping) time on a lane."""
        return sum(i.duration for i in self.lane_intervals(lane))

    def utilization(self, lane: str) -> float:
        """Busy time over the full traced span (0 when nothing happened)."""
        span = self.span()
        if span <= 0:
            return 0.0
        return self.busy_time(lane) / span

    def span(self) -> float:
        """Time from the earliest start to the latest end."""
        if not self.intervals:
            return 0.0
        return max(i.end for i in self.intervals) - min(i.start for i in self.intervals)

    def render(self, width: int = 72, lanes: Optional[list[str]] = None) -> str:
        """ASCII Gantt chart of the trace (see :func:`render_gantt`)."""
        return render_gantt(self, width=width, lanes=lanes)

    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON (see :func:`to_chrome_trace`)."""
        return to_chrome_trace(self)


def render_gantt(tracer: Tracer, width: int = 72, lanes: Optional[list[str]] = None) -> str:
    """Render a tracer's intervals as a fixed-width ASCII Gantt chart.

    Each lane is a row; busy stretches are drawn with ``#`` (or the first
    letter of the interval label when unambiguous).
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    chosen = lanes if lanes is not None else tracer.lanes()
    if not tracer.intervals or not chosen:
        return "(empty trace)"
    t0 = min(i.start for i in tracer.intervals)
    t1 = max(i.end for i in tracer.intervals)
    span = max(t1 - t0, 1e-15)
    name_width = max(len(name) for name in chosen)
    lines = [
        f"{'':<{name_width}} 0{'.' * (width - 2)}{span * 1e3:.3f} ms"
    ]
    for lane in chosen:
        cells = [" "] * width
        for interval in tracer.lane_intervals(lane):
            lo = int((interval.start - t0) / span * (width - 1))
            hi = int((interval.end - t0) / span * (width - 1))
            mark = interval.label[:1] if interval.label else "#"
            for pos in range(lo, max(hi, lo) + 1):
                cells[pos] = mark
        lines.append(f"{lane:<{name_width}} {''.join(cells)}")
    return "\n".join(lines)


#: Human-readable activity names for the single-letter labels the
#: cluster emits.
_LABEL_NAMES = {
    "s": "send processing",
    "r": "receive processing",
    "w": "wire transfer",
    "R": "TCP retransmission timeout",
}


def to_chrome_trace(tracer: Tracer) -> str:
    """Export a trace as Chrome trace-event JSON.

    Load the result in ``chrome://tracing`` / Perfetto for an interactive
    timeline: one 'process' per lane, complete ('X') events with
    microsecond timestamps.
    """
    events = []
    lane_ids = {lane: idx for idx, lane in enumerate(tracer.lanes())}
    for lane, pid in lane_ids.items():
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": lane},
        })
    for interval in tracer.intervals:
        events.append({
            "name": _LABEL_NAMES.get(interval.label, interval.label or "activity"),
            "ph": "X",
            "pid": lane_ids[interval.lane],
            "tid": 0,
            "ts": interval.start * 1e6,
            "dur": interval.duration * 1e6,
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
