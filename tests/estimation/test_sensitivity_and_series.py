"""Tests: one-way-series Hockney estimation and probe sensitivity."""

import numpy as np
import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation import AnalyticEngine, DESEngine, estimate_heterogeneous_hockney
from repro.estimation.hockney_est import estimate_hockney_series
from repro.estimation.lmo_est import estimate_extended_lmo
from repro.estimation.sensitivity import probe_sensitivity
from repro.stats import MeasurementPolicy

KB = 1024


def make_cluster(n=6, seed=80, noise=None):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=noise if noise is not None else NoiseModel.none(),
        seed=seed,
    )


# --------------------------------------------------------------- series design
def test_series_estimation_matches_two_point_design():
    cluster = make_cluster()
    two_point = estimate_heterogeneous_hockney(DESEngine(cluster), reps=1).model
    series = estimate_hockney_series(DESEngine(cluster), reps=1).model
    assert np.allclose(series.alpha, two_point.alpha, rtol=1e-6)
    assert np.allclose(series.beta, two_point.beta, rtol=1e-6)


def test_series_estimation_recovers_ground_truth():
    cluster = make_cluster(seed=81)
    gt = cluster.ground_truth
    model = estimate_hockney_series(DESEngine(cluster), reps=1).model
    mask = ~np.eye(gt.n, dtype=bool)
    assert np.allclose(model.alpha[mask], gt.hockney_alpha()[mask], rtol=1e-9)
    assert np.allclose(model.beta[mask], gt.hockney_beta()[mask], rtol=1e-9)


def test_series_estimation_robust_to_one_noisy_size():
    """With noise, the 6-point fit beats the 2-point design on average."""
    gt = GroundTruth.random(4, seed=82)
    noise = NoiseModel(rel_sigma=0.05, spike_prob=0.0)

    def beta_error(estimator, seed):
        engine = AnalyticEngine(gt, noise=noise, seed=seed)
        model = estimator(engine)
        mask = ~np.eye(4, dtype=bool)
        return np.abs(model.beta[mask] / gt.hockney_beta()[mask] - 1).mean()

    two_point = np.mean([
        beta_error(lambda e: estimate_heterogeneous_hockney(e, reps=1).model, s)
        for s in range(8)
    ])
    series = np.mean([
        beta_error(lambda e: estimate_hockney_series(e, reps=1).model, s)
        for s in range(8)
    ])
    assert series < two_point


def test_series_validation():
    cluster = make_cluster(seed=83)
    with pytest.raises(ValueError, match="two series sizes"):
        estimate_hockney_series(DESEngine(cluster), sizes=[1024])


# ------------------------------------------------------------ adaptive policy
def test_lmo_estimation_with_policy_matches_fixed_reps_on_quiet_cluster():
    gt = GroundTruth.random(5, seed=84)
    fixed = estimate_extended_lmo(AnalyticEngine(gt), reps=1).model
    adaptive = estimate_extended_lmo(
        AnalyticEngine(gt), policy=MeasurementPolicy(min_reps=3, max_reps=10)
    ).model
    assert np.allclose(fixed.C, adaptive.C, rtol=1e-9)


def test_lmo_estimation_with_policy_on_noisy_des():
    cluster = make_cluster(seed=85, noise=NoiseModel(rel_sigma=0.01, spike_prob=0))
    gt = cluster.ground_truth
    model = estimate_extended_lmo(
        DESEngine(cluster),
        policy=MeasurementPolicy(min_reps=5, max_reps=30),
        clamp=True,
    ).model
    assert model.p2p_time(0, 1, 32 * KB) == pytest.approx(
        gt.p2p_time(0, 1, 32 * KB), rel=0.1
    )


# ----------------------------------------------------------------- sensitivity
def test_probe_sensitivity_stable_on_quiet_cluster():
    gt = GroundTruth.random(5, seed=86)
    report = probe_sensitivity(
        lambda: AnalyticEngine(gt), probes=(4 * KB, 16 * KB, 48 * KB), reps=1
    )
    assert report.stable
    assert report.variation["t"] < 1e-6
    assert report.recommended_probe() in report.probes


def test_probe_sensitivity_flags_noisy_small_probes():
    """With noise, tiny probes make the per-byte estimates jump around —
    the variation report shows larger probes are safer."""
    gt = GroundTruth.random(5, seed=87)
    noise = NoiseModel(rel_sigma=0.03, spike_prob=0.0)
    seeds = iter(range(100))

    report = probe_sensitivity(
        lambda: AnalyticEngine(gt, noise=noise, seed=next(seeds)),
        probes=(256, 64 * KB),
        reps=1,
    )
    # The t estimates cannot agree across such different probes under
    # noise: variation blows past the stability threshold.
    assert report.variation["t"] > 0.10
    assert not report.stable


def test_probe_sensitivity_validation():
    gt = GroundTruth.random(4, seed=88)
    with pytest.raises(ValueError):
        probe_sensitivity(lambda: AnalyticEngine(gt), probes=(KB,))
