"""Microbenchmark: telemetry hooks are free when no sink is attached.

The observability tentpole's bar: an instrumented campaign must run
within 5% of its uninstrumented wall-clock when telemetry is disabled.
There is no uninstrumented build to race against, so the check is
analytic and conservative:

1. time a full campaign with telemetry off (what users actually run);
2. count every hook the same campaign fires when telemetry is *on*
   (units, journal appends, kernel events, spans) — an upper bound on
   the disabled-mode guard checks the run executes;
3. measure the cost of one disabled-mode guard (``_obs.ACTIVE`` load +
   ``is None`` branch) by timing a million of them;
4. assert ``hooks x guard_cost < 5%`` of the disabled campaign time.

Results land in ``BENCH_obs.json`` at the repo root.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py -s
"""

import json
import time
from pathlib import Path

from repro.cluster import (
    IDEAL,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import Campaign, CampaignConfig, DESEngine
from repro.obs import runtime as _obs

REPEATS = 3
GUARD_ITERATIONS = 1_000_000
BUDGET_FRACTION = 0.05
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

CONFIG = CampaignConfig(seed=11, timeout=5.0)


def make_engine():
    gt = GroundTruth.random(5, seed=5)
    cluster = SimulatedCluster(
        random_cluster(5, seed=5), ground_truth=gt, profile=IDEAL,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
    )
    return DESEngine(cluster)


def run_campaign(tmp_path, tag):
    path = str(tmp_path / f"camp-{tag}.jsonl")
    start = time.perf_counter()
    result = Campaign.start(make_engine(), path, CONFIG).run()
    elapsed = time.perf_counter() - start
    assert result.stopped == "complete"
    return elapsed, result


def time_disabled_guard():
    """Seconds per ``ACTIVE is None`` check — the whole disabled hook."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(GUARD_ITERATIONS):
            tel = _obs.ACTIVE
            if tel is not None:  # pragma: no cover - telemetry is off here
                raise AssertionError("telemetry must be disabled")
        best = min(best, time.perf_counter() - start)
    return best / GUARD_ITERATIONS


def count_hooks(tmp_path):
    """Hook executions of one campaign, counted by running it instrumented."""
    tel = _obs.enable(fresh=True)
    try:
        _elapsed, result = run_campaign(tmp_path, "instrumented")
        result_engine_events = tel.registry.total("sim_events_total")
        reg = tel.registry
        units = reg.total("campaign_units_total")
        appends = reg.total("journal_appends_total")
        spans = len(tel.spans.finished()) + tel.spans.dropped
        events = len(tel.events) + tel.events.dropped
        # Per-site accounting, deliberately over-counted:
        #  - kernel: one always-on int increment per simulated event plus
        #    the ``profiler is None`` branch in ``step()`` (each counted
        #    as a full guard even though they are cheaper) — 2 per event;
        #  - journal: guard + histogram + counter ~ 3 guard-equivalents;
        #  - units: started/done/retry/wall hooks ~ 6 per unit;
        #  - spans/events/checkpoints: 2 each for enter/exit.
        hooks = (
            2 * result_engine_events
            + 3 * appends
            + 6 * units
            + 2 * (spans + events)
            + 64  # flushes, budget gauges, board scans
        )
        return int(hooks), {
            "sim_events": int(result_engine_events),
            "journal_appends": int(appends),
            "units": int(units),
            "spans": int(spans),
            "events": int(events),
        }
    finally:
        _obs.disable()


def test_disabled_telemetry_overhead_under_5_percent(tmp_path):
    _obs.disable()
    disabled_s = min(
        run_campaign(tmp_path, f"off-{i}")[0] for i in range(REPEATS)
    )
    hooks, breakdown = count_hooks(tmp_path)
    guard_s = time_disabled_guard()

    overhead_s = hooks * guard_s
    overhead_fraction = overhead_s / disabled_s
    payload = {
        "benchmark": "telemetry guard overhead, sinks detached",
        "campaign_seconds_disabled": round(disabled_s, 6),
        "guard_ns": round(guard_s * 1e9, 3),
        "hook_executions": hooks,
        "hook_breakdown": breakdown,
        "overhead_seconds": round(overhead_s, 6),
        "overhead_fraction": round(overhead_fraction, 6),
        "budget_fraction": BUDGET_FRACTION,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\ncampaign {disabled_s * 1e3:.1f} ms disabled, "
          f"{hooks} hooks x {guard_s * 1e9:.0f} ns = "
          f"{overhead_fraction:.2%} overhead -> {RESULT_PATH.name}")
    assert overhead_fraction < BUDGET_FRACTION, (
        f"disabled-telemetry overhead {overhead_fraction:.2%} "
        f"exceeds the {BUDGET_FRACTION:.0%} budget"
    )
