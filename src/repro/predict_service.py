"""Central batched prediction service.

Everything that wants a predicted communication time — the CLI, the
benchmark suite, the experiments, the optimizer — routes through this
module, so there is exactly one cache and one code path for turning a
(model, collective, size) request into seconds.

Two entry points:

* :func:`predict_sweep` — one collective, a whole array of message
  sizes, evaluated by the vectorized formulas of
  :mod:`repro.models.collectives` in one pass of NumPy ops;
* :func:`predict_many` — a heterogeneous batch of
  :class:`PredictRequest` objects, grouped by (operation, algorithm,
  root) and dispatched to :func:`predict_sweep` per group.

Results are memoized in an LRU cache keyed on the *model fingerprint*
(a content hash of the serialized parameters — models are frozen
dataclasses holding arrays, so identity is by value, not by object),
the collective, the root, and the requested sizes.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.obs import runtime as _obs

from repro.models.base import ArrayLike, validate_nbytes_batch
from repro.models.collectives.formulas import (
    predict_binomial_gather_sweep,
    predict_binomial_scatter_sweep,
    predict_linear_gather_sweep,
    predict_linear_scatter_sweep,
)
from repro.models.collectives.formulas_ext import (
    _SWEEP_PREDICTORS,
    predict_collective_sweep,
)

__all__ = [
    "PredictRequest",
    "available_algorithms",
    "cache_info",
    "clear_cache",
    "model_fingerprint",
    "model_label",
    "predict_many",
    "predict_one",
    "predict_sweep",
]

#: Collectives every model supports, via the Table II formulas.
_CORE_SWEEPS = {
    ("scatter", "linear"): predict_linear_scatter_sweep,
    ("scatter", "binomial"): predict_binomial_scatter_sweep,
    ("gather", "linear"): predict_linear_gather_sweep,
    ("gather", "binomial"): predict_binomial_gather_sweep,
}

_CACHE_MAXSIZE = 256
_cache: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_hits = 0
_misses = 0
_evictions = 0


@dataclass(frozen=True)
class PredictRequest:
    """One prediction request for :func:`predict_many`.

    ``operation="p2p"`` predicts a point-to-point transfer from ``root``
    to ``dest``; every other operation is a collective rooted at
    ``root`` (``dest`` unused).
    """

    operation: str
    algorithm: str
    nbytes: float
    root: int = 0
    dest: Optional[int] = None


def model_fingerprint(model) -> str:
    """Content hash identifying a model's type and parameter values.

    Memoized on the instance (models are frozen/immutable), so repeated
    cache lookups don't re-serialize the parameter arrays.
    """
    cached = model.__dict__.get("_repro_fingerprint")
    if cached is not None:
        return cached
    doc = {"model": type(model).__name__, "params": model.to_dict()}
    digest = hashlib.sha1(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    # Plain __dict__ write: works on frozen dataclasses (same mechanism
    # as functools.cached_property).
    model.__dict__["_repro_fingerprint"] = digest
    return digest


def model_label(model) -> str:
    """Short, stable, human-readable identity for one model instance.

    ``<class>:<fingerprint prefix>`` — distinct parameter values get
    distinct labels, so residual scorecards keyed on it never mix a
    re-estimated model with its predecessor.  Used by
    :func:`repro.api.measure`/:func:`repro.api.check_fidelity` when the
    caller passes models without naming them.
    """
    return f"{type(model).__name__}:{model_fingerprint(model)[:8]}"


def available_algorithms(model) -> list[tuple[str, str]]:
    """All (operation, algorithm) pairs predictable for ``model``."""
    pairs = [("p2p", "direct")] + sorted(_CORE_SWEEPS)
    if type(model).__name__ == "ExtendedLMOModel":
        pairs += sorted(_SWEEP_PREDICTORS)
    return pairs


def clear_cache() -> None:
    """Drop all memoized sweeps (e.g. after re-estimating models)."""
    global _hits, _misses, _evictions
    _cache.clear()
    _hits = 0
    _misses = 0
    _evictions = 0


def cache_info() -> dict:
    """Hit/miss/eviction/size counters of the sweep cache."""
    return {"hits": _hits, "misses": _misses, "evictions": _evictions,
            "size": len(_cache), "maxsize": _CACHE_MAXSIZE}


def _compute_sweep(model, operation, algorithm, sizes, root, kwargs):
    if operation == "p2p":
        if algorithm != "direct":
            raise KeyError(f"no predictor for p2p/{algorithm}; available: p2p/direct")
        dest = kwargs.get("dest")
        if dest is None:
            raise ValueError("p2p prediction needs dest")
        return model.p2p_time_batch(root, dest, sizes)
    core = _CORE_SWEEPS.get((operation, algorithm))
    if core is not None:
        return core(model, sizes, root=root, **kwargs)
    if (operation, algorithm) not in available_algorithms(model):
        raise KeyError(
            f"no predictor for {operation}/{algorithm} with {type(model).__name__}"
        )
    return predict_collective_sweep(model, operation, algorithm, sizes, root=root, **kwargs)


def predict_sweep(
    model,
    operation: str,
    algorithm: str,
    sizes: ArrayLike,
    root: int = 0,
    **kwargs,
) -> np.ndarray:
    """Predicted times for one collective over an array of message sizes.

    The result is memoized; the returned array is a copy, safe to
    mutate.  Extra ``kwargs`` (e.g. ``segment_nbytes`` for pipelined
    bcast, ``dest`` for p2p) become part of the cache key.
    """
    global _hits, _misses, _evictions
    tel = _obs.ACTIVE
    start = time.perf_counter() if tel is not None else 0.0
    nb = validate_nbytes_batch(sizes)
    key = (
        model_fingerprint(model),
        operation,
        algorithm,
        root,
        nb.shape,
        nb.tobytes(),
        tuple(sorted(kwargs.items())),
    )
    hit = _cache.get(key)
    if hit is not None:
        _hits += 1
        _cache.move_to_end(key)
        if tel is not None:
            tel.registry.counter(
                "predict_cache_total", help="sweep cache lookups", result="hit"
            ).inc()
        return hit.copy()
    _misses += 1
    result = np.asarray(_compute_sweep(model, operation, algorithm, nb, root, kwargs),
                        dtype=float)
    _cache[key] = result
    if len(_cache) > _CACHE_MAXSIZE:
        _cache.popitem(last=False)
        _evictions += 1
        if tel is not None:
            tel.registry.counter(
                "predict_cache_evictions_total", help="sweep cache LRU evictions"
            ).inc()
    if tel is not None:
        tel.registry.counter(
            "predict_cache_total", help="sweep cache lookups", result="miss"
        ).inc()
        tel.registry.histogram(
            "predict_sweep_batch_size", help="sizes per sweep evaluation",
            lo=0, hi=20,
        ).observe(float(nb.size))
        tel.registry.histogram(
            "predict_sweep_seconds", help="wall latency of one uncached sweep"
        ).observe(time.perf_counter() - start)
    return result.copy()


def predict_one(
    model, operation: str, algorithm: str, nbytes: float, root: int = 0, **kwargs
) -> float:
    """Scalar convenience wrapper over :func:`predict_sweep`."""
    return float(predict_sweep(model, operation, algorithm, nbytes, root=root, **kwargs))


def predict_many(model, requests: Sequence[PredictRequest]) -> np.ndarray:
    """Predicted times for a heterogeneous batch of requests.

    Requests are grouped by (operation, algorithm, root, dest) and each
    group is evaluated as one vectorized sweep; the output array matches
    the input order.
    """
    out = np.empty(len(requests), dtype=float)
    groups: "OrderedDict[tuple, tuple[list[int], list[float]]]" = OrderedDict()
    for idx, req in enumerate(requests):
        key = (req.operation, req.algorithm, req.root, req.dest)
        indices, sizes = groups.setdefault(key, ([], []))
        indices.append(idx)
        sizes.append(req.nbytes)
    for (operation, algorithm, root, dest), (indices, sizes) in groups.items():
        kwargs = {"dest": dest} if operation == "p2p" else {}
        values = predict_sweep(model, operation, algorithm, np.asarray(sizes, dtype=float),
                               root=root, **kwargs)
        out[np.asarray(indices)] = values
    return out
