"""repro.obs.insight — the model-fidelity observatory.

PR 4's telemetry answers *what the process did* (counters, spans,
events).  This package answers the paper's actual question — *is the
model still right, and where is it wrong?* — continuously, from the same
telemetry stream:

* :mod:`repro.obs.insight.residuals` — streaming (prediction,
  measurement) residual monitors with per-model / per-collective /
  per-size-bucket scorecards comparable to
  :mod:`repro.analysis.accuracy`;
* :mod:`repro.obs.insight.detectors` — online escalation detectors that
  re-derive the gather irregularity thresholds ``M1``/``M2`` and the
  escalation value from live transfer telemetry and compare them against
  the offline :func:`repro.estimation.empirical.detect_gather_irregularity`;
* :mod:`repro.obs.insight.alerts` — a declarative alert rules engine
  over metric snapshots with firing/resolved lifecycle and an optional
  :class:`repro.estimation.maintainer.ModelMaintainer` heal hook;
* :mod:`repro.obs.insight.dashboard` — one dependency-free HTML
  dashboard plus a terminal summary (``repro obs dashboard`` /
  ``repro obs watch``).

Everything here is stdlib-only and reads the PR 4 snapshot document, so
it works equally on a live session and on a ``--metrics-out`` file from
a finished run.
"""

from repro.obs.insight.alerts import (
    AlertEngine,
    AlertRule,
    AlertState,
    default_rules,
    heal_hook,
    slo_burn_rules,
)
from repro.obs.insight.dashboard import (
    build_dashboard,
    render_html,
    render_terminal,
    render_top,
    watch,
)
from repro.obs.insight.detectors import (
    Divergence,
    EscalationDetector,
    LiveIrregularity,
)
from repro.obs.insight.residuals import (
    BucketScore,
    ResidualMonitor,
    ResidualRecord,
    Scorecard,
    render_scorecards,
    scorecards,
    size_bucket,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "AlertState",
    "BucketScore",
    "Divergence",
    "EscalationDetector",
    "LiveIrregularity",
    "ResidualMonitor",
    "ResidualRecord",
    "Scorecard",
    "build_dashboard",
    "default_rules",
    "heal_hook",
    "render_html",
    "render_scorecards",
    "render_terminal",
    "render_top",
    "scorecards",
    "size_bucket",
    "slo_burn_rules",
    "watch",
]
