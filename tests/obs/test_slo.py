"""SLO specs, error-budget math, and multi-window burn-rate alerting."""

import json

import pytest

from repro.obs import runtime as _obs
from repro.obs.insight import build_dashboard
from repro.obs.insight.alerts import AlertEngine, AlertRule, slo_burn_rules
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLOSpec,
    bad_fraction,
    burn_rate,
    default_slos,
    evaluate_slos,
    scaled,
    window_counts,
)
from repro.obs.timeline import TimelineStore, WindowTier

TIERS = (WindowTier(1.0, 120), WindowTier(10.0, 120), WindowTier(60.0, 180))

AVAILABILITY = SLOSpec(
    name="toy_availability", objective=0.9, kind="ratio",
    metric="service_requests_total", good_labels=(("outcome", "ok"),),
)


def make_store():
    reg = MetricsRegistry()
    clock = [0.0]
    store = TimelineStore(registry=reg, tiers=TIERS, clock=lambda: clock[0])
    store.tick(0.0)
    return reg, clock, store


def serve_second(reg, clock, store, ok, errors):
    clock[0] += 1.0
    if ok:
        reg.counter("service_requests_total", outcome="ok").inc(ok)
    if errors:
        reg.counter("service_requests_total", outcome="error").inc(errors)
    store.tick(clock[0])


def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective=1.5, kind="ratio", metric="m",
                good_labels=(("a", "b"),))
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective=0.9, kind="nope", metric="m")
    with pytest.raises(ValueError):  # ratio needs exactly one side
        SLOSpec(name="x", objective=0.9, kind="ratio", metric="m")
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective=0.9, kind="ratio", metric="m",
                good_labels=(("a", "b"),), bad_labels=(("c", "d"),))
    with pytest.raises(ValueError):  # latency needs a threshold
        SLOSpec(name="x", objective=0.9, kind="latency", metric="m")


def test_spec_round_trip():
    for spec in default_slos():
        assert SLOSpec.from_dict(spec.to_dict()) == spec


def test_ratio_counts_and_burn():
    reg, clock, store = make_store()
    for _ in range(10):
        serve_second(reg, clock, store, ok=8, errors=2)
    good, total = window_counts(AVAILABILITY, store, 10.0)
    assert (good, total) == (80.0, 100.0)
    assert bad_fraction(AVAILABILITY, store, 10.0) == pytest.approx(0.2)
    # 20% bad against a 10% budget = burning 2x
    assert burn_rate(AVAILABILITY, store, 10.0) == pytest.approx(2.0)


def test_no_traffic_is_not_burning():
    _, _, store = make_store()
    assert bad_fraction(AVAILABILITY, store, 10.0) == 0.0
    assert burn_rate(AVAILABILITY, store, 10.0) == 0.0


def test_latency_slo_counts_good_below_threshold():
    reg, clock, store = make_store()
    hist = reg.histogram("service_request_seconds",
                         buckets=(0.01, 0.1, 0.25, 1.0))
    for i in range(10):
        clock[0] += 1.0
        hist.observe(0.05 if i < 9 else 0.9)  # one slow request
        store.tick(clock[0])
    spec = SLOSpec(name="lat", objective=0.5, kind="latency",
                   metric="service_request_seconds", threshold=0.25)
    good, total = window_counts(spec, store, 10.0)
    assert total == 10.0
    assert 8.5 <= good <= 9.5  # the slow one falls above the threshold


def test_evaluate_slos_statuses():
    reg, clock, store = make_store()
    for _ in range(20):
        serve_second(reg, clock, store, ok=95, errors=5)
    statuses = evaluate_slos([AVAILABILITY], store,
                             fast_window=10.0, slow_window=20.0)
    assert len(statuses) == 1
    status = statuses[0]
    # 5% bad on a 10% budget: half the budget consumed, burning at 0.5x
    assert status.burn_fast == pytest.approx(0.5)
    assert status.burn_slow == pytest.approx(0.5)
    assert status.budget_remaining == pytest.approx(0.5)
    doc = status.to_dict()
    assert doc["slo"]["name"] == "toy_availability"
    json.dumps(doc)  # JSON-ready


def test_scaled_override():
    tight = scaled(AVAILABILITY, objective=0.99)
    assert tight.objective == 0.99
    assert tight.metric == AVAILABILITY.metric


def burn_engine(events):
    """An engine with one toy availability SLO and shrunken windows."""
    rules = slo_burn_rules("toy_availability",
                           fast_windows=(5.0, 10.0),
                           slow_windows=(10.0, 20.0),
                           fast_burn=2.0, slow_burn=1.0)
    engine = AlertEngine(rules=rules, slos=[AVAILABILITY],
                         on_fire=lambda rule, value: events.append(rule.name))
    return engine


def test_burn_rate_fires_once_per_transition_and_recovers():
    """The acceptance scenario: injected errors exhaust the toy SLO's
    fast window, the burn rule fires exactly once per transition, and
    resolves when healthy traffic refills the budget."""
    reg, clock, store = make_store()
    fired = []
    engine = burn_engine(fired)
    fast = "slo_toy_availability_burn_fast"

    # Healthy traffic: nothing fires.
    for _ in range(10):
        serve_second(reg, clock, store, ok=10, errors=0)
        engine.evaluate(reg.snapshot(), timeline=store)
    assert fired == []
    assert engine.firing() == []

    # Inject a 50% error rate: 5x the 10% budget > both thresholds.
    for _ in range(10):
        serve_second(reg, clock, store, ok=5, errors=5)
        engine.evaluate(reg.snapshot(), timeline=store)
    assert fast in engine.firing()
    # once per transition, not once per evaluation
    assert fired.count(fast) == 1

    # Healthy again: the windows drain and every burn rule resolves.
    for _ in range(25):
        serve_second(reg, clock, store, ok=10, errors=0)
        engine.evaluate(reg.snapshot(), timeline=store)
    assert engine.firing() == []

    # A second outage fires the same rule exactly once more.
    for _ in range(10):
        serve_second(reg, clock, store, ok=5, errors=5)
        engine.evaluate(reg.snapshot(), timeline=store)
    assert fired.count(fast) == 2


def test_multi_window_needs_both_windows_hot():
    """A short error blip heats the 5s window but not the 10s one: the
    min() of the two burn rates stays below the paging threshold."""
    reg, clock, store = make_store()
    engine = burn_engine([])
    for _ in range(20):
        serve_second(reg, clock, store, ok=10, errors=0)
    serve_second(reg, clock, store, ok=0, errors=10)  # 1s of pure errors
    states = {s.rule.name: s
              for s in engine.evaluate(reg.snapshot(), timeline=store)}
    fast = states["slo_toy_availability_burn_fast"]
    # fast window burn alone would be 10/5s = 20% bad = 2x.. but the
    # 10s window dilutes it below the 2x threshold
    assert not fast.firing
    assert fast.value < 2.0


def test_engine_state_round_trips_through_dict():
    reg, clock, store = make_store()
    engine = burn_engine([])
    for _ in range(10):
        serve_second(reg, clock, store, ok=5, errors=5)
        engine.evaluate(reg.snapshot(), timeline=store)
    assert engine.firing()  # mid-incident

    doc = json.loads(json.dumps(engine.to_dict()))  # through JSON
    resumed = AlertEngine.from_dict(doc)
    assert resumed.firing() == engine.firing()
    assert [r.name for r in resumed.rules] == [r.name for r in engine.rules]
    assert set(resumed.slos) == {"toy_availability"}

    # Still firing on the next evaluation: no re-fire transition events.
    fired = []
    resumed.on_fire = lambda rule, value: fired.append(rule.name)
    serve_second(reg, clock, store, ok=5, errors=5)
    resumed.evaluate(reg.snapshot(), timeline=store)
    assert fired == []


def test_burn_rules_quiet_without_timeline():
    engine = burn_engine([])
    reg = MetricsRegistry()
    reg.counter("service_requests_total", outcome="error").inc(100)
    states = engine.evaluate(reg.snapshot())  # no timeline passed
    assert all(not s.firing for s in states)
    assert all(s.value == 0.0 for s in states)


def test_metric_absent_rule_lifecycle():
    rule = AlertRule(name="gone", kind="metric_absent",
                     metric="service_requests_total",
                     threshold=3.0, op=">=", level="error")
    engine = AlertEngine(rules=[rule])
    reg = MetricsRegistry()

    # Never reported: never stale (campaign-only processes stay quiet).
    for _ in range(5):
        (state,) = engine.evaluate(reg.snapshot())
        assert state.value == 0.0 and not state.firing

    counter = reg.counter("service_requests_total", outcome="ok")
    counter.inc()
    (state,) = engine.evaluate(reg.snapshot())
    assert state.value == 0.0

    # Frozen total: the streak builds up and fires at 3.
    for expected in (1.0, 2.0):
        (state,) = engine.evaluate(reg.snapshot())
        assert state.value == expected and not state.firing
    (state,) = engine.evaluate(reg.snapshot())
    assert state.value == 3.0 and state.firing

    # New activity resets the streak and resolves.
    counter.inc()
    (state,) = engine.evaluate(reg.snapshot())
    assert state.value == 0.0 and not state.firing


def test_dashboard_json_carries_slo_state():
    """The dashboard data dict (what `repro obs dashboard --format json`
    emits) round-trips burn state: same firing set, same budget."""
    reg, clock, store = make_store()
    for _ in range(10):
        serve_second(reg, clock, store, ok=5, errors=5)
    rules = slo_burn_rules("toy_availability",
                           fast_windows=(5.0, 10.0),
                           slow_windows=(10.0, 20.0),
                           fast_burn=2.0, slow_burn=1.0)
    engine = AlertEngine(rules=rules, slos=[AVAILABILITY])
    doc = {"format": "repro-telemetry", "version": 1, "enabled": True,
           "metrics": reg.snapshot(), "spans": [], "events": [],
           "dropped": {}, "timeline": store.to_dict()}
    data = build_dashboard(doc, engine=engine)
    data = json.loads(json.dumps(data))  # the --format json path
    firing = [a["rule"]["name"] for a in data["alerts"] if a["firing"]]
    assert "slo_toy_availability_burn_fast" in firing
    (status,) = [s for s in data["slos"]
                 if s["slo"]["name"] == "toy_availability"]
    assert status["budget_remaining"] == 0.0
    assert status["burn_fast"] > 2.0


@pytest.fixture()
def telemetry():
    tel = _obs.enable(fresh=True)
    yield tel
    _obs.disable()


def test_transitions_are_narrated_once(telemetry):
    reg, clock, store = make_store()
    engine = burn_engine([])
    for _ in range(10):
        serve_second(reg, clock, store, ok=0, errors=10)
        engine.evaluate(reg.snapshot(), timeline=store)
    assert telemetry.events.count("alert_firing") == len(engine.firing())
    fired = telemetry.registry.value(
        "alerts_fired_total", rule="slo_toy_availability_burn_fast")
    assert fired == 1.0
