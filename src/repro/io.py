"""JSON (de)serialization of models, ground truths and irregularities.

Estimation is expensive (the paper spends a section minimizing its cost),
so estimated models are worth persisting: estimate once at cluster-bringup,
reload at application start.

The current format (schema version 2) is one unified envelope::

    {"model": "ExtendedLMOModel", "schema_version": 2, "params": {...}}

where ``params`` is exactly what the type's own ``to_dict`` produces and
``from_dict`` consumes — the envelope carries no knowledge of any type's
internals.  Legacy version-1 documents (``{"format": "repro-model",
"version": 1, "payload": {...}}``) still load, with the process-wide
consolidated ``DeprecationWarning`` of :mod:`repro.api.compat`; new
documents are always written as version 2.

Example
-------
>>> from repro.cluster import GroundTruth
>>> from repro.models import ExtendedLMOModel
>>> from repro.io import dumps, loads
>>> model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(3))
>>> loads(dumps(model)).p2p_time(0, 1, 1024) == model.p2p_time(0, 1, 1024)
True
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

import numpy as np

from repro.cluster.params import GroundTruth
from repro.cluster.spec import ClusterSpec, NodeType
from repro.models.hockney import HeterogeneousHockneyModel, HockneyModel
from repro.models.loggp import LogGPModel
from repro.models.logp import LogPModel
from repro.models.lmo import LMOModel
from repro.models.lmo_extended import ExtendedLMOModel, GatherIrregularity
from repro.models.plogp import PiecewiseLinear, PLogPModel

__all__ = [
    "atomic_save",
    "atomic_write_text",
    "dumps",
    "loads",
    "save",
    "load",
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
]

#: Legacy envelope version, still readable.
FORMAT_VERSION = 1
#: Current envelope version, always written.
SCHEMA_VERSION = 2

#: Every serializable type, keyed by the name stored in the envelope.
_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ClusterSpec,
        GroundTruth,
        ExtendedLMOModel,
        LMOModel,
        GatherIrregularity,
        HeterogeneousHockneyModel,
        HockneyModel,
        LogGPModel,
        LogPModel,
        PLogPModel,
        PiecewiseLinear,
    )
}


# -- public API -----------------------------------------------------------------
def dumps(obj: Any, indent: int = 2) -> str:
    """Serialize a model / ground truth / irregularity to a JSON string."""
    name = type(obj).__name__
    if name not in _TYPES or not isinstance(obj, _TYPES[name]):
        raise TypeError(f"cannot serialize {name}")
    return json.dumps(
        {"model": name, "schema_version": SCHEMA_VERSION, "params": obj.to_dict()},
        indent=indent,
    )


def loads(text: str) -> Any:
    """Inverse of :func:`dumps` (validates the envelope).

    Accepts both the current schema-v2 envelope and legacy v1 documents
    (the latter with a ``DeprecationWarning``).
    """
    doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError("not a repro-model document")
    if "schema_version" in doc:
        return _loads_v2(doc)
    return _loads_legacy(doc)


def save(obj: Any, path: str) -> None:
    """Serialize to a file."""
    with open(path, "w") as handle:
        handle.write(dumps(obj))


def load(path: str) -> Any:
    """Deserialize from a file."""
    with open(path) as handle:
        return loads(handle.read())


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via write-temp-fsync-rename.

    A crash at any point leaves either the old file or the complete new
    one, never a torn write — the discipline the campaign journal uses
    for its header and the API uses for model snapshots
    (:func:`atomic_save`).
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_save(obj: Any, path: str) -> None:
    """Like :func:`save`, but crash-safe (write-temp-then-rename)."""
    atomic_write_text(path, dumps(obj))


# -- schema v2 ------------------------------------------------------------------
def _loads_v2(doc: dict) -> Any:
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {version!r}")
    name = doc.get("model")
    cls = _TYPES.get(name)
    if cls is None:
        raise ValueError(f"unknown document type {name!r}")
    params = doc.get("params")
    if not isinstance(params, dict):
        raise ValueError("schema-v2 document has no params object")
    return cls.from_dict(params)


# -- legacy v1 ------------------------------------------------------------------
def _loads_legacy(doc: dict) -> Any:
    if doc.get("format") != "repro-model":
        raise ValueError("not a repro-model document")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {doc.get('version')!r}")
    from repro.api.compat import warn_legacy  # local: io must not import api eagerly

    warn_legacy("legacy version-1 repro-model document (re-save it to "
                "upgrade to schema version 2)", stacklevel=4)
    return _decode_legacy(doc["payload"])


def _unmatrix(values: list) -> np.ndarray:
    def decode(x):
        return np.inf if x == "inf" else float(x)

    if values and isinstance(values[0], list):
        return np.array([[decode(x) for x in row] for row in values])
    return np.array([decode(x) for x in values])


def _decode_legacy(doc: dict) -> Any:
    """Decoder of the v1 'type'-tagged payloads, kept verbatim for old files."""
    kind = doc.get("type")
    if kind == "ClusterSpec":
        return ClusterSpec(
            nodes=tuple(NodeType(**node) for node in doc["nodes"]),
            name=doc["name"],
        )
    if kind == "GroundTruth":
        return GroundTruth(C=_unmatrix(doc["C"]), t=_unmatrix(doc["t"]),
                           L=_unmatrix(doc["L"]), beta=_unmatrix(doc["beta"]))
    if kind == "ExtendedLMOModel":
        irregularity = None
        if "gather_irregularity" in doc:
            irregularity = _decode_legacy(doc["gather_irregularity"])
        return ExtendedLMOModel(C=_unmatrix(doc["C"]), t=_unmatrix(doc["t"]),
                                L=_unmatrix(doc["L"]), beta=_unmatrix(doc["beta"]),
                                gather_irregularity=irregularity)
    if kind == "LMOModel":
        return LMOModel(C=_unmatrix(doc["C"]), t=_unmatrix(doc["t"]),
                        beta=_unmatrix(doc["beta"]))
    if kind == "GatherIrregularity":
        return GatherIrregularity(m1=doc["m1"], m2=doc["m2"],
                                  escalation_value=doc["escalation_value"],
                                  p_at_m1=doc["p_at_m1"], p_at_m2=doc["p_at_m2"])
    if kind == "HeterogeneousHockneyModel":
        return HeterogeneousHockneyModel(alpha=_unmatrix(doc["alpha"]),
                                         beta=_unmatrix(doc["beta"]))
    if kind == "HockneyModel":
        return HockneyModel(alpha=doc["alpha"], beta=doc["beta"], n=doc["n"])
    if kind == "LogGPModel":
        return LogGPModel(L=doc["L"], o=doc["o"], g=doc["g"], G=doc["G"], P=doc["P"])
    if kind == "LogPModel":
        return LogPModel(L=doc["L"], o=doc["o"], g=doc["g"], P=doc["P"],
                         packet_bytes=doc["packet_bytes"])
    if kind == "PLogPModel":
        return PLogPModel(L=doc["L"], P=doc["P"], o_s=_decode_legacy(doc["o_s"]),
                          o_r=_decode_legacy(doc["o_r"]), g=_decode_legacy(doc["g"]))
    if kind == "PiecewiseLinear":
        return PiecewiseLinear(xs=tuple(doc["xs"]), ys=tuple(doc["ys"]))
    raise ValueError(f"unknown document type {kind!r}")
