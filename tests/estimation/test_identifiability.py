"""The paper's central theoretical claim, as tests.

Section I: "the parameters of such models cannot be estimated from only
the point-to-point experiments".  Concretely: roundtrips observe only the
sums ``C_i + L_ij + C_j`` and ``t_i + 1/beta_ij + t_j`` — many different
(C, L) splits produce *identical* point-to-point times but *different*
collective predictions.  The one-to-two experiments break the degeneracy.
"""

import numpy as np
import pytest

from repro.cluster import GroundTruth
from repro.estimation import AnalyticEngine, estimate_extended_lmo
from repro.estimation.experiments import one_to_two, roundtrip
from repro.models import ExtendedLMOModel, predict_linear_scatter

KB = 1024


def shifted_split(gt: GroundTruth, delta: float) -> ExtendedLMOModel:
    """Move ``delta`` seconds from every L_ij into the C's (half each).

    Keeps every sum ``C_i + L_ij + C_j`` — hence every p2p time — intact.
    """
    C = gt.C + delta / 2.0
    L = gt.L - delta
    np.fill_diagonal(L, 0.0)
    return ExtendedLMOModel(C=C, t=gt.t.copy(), L=L, beta=gt.beta.copy())


@pytest.fixture()
def ground_truth():
    return GroundTruth.random(6, seed=70, l_range=(40e-6, 60e-6))


def test_different_splits_have_identical_p2p_times(ground_truth):
    original = ExtendedLMOModel.from_ground_truth(ground_truth)
    shifted = shifted_split(ground_truth, delta=20e-6)
    for i, j in [(0, 1), (2, 5), (3, 4)]:
        for m in (0, KB, 100 * KB):
            assert shifted.p2p_time(i, j, m) == pytest.approx(
                original.p2p_time(i, j, m), rel=1e-12
            )


def test_identical_p2p_but_different_collective_predictions(ground_truth):
    """The degenerate splits disagree about collectives — so a p2p-only
    estimator cannot predict collectives, no matter how it resolves the
    degeneracy."""
    original = ExtendedLMOModel.from_ground_truth(ground_truth)
    shifted = shifted_split(ground_truth, delta=20e-6)
    m = 16 * KB
    t_original = predict_linear_scatter(original, m)
    t_shifted = predict_linear_scatter(shifted, m)
    # (n-1) serialized C_r slots amplify the split difference.
    assert abs(t_shifted - t_original) > 3 * 10e-6


def test_roundtrips_cannot_distinguish_the_splits(ground_truth):
    """Both splits produce bit-identical roundtrip 'measurements'."""
    engines = [
        AnalyticEngine(GroundTruth(C=model.C, t=model.t, L=model.L, beta=model.beta))
        for model in (
            ExtendedLMOModel.from_ground_truth(ground_truth),
            shifted_split(ground_truth, delta=20e-6),
        )
    ]
    for i, j in [(0, 1), (2, 4)]:
        for m in (0, 32 * KB):
            exp = roundtrip(i, j, m)
            assert engines[0].run(exp) == pytest.approx(engines[1].run(exp), rel=1e-12)


def test_one_to_two_distinguishes_the_splits(ground_truth):
    """The collective experiment separates the C's: the two splits give
    different one-to-two times — identifiability restored."""
    original = GroundTruth.random(6, seed=70, l_range=(40e-6, 60e-6))
    shifted_model = shifted_split(original, delta=20e-6)
    shifted_gt = GroundTruth(C=shifted_model.C, t=shifted_model.t,
                             L=shifted_model.L, beta=shifted_model.beta)
    exp = one_to_two(0, 1, 2, 0, 0)
    t_original = AnalyticEngine(original).run(exp)
    t_shifted = AnalyticEngine(shifted_gt).run(exp)
    # T_ijk(0) = 4 C_i + max(...): the extra C_i shows up.
    assert abs(t_shifted - t_original) > 5e-6


def test_estimator_recovers_whichever_split_is_real(ground_truth):
    """Run the full estimation against both 'hardwares': it identifies
    each one's true split, not just the sums."""
    shifted_model = shifted_split(ground_truth, delta=20e-6)
    shifted_gt = GroundTruth(C=shifted_model.C, t=shifted_model.t,
                             L=shifted_model.L, beta=shifted_model.beta)
    for gt in (ground_truth, shifted_gt):
        estimated = estimate_extended_lmo(AnalyticEngine(gt), reps=1).model
        assert np.allclose(estimated.C, gt.C, rtol=1e-9, atol=1e-15)
        assert np.allclose(estimated.L, gt.L, rtol=1e-9, atol=1e-15)
