"""Circuit breaker state machine: trip, cooldown, half-open probes, blame."""

import pytest

from repro.estimation.breakers import (
    BreakerBoard,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)

pytestmark = pytest.mark.campaign

POLICY = BreakerPolicy(failure_threshold=2, cooldown_units=3)


def test_policy_validation():
    with pytest.raises(ValueError, match="failure_threshold"):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError, match="cooldown_units"):
        BreakerPolicy(cooldown_units=0)


def test_policy_dict_roundtrip():
    assert BreakerPolicy.from_dict(POLICY.to_dict()) == POLICY


def test_breaker_trips_after_threshold():
    breaker = CircuitBreaker(0, POLICY)
    breaker.record_failure(0)
    assert breaker.state == BreakerState.CLOSED
    breaker.record_failure(1)
    assert breaker.state == BreakerState.OPEN
    assert breaker.trips == 1


def test_success_resets_consecutive_failures():
    breaker = CircuitBreaker(0, POLICY)
    breaker.record_failure(0)
    breaker.record_success()
    breaker.record_failure(1)
    assert breaker.state == BreakerState.CLOSED


def test_open_blocks_until_cooldown_then_half_open():
    breaker = CircuitBreaker(0, POLICY)
    breaker.record_failure(0)
    breaker.record_failure(1)  # trips at counter 1; reopen at 1 + 3 = 4
    assert not breaker.allows(2)
    assert not breaker.allows(3)
    assert breaker.allows(4)
    assert breaker.state == BreakerState.HALF_OPEN


def test_half_open_probe_success_closes():
    breaker = CircuitBreaker(0, POLICY)
    breaker.record_failure(0)
    breaker.record_failure(1)
    assert breaker.allows(4)
    breaker.record_success()
    assert breaker.state == BreakerState.CLOSED
    assert breaker.consecutive_failures == 0


def test_half_open_probe_failure_retrips_immediately():
    breaker = CircuitBreaker(0, POLICY)
    breaker.record_failure(0)
    breaker.record_failure(1)
    assert breaker.allows(4)
    breaker.record_failure(4)  # one probe failure suffices, no threshold
    assert breaker.state == BreakerState.OPEN
    assert breaker.trips == 2
    assert not breaker.allows(5)
    assert breaker.allows(7)  # 4 + cooldown 3


def test_board_validation_and_allows():
    with pytest.raises(ValueError, match="n >= 1"):
        BreakerBoard(0)
    board = BreakerBoard(3, policy=POLICY)
    assert board.allows([0, 1, 2])
    board.record_failure([1])
    board.advance()
    board.record_failure([1])
    board.advance()
    assert not board.allows([0, 1])  # one open breaker vetoes the unit
    assert board.allows([0, 2])
    assert board.open_nodes() == [1]


def test_board_blames_only_half_open_suspects():
    """A failed probe unit must not charge closed-breaker bystanders."""
    board = BreakerBoard(3, policy=POLICY)
    # Open node 2's breaker.
    for _ in range(2):
        board.record_failure([2])
        board.advance()
    assert board.open_nodes() == [2]
    # Cool down, then fail the re-admission probe shared with node 0.
    for _ in range(3):
        board.advance()
    assert board.allows([0, 2])  # node 2 goes half-open here
    board.record_failure([0, 2])
    assert board.open_nodes() == [2]
    assert board.breakers[0].total_failures == 0
    assert board.breakers[0].state == BreakerState.CLOSED


def test_board_blames_everyone_when_no_suspect():
    board = BreakerBoard(3, policy=POLICY)
    board.record_failure([0, 1])
    assert board.breakers[0].total_failures == 1
    assert board.breakers[1].total_failures == 1
    assert board.breakers[2].total_failures == 0


def test_board_counts_and_reports():
    board = BreakerBoard(3, policy=POLICY)
    for _ in range(2):
        board.record_failure([1])
        board.advance()
    counts = board.state_counts()
    assert counts == {"closed": 2, "open": 1, "half_open": 0}
    doc = board.to_dict()
    assert doc["counts"] == counts
    assert doc["nodes"][1]["state"] == BreakerState.OPEN
    assert "node 1: open" in board.summary()


def test_event_replay_reconstructs_identical_board():
    """Applying the same outcome sequence twice yields identical state —
    the invariant campaign resume relies on."""
    events = [("failed", [0, 1]), ("done", [1, 2]), ("failed", [0, 2]),
              ("failed", [0, 1]), ("skipped", [0]), ("skipped", [0]),
              ("skipped", [0]), ("failed", [0, 2]), ("done", [1, 2])]

    def play():
        board = BreakerBoard(3, policy=POLICY)
        for kind, nodes in events:
            board.allows(nodes)
            if kind == "done":
                board.record_success(nodes)
            elif kind == "failed":
                board.record_failure(nodes)
            board.advance()
        return board

    assert play().to_dict() == play().to_dict()
