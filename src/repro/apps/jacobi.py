"""1-D Jacobi iteration with halo exchange.

The classic nearest-neighbour stencil: each rank owns a strip of the
domain, exchanges one-cell halos with its neighbours every iteration,
updates its interior (real numpy arithmetic, simulated CPU time), and
periodically agrees on the global residual with an allreduce — the
communication pattern underneath most structured-grid HPC codes.

Solves ``u'' = 0`` with fixed boundary values, so the converged solution
is the straight line between the boundaries — easy to verify exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.machine import SimulatedCluster
from repro.mpi.collectives import advanced
from repro.mpi.comm import RankComm
from repro.mpi.runtime import run_ranks

__all__ = ["JacobiResult", "run_jacobi"]

FLOAT_BYTES = 8
HALO_TAG = 101


@dataclass
class JacobiResult:
    """Outcome of a Jacobi run."""

    solution: np.ndarray
    makespan: float
    iterations: int
    residual: float

    def max_error_vs_line(self, left: float, right: float) -> float:
        """Deviation from the analytic solution (a straight line)."""
        npoints = len(self.solution)
        exact = np.linspace(left, right, npoints + 2)[1:-1]
        return float(np.abs(self.solution - exact).max())


def run_jacobi(
    cluster: SimulatedCluster,
    npoints: int,
    iterations: int,
    left: float = 0.0,
    right: float = 1.0,
    cell_counts: Optional[Sequence[int]] = None,
    flop_time: float = 1e-9,
    residual_every: int = 10,
) -> JacobiResult:
    """Run ``iterations`` Jacobi sweeps over ``npoints`` interior cells.

    Parameters
    ----------
    cell_counts:
        Cells per rank (defaults to an even split).  Ranks with zero
        cells are not supported (every rank is somebody's neighbour).
    residual_every:
        Global-residual allreduce cadence (the typical convergence-check
        pattern; also what keeps ranks loosely synchronized).
    """
    n = cluster.n
    if cell_counts is None:
        base = npoints // n
        cell_counts = [base + (1 if r < npoints - base * n else 0) for r in range(n)]
    cell_counts = list(cell_counts)
    if sum(cell_counts) != npoints or any(c < 1 for c in cell_counts):
        raise ValueError(f"cell_counts must be >= 1 each and sum to {npoints}")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    starts = np.concatenate([[0], np.cumsum(cell_counts)]).astype(int)
    strips: dict[int, np.ndarray] = {}
    residuals: dict[int, float] = {}

    def factory(rank: int):
        def program(comm: RankComm):
            local = np.zeros(cell_counts[rank])
            halo_left = left if rank == 0 else 0.0
            halo_right = right if rank == n - 1 else 0.0
            for it in range(iterations):
                # -- halo exchange with neighbours (nonblocking pairs) --
                reqs = []
                if rank > 0:
                    reqs.append(comm.isend(rank - 1, payload=float(local[0]),
                                           nbytes=FLOAT_BYTES, tag=HALO_TAG + it % 2))
                    reqs.append(("L", comm.irecv(rank - 1, tag=HALO_TAG + it % 2)))
                if rank < n - 1:
                    reqs.append(comm.isend(rank + 1, payload=float(local[-1]),
                                           nbytes=FLOAT_BYTES, tag=HALO_TAG + it % 2))
                    reqs.append(("R", comm.irecv(rank + 1, tag=HALO_TAG + it % 2)))
                for item in reqs:
                    if isinstance(item, tuple):
                        side, req = item
                        env = yield from comm.wait(req)
                        if side == "L":
                            halo_left = env.payload
                        else:
                            halo_right = env.payload
                    else:
                        yield item.sent
                # -- local sweep: real numpy, simulated CPU time --------
                padded = np.concatenate([[halo_left], local, [halo_right]])
                local = 0.5 * (padded[:-2] + padded[2:])
                flops = 2.0 * len(local)
                yield from cluster.cpu[rank].hold(
                    cluster.sim, cluster.noisy(flops * flop_time)
                )
                # -- periodic global residual ----------------------------
                if (it + 1) % residual_every == 0 or it == iterations - 1:
                    local_res = float(np.abs(np.diff(padded, 2)).max()) if len(padded) > 2 else 0.0
                    global_res = yield from advanced.reduce_bcast_allreduce(
                        comm, FLOAT_BYTES, value=local_res,
                        combine=lambda a, b: max(a or 0.0, b or 0.0),
                    )
                    residuals[rank] = float(global_res)
            strips[rank] = local
            return None

        return program

    results = run_ranks(cluster, {rank: factory(rank) for rank in range(n)})
    solution = np.concatenate([strips[rank] for rank in range(n)])
    assert len(solution) == npoints
    del starts
    return JacobiResult(
        solution=solution,
        makespan=max(res.finish for res in results.values()),
        iterations=iterations,
        residual=max(residuals.values()) if residuals else float("nan"),
    )
