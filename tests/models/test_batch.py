"""Property tests: the vectorized batch path IS the scalar path.

``p2p_time`` is a thin wrapper over ``p2p_time_batch``, and every sweep
formula accumulates in the same order as its scalar counterpart, so
equality here is exact (``==``), not approximate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GroundTruth, SimulatedCluster, table1_cluster
from repro.models import (
    ExtendedLMOModel,
    GatherIrregularity,
    GatherPrediction,
    HeterogeneousHockneyModel,
    HockneyModel,
    LogGPModel,
    LogPModel,
    PiecewiseLinear,
    PLogPModel,
    predict_binomial_gather,
    predict_binomial_gather_sweep,
    predict_binomial_scatter,
    predict_binomial_scatter_sweep,
    predict_linear_gather,
    predict_linear_gather_sweep,
    predict_linear_scatter,
    predict_linear_scatter_sweep,
)
from repro.models.base import validate_nbytes, validate_nbytes_batch
from repro.models.collectives.formulas_ext import (
    _PREDICTORS,
    predict_collective,
    predict_collective_sweep,
)

KB = 1024


def all_models(n=6, seed=0, irregularity=True):
    gt = GroundTruth.random(n, seed=seed)
    f = PiecewiseLinear((0.0, 1024.0, 65536.0), (4e-5, 1e-4, 6e-4))
    irr = (
        GatherIrregularity(m1=4 * KB, m2=64 * KB, escalation_value=0.25)
        if irregularity else None
    )
    return [
        HockneyModel(alpha=1e-4, beta=8e-8, n=n),
        HeterogeneousHockneyModel.from_ground_truth(gt),
        LogPModel(L=3e-5, o=1e-5, g=1.2e-5, P=n, packet_bytes=1500),
        LogGPModel(L=3e-5, o=1e-5, g=1.2e-5, G=9e-9, P=n),
        PLogPModel(L=3.5e-5, o_s=f, o_r=f, g=f, P=n),
        ExtendedLMOModel.from_ground_truth(gt, irr),
        ExtendedLMOModel.from_ground_truth(gt).to_original_lmo(),
    ]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 100),
    sizes=st.lists(
        st.floats(0.0, 2.0**20, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=12,
    ),
    i=st.integers(0, 5),
    j=st.integers(0, 5),
)
def test_p2p_batch_matches_scalar_elementwise(seed, sizes, i, j):
    if i == j:
        j = (j + 1) % 6
    nb = np.asarray(sizes)
    for model in all_models(n=6, seed=seed):
        batch = model.p2p_time_batch(i, j, nb)
        scalar = np.array([model.p2p_time(i, j, m) for m in sizes])
        assert batch.shape == nb.shape
        assert np.array_equal(batch, scalar), type(model).__name__


def test_p2p_batch_broadcasts_ranks():
    model = all_models()[-2]  # extended LMO
    i = np.array([0, 1, 2])
    nb = np.array([1024.0, 2048.0, 4096.0])
    batch = model.p2p_time_batch(i, 5, nb)
    expected = np.array([model.p2p_time(k, 5, m) for k, m in zip(i, nb)])
    assert np.array_equal(batch, expected)


def test_p2p_batch_zero_d_returns_scalar_shape():
    for model in all_models():
        out = model.p2p_time_batch(0, 1, 1024.0)
        assert np.shape(out) == ()
        assert float(out) == model.p2p_time(0, 1, 1024.0)


@pytest.mark.parametrize("sweep,scalar", [
    (predict_linear_scatter_sweep, predict_linear_scatter),
    (predict_binomial_scatter_sweep, predict_binomial_scatter),
    (predict_binomial_gather_sweep, predict_binomial_gather),
])
def test_core_sweeps_match_scalar(sweep, scalar):
    sizes = np.array([0.0, 1.0, 512.0, 4096.0, 65536.0, 300000.0])
    for model in all_models(seed=3):
        batch = sweep(model, sizes)
        loop = np.array([float(scalar(model, m)) for m in sizes])
        assert np.array_equal(batch, loop), type(model).__name__


def test_gather_sweep_matches_scalar_expected():
    sizes = np.array([0.0, 512.0, 8 * KB, 32 * KB, 100 * KB])
    for model in all_models(seed=4):
        batch = predict_linear_gather_sweep(model, sizes)
        loop = []
        for m in sizes:
            value = predict_linear_gather(model, m)
            loop.append(value.expected if isinstance(value, GatherPrediction)
                        else float(value))
        assert np.array_equal(batch, np.array(loop)), type(model).__name__


def test_menu_sweeps_match_scalar():
    # Power-of-two n so recursive doubling is in play.
    model = all_models(n=8, seed=5)[-2]
    sizes = np.array([1.0, 4096.0, 65536.0, 262144.0])
    for (operation, algorithm) in sorted(_PREDICTORS):
        batch = predict_collective_sweep(model, operation, algorithm, sizes)
        loop = np.array([
            float(predict_collective(model, operation, algorithm, m))
            for m in sizes
        ])
        assert np.array_equal(batch, loop), (operation, algorithm)


def test_batch_matches_scalar_on_fault_degraded_cluster():
    """Models rebuilt from a degraded cluster (PR 1 fault injection) keep
    the batch/scalar equivalence."""
    cluster = SimulatedCluster(table1_cluster(), seed=7)
    cluster.degrade_node(3, 4.0)
    cluster.degrade_node(11, 2.5)
    model = ExtendedLMOModel.from_ground_truth(cluster.ground_truth)
    sizes = np.array([0.0, 100.0, 8 * KB, 64 * KB, 1 << 20])
    batch = model.p2p_time_batch(3, 11, sizes)
    loop = np.array([model.p2p_time(3, 11, m) for m in sizes])
    assert np.array_equal(batch, loop)
    scatter = predict_linear_scatter_sweep(model, sizes)
    scatter_loop = np.array([float(predict_linear_scatter(model, m)) for m in sizes])
    assert np.array_equal(scatter, scatter_loop)


# -- validator hardening --------------------------------------------------------
@pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
def test_scalar_validator_rejects_non_finite(bad):
    with pytest.raises(ValueError, match="non-finite"):
        validate_nbytes(bad)


def test_scalar_validator_rejects_negative():
    with pytest.raises(ValueError, match="negative"):
        validate_nbytes(-1.0)


@pytest.mark.parametrize("bad", [
    [1.0, float("nan")],
    [float("inf"), 2.0],
    np.array([0.0, -np.inf]),
])
def test_batch_validator_rejects_non_finite(bad):
    with pytest.raises(ValueError, match="non-finite"):
        validate_nbytes_batch(bad)


def test_batch_validator_rejects_negative():
    with pytest.raises(ValueError, match="negative"):
        validate_nbytes_batch([10.0, -2.0])


@pytest.mark.parametrize("bad", [float("nan"), float("inf")])
def test_models_reject_non_finite_everywhere(bad):
    for model in all_models():
        with pytest.raises(ValueError, match="non-finite"):
            model.p2p_time(0, 1, bad)
        with pytest.raises(ValueError, match="non-finite"):
            model.p2p_time_batch(0, 1, np.array([1.0, bad]))
