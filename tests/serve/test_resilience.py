"""The resilience invariants, asserted deterministically.

Through a seeded chaos proxy: every *completed* reply is bit-identical
to the in-process facade, retried side-effectful verbs execute at most
once, and the server never wedges however badly the wire behaves.
Around a hard kill: a supervised restart recovers every registered
model from the fsynced snapshot (tested at the registry level here;
process-level in test_supervisor.py).
"""

import json

import pytest

from repro import api
from repro.api import errors
from repro.serve.chaos import ChaosConfig, ChaosProxy
from repro.serve.client import ResilientClient, RetryPolicy
from repro.serve.runner import ServerThread
from repro.serve.server import ModelRegistry, ServeConfig

from tests.serve.conftest import KB, make_model

pytestmark = pytest.mark.resilience


@pytest.fixture()
def host():
    config = ServeConfig(port=0, models={"lmo": make_model()}, workers=2,
                         telemetry=False)
    with ServerThread(config) as server:
        yield server


def _resilient(proxy_or_host, retries=8, **kwargs):
    if isinstance(proxy_or_host, ChaosProxy):
        hostname, port = proxy_or_host.host, proxy_or_host.port
    else:
        hostname, port = proxy_or_host.address
    return ResilientClient(
        host=hostname, port=port, timeout=2.0,
        retry=RetryPolicy(max_retries=retries, base_delay=0.01,
                          max_delay=0.2, seed=7),
        **kwargs,
    )


# -- invariant 1: completed replies are bit-identical under chaos -----------------
def test_replies_through_chaos_are_bit_identical_to_the_facade(host):
    model = make_model()
    hostname, port = host.address
    with ChaosProxy(hostname, port, ChaosConfig(seed=42)) as proxy:
        with _resilient(proxy) as client:
            for i in range(150):
                nbytes = float(KB * (i % 64 + 1))
                wire = client.predict("lmo", "scatter", "linear", nbytes)
                local = api.predict(model, "scatter", "linear", nbytes)
                assert wire == local, f"divergence at call {i}"
        assert proxy.stats.faults > 0, "chaos profile injected nothing"


# -- invariant 2: no duplicate side effects under retry ---------------------------
def test_idempotent_retry_never_double_registers(host):
    """Two requests with one idempotency key: the second replays the
    recorded outcome instead of re-running the estimation."""
    with host.client() as client:
        params = {"model": "lmo", "nodes": 4, "seed": 3, "reps": 1,
                  "quick": True, "register_as": "est-a"}
        first = client.call("estimate", params, idempotency_key="k-1")
        replay = client.call("estimate", params, idempotency_key="k-1")
        assert replay == first
        fresh = client.call("estimate", params, idempotency_key="k-2")
        assert fresh["registered_as"] == "est-a"
        models = client.health()["models"]
    assert models.count("est-a") == 1


def test_estimates_through_chaos_register_exactly_once_each(host):
    hostname, port = host.address
    # Aggressive resets force retries on a side-effectful verb.
    config = ChaosConfig(seed=5, reset_rate=0.3, partial_rate=0.1,
                         corrupt_rate=0.1, stall_rate=0.0, delay_rate=0.0)
    names = [f"chaos-est-{i}" for i in range(6)]
    with ChaosProxy(hostname, port, config) as proxy:
        with _resilient(proxy, retries=20) as client:
            for i, name in enumerate(names):
                reply = client.call("estimate", {
                    "model": "lmo", "nodes": 4, "seed": i, "reps": 1,
                    "quick": True, "register_as": name,
                })
                assert reply["registered_as"] == name
        assert proxy.stats.faults > 0
    with host.client() as direct:
        models = direct.health()["models"]
    for name in names:
        assert models.count(name) == 1


# -- invariant 3: the server never wedges -----------------------------------------
def test_server_stays_healthy_after_a_fault_storm(host):
    hostname, port = host.address
    storm = ChaosConfig(seed=13, reset_rate=0.25, partial_rate=0.25,
                        corrupt_rate=0.25, stall_rate=0.0, delay_rate=0.1,
                        delay_seconds=0.01)
    with ChaosProxy(hostname, port, storm) as proxy:
        with _resilient(proxy, retries=30) as client:
            for i in range(60):
                client.predict("lmo", "gather", "linear", float(KB * (i + 1)))
    # Straight to the server, no proxy: alive, sane, zero queued residue.
    with host.client() as direct:
        health = direct.health()
        assert health["status"] == "running"
        assert health["inflight"] == 0
        model = make_model()
        assert direct.predict("lmo", "scatter", "linear", 8 * KB) == \
            api.predict(model, "scatter", "linear", 8 * KB)


# -- deadline shedding ------------------------------------------------------------
def test_queued_past_deadline_is_shed_unexecuted(host):
    """A deadline far smaller than the batch window expires while the
    request is queued; the server sheds it with the typed code."""
    with host.client() as client:
        with pytest.raises(errors.DeadlineExceeded):
            client.call("predict", {
                "model": "lmo", "operation": "scatter",
                "algorithm": "linear", "nbytes": KB,
            }, deadline_ms=0.001)
        # The connection survives the shed; subsequent work completes.
        assert client.call("health")["status"] == "running"


def test_generous_deadline_does_not_shed(host):
    with host.client() as client:
        result = client.call("predict", {
            "model": "lmo", "operation": "scatter", "algorithm": "linear",
            "nbytes": KB,
        }, deadline_ms=30000.0)
        assert result["kind"] == "prediction"


# -- crash-safe registry snapshot -------------------------------------------------
def test_registry_snapshot_round_trips(tmp_path):
    snapshot = str(tmp_path / "registry.json")
    registry = ModelRegistry(snapshot_path=snapshot)
    registry.register("survivor", make_model())
    # A brand-new registry (a restarted process) restores the overlay.
    reborn = ModelRegistry(snapshot_path=snapshot)
    assert reborn.restore() == 1
    assert "survivor" in reborn.names()
    model = make_model()
    assert api.predict(reborn.get("survivor"), "scatter", "linear", KB) == \
        api.predict(model, "scatter", "linear", KB)


def test_registry_snapshot_is_written_before_ack(tmp_path):
    """Durability ordering: by the time register() returns, the
    snapshot on disk already contains the model."""
    snapshot = str(tmp_path / "registry.json")
    registry = ModelRegistry(snapshot_path=snapshot)
    registry.register("m1", make_model())
    on_disk = json.loads(open(snapshot).read())
    assert "m1" in on_disk["models"]


def test_corrupt_snapshot_starts_fresh_instead_of_crashing(tmp_path):
    snapshot = tmp_path / "registry.json"
    snapshot.write_text("{definitely not json")
    registry = ModelRegistry(snapshot_path=str(snapshot))
    assert registry.restore() == 0
    assert registry.names() == []
    # And the broken file does not poison future registrations.
    registry.register("fresh", make_model())
    assert ModelRegistry(snapshot_path=str(snapshot)).restore() == 1


def test_in_memory_registration_wins_over_snapshot(tmp_path):
    snapshot = str(tmp_path / "registry.json")
    stale = ModelRegistry(snapshot_path=snapshot)
    stale.register("name", make_model(n=4, seed=9))
    current = ModelRegistry(snapshot_path=snapshot)
    newer = make_model(n=6, seed=2)
    current.register("name", newer)
    assert current.restore() == 0  # snapshot had nothing newer to add
    assert api.predict(current.get("name"), "scatter", "linear", KB) == \
        api.predict(newer, "scatter", "linear", KB)


def test_server_restores_snapshot_on_start(tmp_path):
    snapshot = str(tmp_path / "registry.json")
    config = ServeConfig(port=0, models={"lmo": make_model()}, workers=1,
                         telemetry=False, snapshot_path=snapshot)
    with ServerThread(config) as first:
        with first.client() as client:
            client.call("estimate", {
                "model": "lmo", "nodes": 4, "seed": 1, "reps": 1,
                "quick": True, "register_as": "durable",
            })
    # A second server instance — a restart — serves the registered model.
    with ServerThread(config) as second:
        with second.client() as client:
            assert "durable" in client.health()["models"]
            result = client.call("predict", {
                "model": "durable", "operation": "scatter",
                "algorithm": "linear", "nbytes": KB,
            })
            assert result["kind"] == "prediction"
