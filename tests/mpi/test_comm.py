"""Tests for point-to-point messaging semantics."""

import numpy as np
import pytest

from repro.cluster import IDEAL, LAM_7_1_3, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.mpi import DeadlockError, MessageLayer, payload_nbytes, run_ranks

KB = 1024


def quiet_cluster(n=4, seed=0, profile=IDEAL):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=profile,
        noise=NoiseModel.none(),
        seed=seed,
    )


def test_payload_nbytes_numpy_bytes_none():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes(None) == 0
    with pytest.raises(TypeError):
        payload_nbytes({"not": "sized"})


def test_blocking_send_recv_delivers_payload():
    cluster = quiet_cluster()
    payload = np.arange(100, dtype=np.int64)

    def sender(comm):
        yield from comm.send(1, payload=payload, tag=5)

    def receiver(comm):
        env = yield from comm.recv(0, tag=5)
        return env

    results = run_ranks(cluster, {0: sender, 1: receiver})
    env = results[1].value
    assert np.array_equal(env.payload, payload)
    assert env.nbytes == payload.nbytes
    assert env.src == 0 and env.dst == 1 and env.tag == 5


def test_roundtrip_time_matches_lmo_formula():
    """i <-M-> j roundtrip = 2(C_i + L_ij + C_j + M(t_i + 1/beta + t_j))."""
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    M = 50 * KB

    def initiator(comm):
        yield from comm.send(1, nbytes=M)
        yield from comm.recv(1)

    def responder(comm):
        yield from comm.recv(0)
        yield from comm.send(0, nbytes=M)

    results = run_ranks(cluster, {0: initiator, 1: responder})
    assert results[0].finish == pytest.approx(2 * gt.p2p_time(0, 1, M), rel=1e-12)


def test_roundtrip_empty_reply_matches_formula():
    """i -M-> j, empty reply: T = 2(C_i+L+C_j) + M(t_i+1/beta+t_j)."""
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    M = 10 * KB

    def initiator(comm):
        yield from comm.sendrecv(1, nbytes=M, reply_nbytes=0)

    def responder(comm):
        yield from comm.recv(0)
        yield from comm.send(0, nbytes=0)

    results = run_ranks(cluster, {0: initiator, 1: responder})
    expected = gt.p2p_time(0, 1, M) + gt.p2p_time(1, 0, 0)
    assert results[0].finish == pytest.approx(expected, rel=1e-12)


def test_blocking_send_returns_at_local_completion():
    """The sender is free after its CPU stage, before remote delivery."""
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    M = 20 * KB
    send_return_time = {}

    def sender(comm):
        yield from comm.send(1, nbytes=M)
        send_return_time["t"] = comm.sim.now

    def receiver(comm):
        yield from comm.recv(0)

    run_ranks(cluster, {0: sender, 1: receiver})
    assert send_return_time["t"] == pytest.approx(gt.send_cost(0, M), rel=1e-12)


def test_messages_do_not_overtake_within_src_dst_tag():
    cluster = quiet_cluster()
    order = []

    def sender(comm):
        for k in range(5):
            yield from comm.send(1, payload=bytes([k]), nbytes=1000, tag=2)

    def receiver(comm):
        for _k in range(5):
            env = yield from comm.recv(0, tag=2)
            order.append(env.payload[0])

    run_ranks(cluster, {0: sender, 1: receiver})
    assert order == [0, 1, 2, 3, 4]


def test_tags_separate_message_streams():
    cluster = quiet_cluster()

    def sender(comm):
        yield from comm.send(1, payload=b"a", nbytes=1, tag=1)
        yield from comm.send(1, payload=b"b", nbytes=1, tag=2)

    def receiver(comm):
        env2 = yield from comm.recv(0, tag=2)
        env1 = yield from comm.recv(0, tag=1)
        return (env1.payload, env2.payload)

    results = run_ranks(cluster, {0: sender, 1: receiver})
    assert results[1].value == (b"a", b"b")


def test_isend_irecv_overlap():
    """Two non-blocking exchanges in flight simultaneously complete."""
    cluster = quiet_cluster()

    def rank0(comm):
        s = comm.isend(1, nbytes=10 * KB, tag=1)
        r = comm.irecv(1, tag=2)
        yield s.sent
        env = yield r.wait()
        return env.nbytes

    def rank1(comm):
        s = comm.isend(0, nbytes=20 * KB, tag=2)
        r = comm.irecv(0, tag=1)
        yield s.sent
        env = yield r.wait()
        return env.nbytes

    results = run_ranks(cluster, {0: rank0, 1: rank1})
    assert results[0].value == 20 * KB
    assert results[1].value == 10 * KB


def test_request_test_reflects_completion():
    cluster = quiet_cluster()
    observed = {}

    def rank0(comm):
        req = comm.isend(1, nbytes=1000)
        observed["before"] = req.test()
        yield req.wait()
        observed["after"] = req.test()

    def rank1(comm):
        yield from comm.recv(0)

    run_ranks(cluster, {0: rank0, 1: rank1})
    assert observed == {"before": False, "after": True}


def test_self_send_rejected():
    cluster = quiet_cluster()
    layer = MessageLayer(cluster)
    comm = layer.rank_comm(0)
    with pytest.raises(ValueError):
        comm.isend(0, nbytes=1)
    with pytest.raises(ValueError):
        comm.irecv(0)


def test_rank_out_of_range_rejected():
    cluster = quiet_cluster()
    layer = MessageLayer(cluster)
    with pytest.raises(ValueError):
        layer.rank_comm(99)

    def noop(comm):
        return
        yield

    with pytest.raises(ValueError):
        run_ranks(cluster, {99: noop})


def test_unmatched_recv_raises_deadlock_error():
    cluster = quiet_cluster()

    def receiver(comm):
        yield from comm.recv(1, tag=9)  # nobody sends

    with pytest.raises(DeadlockError, match="rank"):
        run_ranks(cluster, {0: receiver})


def test_rendezvous_send_blocks_until_recv_posted():
    """Above the eager threshold the sender stalls until the receiver
    posts (LAM long protocol); below it the sender proceeds immediately."""
    n = 3
    gt = GroundTruth.random(n, seed=3)
    spec = random_cluster(n, seed=3)
    cluster = SimulatedCluster(spec, ground_truth=gt, profile=LAM_7_1_3,
                               noise=NoiseModel.none(), seed=3)
    big = 100 * KB  # rendezvous
    delay = 0.5
    send_done = {}

    def sender(comm):
        yield from comm.send(1, nbytes=big)
        send_done["t"] = comm.sim.now

    def late_receiver(comm):
        yield comm.sim.timeout(delay)
        yield from comm.recv(0)

    run_ranks(cluster, {0: sender, 1: late_receiver})
    assert send_done["t"] >= delay  # stalled until the recv appeared

    # Same exchange with an eager-size message: sender finishes early.
    small = 1 * KB
    cluster.reset()

    def sender_small(comm):
        yield from comm.send(1, nbytes=small)
        send_done["t"] = comm.sim.now

    run_ranks(cluster, {0: sender_small, 1: late_receiver})
    assert send_done["t"] < delay


def test_rendezvous_credit_banked_by_early_recv():
    """If the receive is already posted, a long send pays only the
    handshake round-trip, not an extra stall."""
    n = 3
    gt = GroundTruth.random(n, seed=4)
    cluster = SimulatedCluster(random_cluster(n, seed=4), ground_truth=gt,
                               profile=LAM_7_1_3, noise=NoiseModel.none(), seed=4)
    big = 100 * KB

    def sender(comm):
        yield comm.sim.timeout(0.01)  # receiver is certainly posted
        yield from comm.send(1, nbytes=big)

    def receiver(comm):
        yield from comm.recv(0)

    results = run_ranks(cluster, {0: sender, 1: receiver})
    gt_time = (
        0.01
        + 2 * gt.L[0, 1]  # handshake
        + LAM_7_1_3.sender_protocol_overhead(big)
        + gt.p2p_time(0, 1, big)
    )
    assert results[1].finish == pytest.approx(gt_time, rel=1e-9)


def test_any_source_receive_matches_first_arrival():
    from repro.mpi.comm import ANY_SOURCE

    cluster = quiet_cluster()
    got = []

    def sender(comm, delay, label):
        yield comm.sim.timeout(delay)
        yield from comm.send(3, payload=label, nbytes=100, tag=9)

    def receiver(comm):
        for _ in range(2):
            env = yield from comm.recv(ANY_SOURCE, tag=9)
            got.append((env.src, env.payload))

    run_ranks(cluster, {
        0: lambda c: sender(c, 0.01, b"slow"),
        1: lambda c: sender(c, 0.0, b"fast"),
        3: receiver,
    })
    assert got[0] == (1, b"fast")
    assert got[1] == (0, b"slow")


def test_any_tag_receive():
    from repro.mpi.comm import ANY_TAG

    cluster = quiet_cluster()

    def sender(comm):
        yield from comm.send(1, payload=b"x", nbytes=1, tag=42)

    def receiver(comm):
        env = yield from comm.recv(0, tag=ANY_TAG)
        return env.tag

    results = run_ranks(cluster, {0: sender, 1: receiver})
    assert results[1].value == 42


def test_wildcard_receive_with_rendezvous_message():
    """A wildcard receive cannot pre-grant the rendezvous credit, so the
    long send stays gated until a specific receive appears — mirroring
    MPI protocol-level matching.  With an eventual specific receive the
    exchange completes."""
    from repro.mpi.comm import ANY_SOURCE

    n = 3
    gt = GroundTruth.random(n, seed=44)
    cluster = SimulatedCluster(random_cluster(n, seed=44), ground_truth=gt,
                               profile=LAM_7_1_3, noise=NoiseModel.none(), seed=44)
    big = 100 * KB

    def sender(comm):
        yield from comm.send(1, nbytes=big, tag=5)

    def receiver(comm):
        # The wildcard receive alone would wait forever for a rendezvous
        # message; posting the specific receive releases the credit.
        wildcard = comm.irecv(ANY_SOURCE, tag=5)
        specific = comm.irecv(0, tag=5)
        env = yield from comm.wait(wildcard)
        del specific
        return env.nbytes

    results = run_ranks(cluster, {0: sender, 1: receiver})
    assert results[1].value == big


def test_probe_sees_pending_message_without_consuming():
    cluster = quiet_cluster()
    observed = {}

    def sender(comm):
        yield from comm.send(1, payload=b"hi", nbytes=2, tag=6)

    def receiver(comm):
        yield comm.sim.timeout(0.05)  # message certainly delivered
        observed["before"] = comm.probe(source=0, tag=6)
        observed["wrong_tag"] = comm.probe(tag=99)
        env = yield from comm.recv(0, tag=6)
        observed["after"] = comm.probe(source=0, tag=6)
        return env.payload

    results = run_ranks(cluster, {0: sender, 1: receiver})
    assert observed["before"] is not None
    assert observed["before"].nbytes == 2
    assert observed["wrong_tag"] is None
    assert observed["after"] is None
    assert results[1].value == b"hi"
