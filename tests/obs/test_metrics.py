"""Unit tests for the metrics registry and Prometheus exposition."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    prometheus_text,
)

# A strict line-level validator for the Prometheus text exposition format
# (what promtool's parser accepts for names, labels and values).
_PROM_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_PROM_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (\+Inf|-Inf|NaN|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$"  # value
)


def assert_valid_prometheus(text):
    """Every line must be a HELP/TYPE comment or a well-formed sample."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        ok = (
            _PROM_HELP.match(line)
            or _PROM_TYPE.match(line)
            or _PROM_SAMPLE.match(line)
        )
        assert ok, f"invalid Prometheus exposition line: {line!r}"


def test_counter_inc_and_total():
    reg = MetricsRegistry()
    reg.counter("units_total", help="units", outcome="done").inc()
    reg.counter("units_total", outcome="done").inc(2)
    reg.counter("units_total", outcome="failed").inc()
    assert reg.value("units_total", outcome="done") == 3
    assert reg.value("units_total", outcome="failed") == 1
    assert reg.total("units_total") == 4
    # Untouched children and unknown families read zero, not KeyError.
    assert reg.value("units_total", outcome="skipped") == 0
    assert reg.value("no_such_metric") == 0


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="only go up"):
        reg.counter("c_total").inc(-1)


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("coverage")
    g.set(0.5)
    g.inc(0.25)
    g.dec(0.5)
    assert g.value == pytest.approx(0.25)


def test_metric_kind_conflict_is_an_error():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x_total")


def test_bad_metric_and_label_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="bad metric name"):
        reg.counter("2bad")
    with pytest.raises(ValueError, match="bad label name"):
        reg.counter("ok_total", **{"bad-label": 1})


def test_histogram_log2_buckets_and_overflow():
    h = Histogram(lo=-2, hi=2)  # bounds 0.25, 0.5, 1, 2, 4
    assert h.bounds == [0.25, 0.5, 1.0, 2.0, 4.0]
    h.observe(0.2)   # first bucket
    h.observe(1.0)   # exact bound lands in that bucket
    h.observe(3.0)
    h.observe(100.0)  # +Inf overflow
    assert h.count == 4
    assert h.sum == pytest.approx(104.2)
    assert h.bucket_counts[0] == 1
    assert h.bucket_counts[2] == 1
    assert h.bucket_counts[4] == 1
    assert h.bucket_counts[5] == 1  # +Inf
    with pytest.raises(ValueError):
        h.observe(float("nan"))


def test_histogram_quantile_is_bucket_resolution():
    h = Histogram(lo=-2, hi=2)
    for v in [0.2, 0.2, 0.2, 3.0]:
        h.observe(v)
    assert h.quantile(0.5) == 0.25   # upper bound of the holding bucket
    assert h.quantile(1.0) == 4.0
    assert math.isnan(Histogram().quantile(0.5))
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_snapshot_roundtrips_through_json():
    reg = MetricsRegistry()
    reg.counter("units_total", help="units", outcome="done").inc(3)
    reg.gauge("coverage").set(0.75)
    reg.histogram("lat_seconds", lo=-4, hi=0).observe(0.1)
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["units_total"]["type"] == "counter"
    assert snap["units_total"]["samples"][0]["labels"] == {"outcome": "done"}
    assert snap["units_total"]["samples"][0]["value"] == 3
    hist = snap["lat_seconds"]["samples"][0]
    assert hist["count"] == 1
    assert hist["buckets"][-1][0] == "+Inf"
    # And the rendered text from the JSON round-trip is identical.
    assert prometheus_text(snap) == reg.to_prometheus()


def test_prometheus_text_is_valid_exposition():
    reg = MetricsRegistry()
    reg.counter("units_total", help="finished units", outcome="done").inc(3)
    reg.counter("units_total", outcome='we "quote"\nnewline\\slash').inc()
    reg.gauge("coverage", help="fraction solved").set(0.75)
    reg.histogram("lat_seconds", help="latencies", lo=-2, hi=2).observe(0.3)
    text = reg.to_prometheus()
    assert_valid_prometheus(text)
    # Histogram convention: cumulative buckets ending at +Inf, sum, count.
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_sum 0.3" in text
    assert "lat_seconds_count 1" in text
    cumulative = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("lat_seconds_bucket")
    ]
    assert cumulative == sorted(cumulative)


def test_reset_drops_all_families():
    reg = MetricsRegistry()
    reg.counter("a_total").inc()
    reg.reset()
    assert reg.families() == []
    assert reg.total("a_total") == 0
