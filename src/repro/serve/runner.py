"""In-process server hosting for tests and benchmarks.

:class:`ServerThread` runs a :class:`~repro.serve.server.PredictionServer`
on a private event loop in a daemon thread, so synchronous test code and
the load benchmark can talk to a *real* socket server (real framing,
real backpressure) without managing a subprocess::

    with ServerThread(ServeConfig(port=0, models={"lmo": model})) as host:
        with host.client() as client:
            assert client.health()["status"] == "running"

Signal handlers are not installed in a non-main thread; use
:meth:`reload` / :meth:`stop` (which proxy into the loop) where a
deployment would send SIGHUP / SIGTERM.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Optional

from repro.obs import runtime as _obs
from repro.serve.client import ServiceClient
from repro.serve.server import PredictionServer, ServeConfig
from repro.serve.service import STOPPED

__all__ = ["ServerThread"]


class ServerThread:
    """A running prediction server on a background event loop."""

    def __init__(self, config: ServeConfig, startup_timeout: float = 30.0) -> None:
        self.config = config
        self.startup_timeout = startup_timeout
        self.server: Optional[PredictionServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._failure: list[BaseException] = []

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self.startup_timeout):
            raise TimeoutError("server did not come up in time")
        if self._failure:
            raise self._failure[0]
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._boot())
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            if not self._failure:
                self._failure.append(exc)
            self._started.set()
        finally:
            loop.close()

    async def _boot(self) -> None:
        server = PredictionServer(self.config)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._failure.append(exc)
            self._started.set()
            return
        self.server = server
        self._started.set()
        try:
            await server.serve_forever()
        finally:
            # Abnormal exits (an exception escaping the serve loop, the
            # loop being torn down) must not leave a stale Unix socket
            # or orphaned worker tasks behind — a graceful drain already
            # reached STOPPED, anything else gets the hard cleanup.
            if server.state != STOPPED:
                tel = _obs.ACTIVE
                recorder = tel.flight if tel is not None else None
                if recorder is not None and recorder.dump_dir is not None:
                    try:
                        recorder.dump(reason="server_abort")
                    except OSError:
                        pass  # forensics must not block the cleanup
                await server.abort()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain gracefully and join the thread (idempotent)."""
        if self._loop is None or self._thread is None or self.server is None:
            return
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.drain(), self._loop
            )
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- conveniences -------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) of the bound TCP socket."""
        assert self.server is not None, "server not started"
        host, port = self.server.endpoint.rsplit(":", 1)
        return host, int(port)

    def client(self, timeout: float = 60.0) -> ServiceClient:
        """A fresh connected client (TCP or Unix, matching the config)."""
        if self.config.unix_path is not None:
            return ServiceClient(unix_path=self.config.unix_path, timeout=timeout)
        host, port = self.address
        return ServiceClient(host=host, port=port, timeout=timeout)

    def reload(self, timeout: float = 30.0) -> int:
        """Run the server's SIGHUP handler inside the loop."""
        assert self._loop is not None and self.server is not None
        async def _reload() -> int:
            return self.server.reload()  # type: ignore[union-attr]
        return asyncio.run_coroutine_threadsafe(
            _reload(), self._loop
        ).result(timeout=timeout)
