"""Further collective algorithms: pipelining and recursive doubling.

These are the other entries of an MPI implementation's algorithm menu —
the menu whose size is exactly why model-driven selection (paper Fig. 6)
matters.  Implemented:

* **pipeline (chain) broadcast** — the message moves down a rank chain in
  segments, so all links stream concurrently once the pipe fills;
  asymptotically bandwidth-optimal for large messages;
* **recursive-doubling allgather** — ``log2 n`` exchange rounds with
  doubling block volumes (power-of-two rank counts);
* **recursive-doubling allreduce** — the same butterfly carrying full
  vectors, combining at each step;
* **reduce+bcast allreduce** — the classic composite, for any rank count.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpi.collectives import binomial
from repro.mpi.comm import COLL_TAG, RankComm

__all__ = ["pipeline_bcast", "recursive_doubling_allgather", "recursive_doubling_allreduce",
           "reduce_bcast_allreduce"]

DEFAULT_SEGMENT = 8 * 1024


def pipeline_bcast(
    comm: RankComm,
    root: int,
    nbytes: int,
    payload: Any = None,
    segment_nbytes: int = DEFAULT_SEGMENT,
) -> Generator:
    """Chain broadcast in segments (the 'pipeline' algorithm).

    Ranks form the chain ``root -> root+1 -> ... -> root-1`` (mod size);
    each intermediate rank forwards segment ``k`` as soon as it has it,
    overlapping with the receive of segment ``k+1``.
    """
    if segment_nbytes < 1:
        raise ValueError("segment_nbytes must be >= 1")
    size, me = comm.size, comm.rank
    position = (me - root) % size
    prev = (me - 1) % size
    nxt = (me + 1) % size
    segments = max(1, -(-nbytes // segment_nbytes))
    sizes = [segment_nbytes] * segments
    sizes[-1] = nbytes - segment_nbytes * (segments - 1) if nbytes else segment_nbytes
    if nbytes == 0:
        sizes = [0]

    if position == 0:
        for seg, seg_nbytes in enumerate(sizes):
            yield from comm.send(nxt, payload=payload, nbytes=seg_nbytes,
                                 tag=COLL_TAG + seg)
        return payload
    received = None
    last = position == size - 1
    for seg, seg_nbytes in enumerate(sizes):
        env = yield from comm.recv(prev, tag=COLL_TAG + seg)
        received = env.payload if env.payload is not None else received
        if not last:
            yield from comm.send(nxt, payload=env.payload, nbytes=seg_nbytes,
                                 tag=COLL_TAG + seg)
    return received


def _require_power_of_two(size: int, name: str) -> None:
    if size & (size - 1):
        raise ValueError(f"{name} requires a power-of-two rank count, got {size}")


def recursive_doubling_allgather(
    comm: RankComm,
    block_nbytes: int,
    block: Any = None,
) -> Generator:
    """Recursive-doubling allgather: ``log2 n`` rounds, doubling volumes.

    In round ``k`` rank ``r`` exchanges its accumulated ``2^k`` blocks
    with partner ``r XOR 2^k``.  Requires a power-of-two size.
    """
    size, me = comm.size, comm.rank
    _require_power_of_two(size, "recursive-doubling allgather")
    blocks: dict[int, Any] = {me: block}
    distance = 1
    round_idx = 0
    while distance < size:
        partner = me ^ distance
        volume = len(blocks) * block_nbytes
        send_req = comm.isend(partner, payload=dict(blocks), nbytes=volume,
                              tag=COLL_TAG + round_idx)
        env = yield from comm.wait(comm.irecv(partner, tag=COLL_TAG + round_idx))
        yield send_req.sent
        if env.payload is not None:
            blocks.update(env.payload)
        distance <<= 1
        round_idx += 1
    return [blocks.get(rank) for rank in range(size)]


def recursive_doubling_allreduce(
    comm: RankComm,
    nbytes: int,
    value: Any = None,
    combine=None,
) -> Generator:
    """Recursive-doubling allreduce: the butterfly with full vectors.

    Requires a power-of-two size; each of the ``log2 n`` rounds exchanges
    the full ``nbytes`` vector with the round's partner and combines.
    Combining charges this rank's CPU one per-byte pass.
    """
    size, me = comm.size, comm.rank
    _require_power_of_two(size, "recursive-doubling allreduce")
    cluster = comm.layer.cluster
    acc = value
    distance = 1
    round_idx = 0
    while distance < size:
        partner = me ^ distance
        send_req = comm.isend(partner, payload=acc, nbytes=nbytes,
                              tag=COLL_TAG + round_idx)
        env = yield from comm.wait(comm.irecv(partner, tag=COLL_TAG + round_idx))
        yield send_req.sent
        cost = cluster.noisy(nbytes * cluster.ground_truth.t[me])
        yield from cluster.cpu[me].hold(cluster.sim, cost)
        if combine is not None:
            acc = combine(acc, env.payload)
        distance <<= 1
        round_idx += 1
    return acc


def reduce_bcast_allreduce(
    comm: RankComm,
    nbytes: int,
    value: Any = None,
    combine=None,
    root: int = 0,
) -> Generator:
    """Allreduce as binomial reduce followed by binomial broadcast."""
    reduced = yield from binomial.reduce(comm, root, nbytes, value=value,
                                         combine=combine)
    result = yield from binomial.bcast(comm, root, nbytes, payload=reduced)
    return result
