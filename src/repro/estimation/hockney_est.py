"""Hockney parameter estimation (paper Sec. II).

The paper describes *two* experiment designs:

1. **roundtrips** — empty messages give the latency
   ``alpha_ij = T_ij(0) / 2``; non-empty ones give the per-byte time
   ``beta_ij = (T_ij(M)/2 - alpha_ij) / M``;
2. **one-way series** — ``{i -M_k-> j}``: send messages of several sizes,
   time each (via an acknowledged half-roundtrip), and fit the line
   ``alpha + beta M`` by least squares.

The homogeneous model averages the per-pair values.  Experiments over
disjoint pairs run in parallel — this estimator is the subject of the
paper's 16 s -> 5 s cost claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import Experiment, roundtrip
from repro.estimation.scheduling import run_schedule
from repro.models.hockney import HeterogeneousHockneyModel, HockneyModel
from repro.stats.fitting import linear_fit

__all__ = [
    "HockneyEstimationResult",
    "estimate_heterogeneous_hockney",
    "estimate_hockney",
    "estimate_hockney_series",
]

KB = 1024
DEFAULT_PROBE_NBYTES = 32 * KB


@dataclass
class HockneyEstimationResult:
    """Estimated heterogeneous Hockney model plus cost accounting."""

    model: HeterogeneousHockneyModel
    probe_nbytes: int
    estimation_time: float

    def homogeneous(self) -> HockneyModel:
        """The averaged (homogeneous) variant."""
        return self.model.averaged()


def estimate_heterogeneous_hockney(
    engine: ExperimentEngine,
    probe_nbytes: int = DEFAULT_PROBE_NBYTES,
    reps: int = 5,
    parallel: bool = True,
) -> HockneyEstimationResult:
    """Estimate per-pair ``alpha_ij``/``beta_ij`` from roundtrips."""
    n = engine.n
    if probe_nbytes <= 0:
        raise ValueError("probe_nbytes must be positive")
    experiments: list[Experiment] = []
    for i, j in combinations(range(n), 2):
        experiments.append(roundtrip(i, j, 0))
        experiments.append(roundtrip(i, j, probe_nbytes))
    t_start = engine.estimation_time
    measured = run_schedule(engine, experiments, parallel=parallel, reps=reps)
    cost = engine.estimation_time - t_start

    alpha = np.zeros((n, n))
    beta = np.zeros((n, n))
    for i, j in combinations(range(n), 2):
        a = measured[roundtrip(i, j, 0)] / 2.0
        b = (measured[roundtrip(i, j, probe_nbytes)] / 2.0 - a) / probe_nbytes
        alpha[i, j] = alpha[j, i] = a
        beta[i, j] = beta[j, i] = max(b, 0.0)
    return HockneyEstimationResult(
        model=HeterogeneousHockneyModel(alpha=alpha, beta=beta),
        probe_nbytes=probe_nbytes,
        estimation_time=cost,
    )


def estimate_hockney(
    engine: ExperimentEngine,
    probe_nbytes: int = DEFAULT_PROBE_NBYTES,
    reps: int = 5,
    parallel: bool = True,
) -> HockneyModel:
    """The homogeneous model: per-pair estimates averaged."""
    return estimate_heterogeneous_hockney(
        engine, probe_nbytes=probe_nbytes, reps=reps, parallel=parallel
    ).homogeneous()


DEFAULT_SERIES_SIZES = (0, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 48 * KB)


def estimate_hockney_series(
    engine: ExperimentEngine,
    sizes: Sequence[int] = DEFAULT_SERIES_SIZES,
    reps: int = 3,
    parallel: bool = True,
) -> HockneyEstimationResult:
    """The paper's second design: one-way series ``{i -M_k-> j}`` fitted.

    Each size's one-way time is taken as half the roundtrip with an empty
    reply minus the reply's constant half (measured at size 0), and the
    line ``alpha + beta M`` is fitted per pair by least squares.  More
    experiments than the two-point design, but robust to a single bad
    probe size.
    """
    n = engine.n
    sizes = sorted(set(int(m) for m in sizes))
    if len(sizes) < 2:
        raise ValueError("need at least two series sizes")
    experiments: list[Experiment] = []
    for i, j in combinations(range(n), 2):
        for m in sizes:
            experiments.append(roundtrip(i, j, m, 0))
    t_start = engine.estimation_time
    measured = run_schedule(engine, experiments, parallel=parallel, reps=reps)
    cost = engine.estimation_time - t_start

    alpha = np.zeros((n, n))
    beta = np.zeros((n, n))
    for i, j in combinations(range(n), 2):
        # Empty-reply roundtrip: T(M) = 2 alpha_ij + beta_ij M, so the
        # fitted intercept is 2 alpha and the slope is beta directly.
        times = [measured[roundtrip(i, j, m, 0)] for m in sizes]
        fit = linear_fit(sizes, times)
        alpha[i, j] = alpha[j, i] = max(fit.intercept / 2.0, 0.0)
        beta[i, j] = beta[j, i] = max(fit.slope, 0.0)
    return HockneyEstimationResult(
        model=HeterogeneousHockneyModel(alpha=alpha, beta=beta),
        probe_nbytes=sizes[-1],
        estimation_time=cost,
    )
