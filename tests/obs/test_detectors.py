"""Unit tests for the online escalation detector (live M1/M2)."""

from dataclasses import dataclass

import pytest

from repro.obs import runtime as _obs
from repro.obs.insight.detectors import (
    DELAY_METRIC,
    ESCALATED_METRIC,
    SIZE_HI,
    SIZE_LO,
    TRANSFER_METRIC,
    EscalationDetector,
)
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class FakeIrregularity:
    m1: float
    m2: float
    escalation_value: float


def _feed(detector):
    """Traffic with an escalation region over the (8K, 64K] buckets."""
    for _ in range(10):
        detector.observe(1024, escalated=False)
    for i in range(10):
        detector.observe(16384, escalated=i < 3, delay=0.21)
    for i in range(8):
        detector.observe(65536, escalated=i < 4, delay=0.25)
    for _ in range(10):
        detector.observe(262144, escalated=False)


def test_streaming_estimate_brackets_the_region():
    detector = EscalationDetector()
    _feed(detector)
    live = detector.estimate()
    # First escalating bucket is (8192, 16384]: M1 = its lower edge.
    assert live.m1 == 8192.0
    assert live.m2 == 65536.0
    assert live.escalation_value == pytest.approx(0.25)  # median delay
    rates = {r.upper: r.rate for r in live.rates}
    assert rates[1024.0] == 0.0
    assert rates[16384.0] == pytest.approx(0.3)
    assert rates[65536.0] == pytest.approx(0.5)


def test_estimate_raises_until_something_escalates():
    detector = EscalationDetector()
    for _ in range(20):
        detector.observe(4096, escalated=False)
    with pytest.raises(ValueError, match="no escalating size bucket"):
        detector.estimate()


def test_min_transfers_gates_noisy_buckets():
    detector = EscalationDetector(min_transfers=4)
    _feed(detector)
    # One lone escalated transfer in a huge bucket must not widen M2.
    detector.observe(8 << 20, escalated=True, delay=0.2)
    assert detector.estimate().m2 == 65536.0


def test_rate_floor_validation():
    with pytest.raises(ValueError, match="rate_floor"):
        EscalationDetector(rate_floor=0.0)
    with pytest.raises(ValueError, match="rate_floor"):
        EscalationDetector(rate_floor=1.5)


def _snapshot_registry():
    """A registry shaped like the machine-layer instrumentation output."""
    reg = MetricsRegistry()
    transfers = reg.histogram(TRANSFER_METRIC, lo=SIZE_LO, hi=SIZE_HI)
    escalated = reg.histogram(ESCALATED_METRIC, lo=SIZE_LO, hi=SIZE_HI)
    for _ in range(10):
        transfers.observe(1024)
    for i in range(10):
        transfers.observe(16384)
        if i < 3:
            escalated.observe(16384)
    for i in range(8):
        transfers.observe(65536)
        if i < 4:
            escalated.observe(65536)
    for _ in range(10):
        transfers.observe(262144)
    reg.histogram(DELAY_METRIC, cause="incast").observe(0.21)
    # Injected-fault escalations must not contaminate the delay estimate.
    reg.histogram(DELAY_METRIC, cause="loss").observe(30.0)
    return reg


def test_from_snapshot_matches_streaming_state():
    streaming = EscalationDetector()
    _feed(streaming)
    rebuilt = EscalationDetector.from_snapshot(_snapshot_registry().snapshot())
    live_s, live_r = streaming.estimate(), rebuilt.estimate()
    assert live_r.m1 == live_s.m1
    assert live_r.m2 == live_s.m2
    assert [r.to_dict() for r in live_r.rates] == [r.to_dict() for r in live_s.rates]
    # Snapshot delays come back at bucket resolution (p50-interpolated):
    # within 2x of the streaming median, and nowhere near the 30 s loss.
    assert 0.1 <= live_r.escalation_value <= 0.42


def test_compare_passes_within_tolerance():
    detector = EscalationDetector()
    _feed(detector)
    reference = FakeIrregularity(m1=13000.0, m2=80000.0, escalation_value=0.2)
    assert detector.compare(reference, tolerance=2.0) == []


def test_compare_flags_divergent_parameters():
    detector = EscalationDetector()
    _feed(detector)
    reference = FakeIrregularity(m1=1024.0, m2=65536.0, escalation_value=0.2)
    divergences = detector.compare(reference, tolerance=2.0)
    assert [d.parameter for d in divergences] == ["m1"]
    assert divergences[0].live == 8192.0
    assert divergences[0].reference == 1024.0
    assert divergences[0].ratio == pytest.approx(8.0)
    with pytest.raises(ValueError, match="tolerance"):
        detector.compare(reference, tolerance=0.5)


def test_compare_narrates_divergence_into_telemetry():
    detector = EscalationDetector()
    _feed(detector)
    reference = FakeIrregularity(m1=1024.0, m2=1_000_000.0, escalation_value=10.0)
    tel = _obs.enable(fresh=True)
    divergences = detector.compare(reference)
    assert {d.parameter for d in divergences} == {"m1", "m2", "escalation_value"}
    assert tel.registry.total("fidelity_divergences_total") == 3
    events = tel.events.events("fidelity_divergence")
    assert len(events) == 3
    assert all(e["level"] == "warning" for e in events)
    assert {e["parameter"] for e in events} == {"m1", "m2", "escalation_value"}


def test_compare_handles_zero_reference():
    detector = EscalationDetector()
    _feed(detector)
    reference = FakeIrregularity(m1=0.0, m2=65536.0, escalation_value=0.21)
    divergences = detector.compare(reference, tolerance=2.0)
    m1 = [d for d in divergences if d.parameter == "m1"]
    assert len(m1) == 1 and m1[0].ratio == float("inf")


def test_observe_clips_to_the_size_range():
    detector = EscalationDetector(min_transfers=1)
    for _ in range(4):
        detector.observe(float(1 << 40), escalated=True, delay=0.2)
    live = detector.estimate()
    assert live.m2 == float(1 << SIZE_HI)
