"""Tests for experiment descriptors and their DES rank programs."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation.experiments import (
    Experiment,
    build_programs,
    one_to_two,
    overhead_recv,
    overhead_send,
    roundtrip,
    saturation,
)
from repro.mpi import run_ranks

KB = 1024


def quiet_cluster(n=5, seed=0):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


def run_experiment(cluster, exp):
    results = run_ranks(cluster, build_programs(exp))
    return results[exp.initiator].value


# ------------------------------------------------------------- descriptors
def test_roundtrip_defaults_reply_to_send_size():
    exp = roundtrip(0, 1, 4 * KB)
    assert exp.reply_nbytes == 4 * KB
    assert roundtrip(0, 1, 4 * KB, 0).reply_nbytes == 0


def test_experiment_validation():
    with pytest.raises(ValueError, match="distinct"):
        Experiment("roundtrip", (1, 1), 0, 0)
    with pytest.raises(ValueError, match="unknown"):
        Experiment("telepathy", (0, 1), 0, 0)
    with pytest.raises(ValueError, match="needs"):
        Experiment("one_to_two", (0, 1), 0, 0)
    with pytest.raises(ValueError, match="invalid"):
        Experiment("roundtrip", (0, 1), -1, 0)


def test_overlap_detection():
    assert roundtrip(0, 1, 0).overlaps(one_to_two(1, 2, 3, 0))
    assert not roundtrip(0, 1, 0).overlaps(one_to_two(2, 3, 4, 0))


def test_overhead_recv_initiator_is_receiver():
    exp = overhead_recv(0, 1, KB)  # message 0 -> 1, timed at 1
    assert exp.initiator == 1


def test_experiments_hashable_and_reconstructible():
    assert roundtrip(0, 1, KB) == roundtrip(0, 1, KB)
    assert len({roundtrip(0, 1, KB), roundtrip(0, 1, KB)}) == 1


# ---------------------------------------------------------------- programs
def test_roundtrip_program_measures_formula_time():
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    M = 8 * KB
    duration = run_experiment(cluster, roundtrip(0, 1, M))
    assert duration == pytest.approx(2 * gt.p2p_time(0, 1, M), rel=1e-12)


def test_roundtrip_empty_measures_constant_part():
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    duration = run_experiment(cluster, roundtrip(2, 3, 0))
    assert duration == pytest.approx(2 * (gt.C[2] + gt.L[2, 3] + gt.C[3]), rel=1e-12)


def test_overhead_send_measures_sender_cpu():
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    M = 16 * KB
    duration = run_experiment(cluster, overhead_send(0, 1, M))
    assert duration == pytest.approx(gt.send_cost(0, M), rel=1e-12)


def test_overhead_recv_measures_receiver_cpu():
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    M = 16 * KB
    duration = run_experiment(cluster, overhead_recv(0, 1, M))
    assert duration == pytest.approx(gt.send_cost(1, M), rel=1e-12)


def test_saturation_total_grows_linearly_in_count():
    cluster = quiet_cluster()
    t8 = run_experiment(cluster, saturation(0, 1, 8 * KB, 8))
    cluster.reset()
    t16 = run_experiment(cluster, saturation(0, 1, 8 * KB, 16))
    # Twice the messages: extra time = 8 * steady-state bottleneck > 0.
    assert t16 > t8
    gt = cluster.ground_truth
    bottleneck = max(gt.send_cost(0, 8 * KB), 8 * KB / gt.beta[0, 1], gt.send_cost(1, 8 * KB))
    assert t16 - t8 == pytest.approx(8 * bottleneck, rel=0.05)


def test_one_to_two_program_structure():
    """T_ijk(0) = 3 C_i + max-path constants on the quiet DES (the first
    reply's processing overlaps the second's flight)."""
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    duration = run_experiment(cluster, one_to_two(0, 1, 2, 0, 0))
    # Paths: reply x arrives at k_x*C_0 + 2 L_0x + 2 C_x (x sent k_x-th).
    arrive_1 = 1 * gt.C[0] + 2 * gt.L[0, 1] + 2 * gt.C[1]
    arrive_2 = 2 * gt.C[0] + 2 * gt.L[0, 2] + 2 * gt.C[2]
    expected = max(arrive_2, arrive_1 + gt.C[0]) + gt.C[0]
    assert duration == pytest.approx(expected, rel=1e-12)


def test_one_to_two_between_paper_bounds():
    """The measured one-to-two time lies between the fully-overlapped
    lower bound and the paper's eq. (9) upper bound."""
    cluster = quiet_cluster(n=6, seed=4)
    gt = cluster.ground_truth
    M = 32 * KB
    duration = run_experiment(cluster, one_to_two(0, 1, 2, M, 0))
    eq9 = 2 * (2 * gt.C[0] + M * gt.t[0]) + max(
        2 * (gt.L[0, x] + gt.C[x]) + M * (1 / gt.beta[0, x] + gt.t[x]) for x in (1, 2)
    )
    lower = 2 * gt.send_cost(0, M)  # at least both send slots
    assert lower < duration <= eq9 + 1e-12
