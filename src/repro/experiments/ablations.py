"""Ablations of the simulator's protocol mechanisms (DESIGN.md D1-D3, D5).

Not a paper figure — the reproduction's own sanity layer: each observed
irregularity must disappear when its mechanism is switched off, proving
the phenomena come from the modelled protocol effects and not from
simulator accidents.

* D1 — without the rendezvous protocol there is no ``M > M2`` sum regime
  (the gather slope does not steepen);
* D2 — without RTO escalations the medium region is clean (no Fig. 7
  story);
* D3 — without the eager/rendezvous switch there is no scatter leap;
* D5 — parallel experiment schedules are non-intrusive on one switch.
"""

from __future__ import annotations

from repro.cluster import IDEAL, LAM_7_1_3, NoiseModel, SimulatedCluster, table1_cluster
from repro.estimation import DESEngine
from repro.estimation.experiments import roundtrip
from repro.experiments.common import KB, ExperimentResult
from repro.mpi import run_collective

__all__ = ["run"]


def _cluster(profile, seed):
    return SimulatedCluster(
        table1_cluster(), profile=profile, noise=NoiseModel.none(), seed=seed
    )


def _gather_min(cluster, nbytes, reps):
    return min(
        run_collective(cluster, "gather", "linear", nbytes=nbytes).time
        for _ in range(reps)
    )


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Run all four ablations; checks assert each mechanism's signature."""
    reps = 4 if quick else 8
    lines = []

    # -- D1: rendezvous serialization creates the sum regime -------------
    lam, ideal = _cluster(LAM_7_1_3, seed + 1), _cluster(IDEAL, seed + 1)
    slope_on = (_gather_min(lam, 160 * KB, reps) - _gather_min(lam, 96 * KB, reps)) / (64 * KB)
    slope_off = (_gather_min(ideal, 160 * KB, reps) - _gather_min(ideal, 96 * KB, reps)) / (64 * KB)
    d1 = slope_on > 1.2 * slope_off
    lines.append(f"D1 large-gather slope: rendezvous on {slope_on * 1e9:.0f} ns/B, "
                 f"off {slope_off * 1e9:.0f} ns/B")

    # -- D2: escalations make the medium region irregular ----------------
    lam2 = _cluster(LAM_7_1_3, seed + 2)
    quiet = _cluster(LAM_7_1_3.with_overrides(escalation_p_max=0.0), seed + 2)
    worst_on = max(run_collective(lam2, "gather", "linear", nbytes=32 * KB).time
                   for _ in range(3 * reps))
    worst_off = max(run_collective(quiet, "gather", "linear", nbytes=32 * KB).time
                    for _ in range(3 * reps))
    d2 = worst_on > 0.2 and worst_off < 0.1
    lines.append(f"D2 worst 32 KB gather: escalations on {worst_on * 1e3:.0f} ms, "
                 f"off {worst_off * 1e3:.1f} ms")

    # -- D3: the eager limit creates the scatter leap ---------------------
    lam3, ideal3 = _cluster(LAM_7_1_3, seed + 3), _cluster(IDEAL, seed + 3)

    def leap_factor(cluster):
        below = run_collective(cluster, "scatter", "linear", nbytes=56 * KB).time
        above = run_collective(cluster, "scatter", "linear", nbytes=72 * KB).time
        return ((above - below) / (16 * KB)) / (below / (56 * KB))

    leap_on, leap_off = leap_factor(lam3), leap_factor(ideal3)
    d3 = leap_on > 2.0 > leap_off
    lines.append(f"D3 slope jump across 64 KB (x average slope): protocol on "
                 f"{leap_on:.1f}, off {leap_off:.1f}")

    # -- D5: parallel schedules are non-intrusive --------------------------
    engine = DESEngine(_cluster(LAM_7_1_3, seed + 4))
    exps = [roundtrip(0, 1, 32 * KB), roundtrip(2, 3, 32 * KB), roundtrip(4, 5, 32 * KB)]
    serial = [engine.run(exp) for exp in exps]
    batch = engine.run_batch(exps)
    worst = max(abs(s - b) / s for s, b in zip(serial, batch))
    d5 = worst < 0.05
    lines.append(f"D5 serial-vs-batched roundtrip disagreement: {worst:.2%}")

    result = ExperimentResult(
        experiment_id="ablations",
        title="Protocol-mechanism ablations (DESIGN.md D1-D3, D5)",
        text="\n".join(lines),
    )
    result.checks = {
        "D1: rendezvous serialization steepens the large-gather slope": d1,
        "D2: RTO escalations are the medium-region irregularity": d2,
        "D3: the eager/rendezvous switch is the scatter leap": d3,
        "D5: parallel schedules do not perturb measurements": d5,
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
