"""Quickstart: simulate the paper's cluster, estimate the LMO model,
predict a collective, and check the prediction against a measurement —
the whole workflow through the :mod:`repro.api` facade.

Run with::

    python examples/quickstart.py
"""

from repro import api

KB = 1024


def main() -> None:
    # 1. The paper's 16-node heterogeneous cluster behind one switch,
    #    running LAM 7.1.3 over TCP (Table I).
    cluster = api.load_cluster(profile="lam", seed=0)
    print(cluster.spec.describe())
    print()

    # 2. Estimate the extended LMO model: C(n,2) roundtrips plus
    #    3*C(n,3) one-to-two experiments, solved per triplet (eqs. 6-12).
    outcome = api.estimate(cluster, model="lmo", reps=3)
    model = outcome.model
    print(f"estimated {outcome.n}-node LMO model "
          f"in {outcome.estimation_time:.2f} s of cluster time")
    print(f"  fixed processor delays C: {model.C.min() * 1e6:.0f}"
          f"..{model.C.max() * 1e6:.0f} us")
    print(f"  per-byte delays t:        {model.t.min() * 1e9:.1f}"
          f"..{model.t.max() * 1e9:.1f} ns/B")
    print()

    # 3. Predict linear scatter with the paper's formula (4) ...
    nbytes = 64 * KB
    predicted = api.predict(model, "scatter", "linear", nbytes)

    # 4. ... and compare against an MPIBlib-style measurement
    #    (repeat until the 95% confidence interval closes).
    measured = api.measure(cluster, "scatter", "linear", nbytes)
    print(f"linear scatter of {nbytes // KB} KB blocks on 16 nodes:")
    print(f"  LMO prediction: {predicted.seconds * 1e3:8.3f} ms")
    print(f"  measured:       {measured.mean * 1e3:8.3f} ms "
          f"(+-{measured.ci_halfwidth * 1e3:.3f} ms, {measured.reps} reps)")
    error = abs(predicted.seconds - measured.mean) / measured.mean
    print(f"  relative error: {error:.1%}")


if __name__ == "__main__":
    main()
