"""Sec. III bench: M1/M2 detection per MPI profile, plus Fig. 2 tree."""

from conftest import assert_checks

from repro.estimation import DESEngine, detect_gather_irregularity, sweep_collective
from repro.models import binomial_tree

KB = 1024


def test_thresholds_shape(experiment_results):
    assert_checks(experiment_results("thresholds"))


def test_fig2_shape(experiment_results):
    assert_checks(experiment_results("fig2"))


def test_bench_threshold_detection(benchmark, experiment_results, lam_cluster):
    """Kernel: detect (M1, M2) from a pre-collected gather sweep."""
    assert_checks(experiment_results("thresholds"))
    engine = DESEngine(lam_cluster)
    sweep = sweep_collective(
        engine, "gather", "linear",
        sizes=[2 * KB, 4 * KB, 8 * KB, 32 * KB, 64 * KB, 96 * KB],
        reps=10,
    )

    def kernel():
        return detect_gather_irregularity(sweep)

    irr = benchmark(kernel)
    assert irr.m1 < irr.m2


def test_bench_binomial_tree_construction(benchmark, experiment_results):
    """Kernel: Fig. 2's tree built from scratch (any n up to 256)."""
    assert_checks(experiment_results("fig2"))

    def kernel():
        return [binomial_tree(n, 0).depth() for n in (16, 64, 256)]

    assert benchmark(kernel) == [4, 6, 8]
