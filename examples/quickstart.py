"""Quickstart: simulate the paper's cluster, estimate the LMO model,
predict a collective, and check the prediction against a measurement.

Run with::

    python examples/quickstart.py
"""

from repro.benchlib import CollectiveBenchmark
from repro.cluster import LAM_7_1_3, SimulatedCluster, table1_cluster
from repro.estimation import DESEngine, estimate_extended_lmo
from repro.models import predict_linear_scatter
from repro.stats import MeasurementPolicy

KB = 1024


def main() -> None:
    # 1. The paper's 16-node heterogeneous cluster behind one switch,
    #    running LAM 7.1.3 over TCP (Table I).
    cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3, seed=0)
    print(cluster.spec.describe())
    print()

    # 2. Estimate the extended LMO model: C(n,2) roundtrips plus
    #    3*C(n,3) one-to-two experiments, solved per triplet (eqs. 6-12).
    engine = DESEngine(cluster)
    result = estimate_extended_lmo(engine, reps=3, clamp=True)
    model = result.model
    print(f"estimated {model.n}-node LMO model "
          f"in {result.estimation_time:.2f} s of cluster time")
    print(f"  fixed processor delays C: {model.C.min() * 1e6:.0f}"
          f"..{model.C.max() * 1e6:.0f} us")
    print(f"  per-byte delays t:        {model.t.min() * 1e9:.1f}"
          f"..{model.t.max() * 1e9:.1f} ns/B")
    print()

    # 3. Predict linear scatter with the paper's formula (4) ...
    nbytes = 64 * KB
    predicted = predict_linear_scatter(model, nbytes)

    # 4. ... and compare against an MPIBlib-style measurement
    #    (95% confidence, 2.5% relative error).
    bench = CollectiveBenchmark(cluster, policy=MeasurementPolicy.paper())
    point = bench.measure("scatter", "linear", nbytes)
    print(f"linear scatter of {nbytes // KB} KB blocks on 16 nodes:")
    print(f"  LMO prediction: {predicted * 1e3:8.3f} ms")
    print(f"  measured:       {point.mean * 1e3:8.3f} ms "
          f"(+-{point.summary.ci_halfwidth * 1e3:.3f} ms, "
          f"{point.summary.count} reps)")
    print(f"  relative error: {abs(predicted - point.mean) / point.mean:.1%}")


if __name__ == "__main__":
    main()
