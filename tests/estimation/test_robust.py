"""Robust estimation path: timeouts, retries, rejection, quarantine."""

import numpy as np
import pytest

from repro.cluster import (
    FaultInjector,
    FaultPlan,
    FlakyLink,
    GroundTruth,
    IDEAL,
    LAM_7_1_3,
    NodeHang,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.estimation import (
    AnalyticEngine,
    DESEngine,
    EstimationFailure,
    RetryPolicy,
    estimate_extended_lmo,
    estimate_extended_lmo_robust,
    roundtrip,
    run_schedule,
    run_schedule_robust,
)
from repro.estimation.robust import screened_mean
from repro.mpi.runtime import DeadlockError

KB = 1024


def quiet_cluster(n=5, seed=3):
    gt = GroundTruth.random(n, seed=seed)
    return SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )


class StubEngine:
    """Scripted engine: per-call durations, optional deadlock schedule."""

    def __init__(self, durations, deadlock_first=0):
        self.durations = durations
        self.deadlocks_left = deadlock_first
        self.n = 3
        self.estimation_time = 0.0
        self.calls = 0

    def _next(self, exp):
        if self.deadlocks_left > 0:
            self.deadlocks_left -= 1
            raise DeadlockError("stub stuck")
        self.calls += 1
        value = self.durations(exp, self.calls) if callable(self.durations) else self.durations
        self.estimation_time += value
        return value

    def run(self, exp):
        return self._next(exp)

    def run_batch(self, exps):
        if self.deadlocks_left > 0:
            self.deadlocks_left -= 1
            raise DeadlockError("stub stuck")
        return [self._next(exp) for exp in exps]


# -- RetryPolicy / screened_mean ----------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ValueError, match="timeout"):
        RetryPolicy(timeout=0)
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="backoff"):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError, match="mad_threshold"):
        RetryPolicy(mad_threshold=0)


def test_screened_mean_drops_the_spike():
    assert screened_mean([1.0, 1.01, 0.99, 250.0]) == pytest.approx(1.0, rel=0.02)
    assert screened_mean([2.0, 4.0]) == 3.0  # too few samples to screen
    with pytest.raises(ValueError, match="empty"):
        screened_mean([])


# -- run_schedule_robust -------------------------------------------------------

def test_clean_run_matches_plain_schedule():
    experiments = [roundtrip(0, 1, 8 * KB), roundtrip(2, 3, 8 * KB)]
    plain = run_schedule(DESEngine(quiet_cluster()), experiments, reps=3)
    robust, stats = run_schedule_robust(DESEngine(quiet_cluster()), experiments, reps=3)
    for exp in experiments:
        assert robust[exp] == pytest.approx(plain[exp], rel=1e-12)
    assert stats.timeouts == 0
    assert stats.retries == 0
    assert stats.deadlocks == 0
    assert not stats.degraded


def test_escalations_are_timed_out_and_remeasured():
    cluster = quiet_cluster()
    cluster.profile = LAM_7_1_3
    baseline = run_schedule(DESEngine(quiet_cluster()), [roundtrip(0, 1, 8 * KB)], reps=3)
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(FlakyLink(a=0, b=1, loss_prob=0.5),), seed=9,
    )))
    results, stats = run_schedule_robust(
        DESEngine(cluster), [roundtrip(0, 1, 8 * KB)], reps=3,
    )
    assert stats.timeouts > 0
    # The surviving value is escalation-free: within a whisker of the
    # fault-free measurement, nowhere near the ~0.2 s RTO.
    clean = baseline[roundtrip(0, 1, 8 * KB)]
    assert results[roundtrip(0, 1, 8 * KB)] == pytest.approx(clean, rel=1e-6)


def test_persistently_slow_experiment_degrades_gracefully():
    policy = RetryPolicy(timeout=1e-4, max_retries=2, backoff=2.0)
    engine = StubEngine(durations=5e-3)  # always 50x over budget
    exp = roundtrip(0, 1, KB)
    results, stats = run_schedule_robust(engine, [exp], reps=2, policy=policy)
    assert results[exp] == 5e-3  # least-contaminated observation kept
    assert stats.degraded == [exp]
    assert stats.retries == policy.max_retries


def test_deadlocked_batches_recover_via_serial_retries():
    engine = StubEngine(durations=1e-3, deadlock_first=2)
    exps = [roundtrip(0, 1, KB), roundtrip(0, 2, KB)]
    results, stats = run_schedule_robust(
        engine, exps, reps=2, policy=RetryPolicy(timeout=0.05),
    )
    assert stats.deadlocks == 2
    assert all(results[exp] == 1e-3 for exp in exps)


def test_unrecoverable_experiment_raises_estimation_failure():
    engine = StubEngine(durations=1e-3, deadlock_first=10**6)
    with pytest.raises(EstimationFailure, match="no sample"):
        run_schedule_robust(
            engine, [roundtrip(0, 1, KB)], reps=1,
            policy=RetryPolicy(timeout=0.05, max_retries=2),
        )


def test_outlier_samples_are_screened():
    exp = roundtrip(0, 1, KB)
    # Tiny per-call jitter keeps the MAD positive so the spike is screenable.
    spiky = StubEngine(
        durations=lambda _exp, call: 4e-2 if call == 1 else 1e-3 + call * 1e-7,
    )
    results, stats = run_schedule_robust(
        spiky, [exp], reps=5, policy=RetryPolicy(timeout=0.05),
    )
    assert stats.dropped_outliers == 1
    assert results[exp] == pytest.approx(1e-3, rel=1e-3)


def test_rejects_bad_reps():
    with pytest.raises(ValueError, match="reps"):
        run_schedule_robust(StubEngine(1e-3), [roundtrip(0, 1, KB)], reps=0)


# -- estimate_extended_lmo_robust ---------------------------------------------

def test_clean_cluster_matches_plain_estimate():
    robust = estimate_extended_lmo_robust(DESEngine(quiet_cluster()), reps=2)
    plain = estimate_extended_lmo(DESEngine(quiet_cluster()), reps=2)
    np.testing.assert_allclose(robust.model.C, plain.model.C, rtol=1e-9, atol=1e-12)
    # Per-triplet t estimates spread even noiselessly (DES discretization),
    # so the robust reduction may clamp a near-zero t that the plain mean
    # leaves slightly positive; sub-nanosecond agreement is exactness here.
    np.testing.assert_allclose(robust.model.t, plain.model.t, atol=1e-9)
    np.testing.assert_allclose(robust.model.L, plain.model.L, rtol=1e-9, atol=1e-12)
    assert robust.clean
    assert robust.total_triplets == 10
    assert "clean run" in robust.summary()


def test_flaky_link_does_not_poison_the_model():
    clean_cluster = quiet_cluster(n=5)
    clean_cluster.profile = LAM_7_1_3
    clean = estimate_extended_lmo_robust(DESEngine(clean_cluster), reps=3)
    cluster = quiet_cluster(n=5)
    cluster.profile = LAM_7_1_3
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(FlakyLink(a=0, b=3, loss_prob=0.4),), seed=5,
    )))
    result = estimate_extended_lmo_robust(DESEngine(cluster), reps=3)
    assert result.run_stats.timeouts > 0
    # The escalations were filtered, not averaged in: the faulty-cluster
    # estimate matches the fault-free one (an RTO is ~0.2 s, four orders
    # of magnitude above these parameters — any leakage would show).
    np.testing.assert_allclose(result.model.C, clean.model.C, rtol=0.05, atol=2e-6)
    off = ~np.eye(5, dtype=bool)
    np.testing.assert_allclose(
        result.model.L[off], clean.model.L[off], rtol=0.25, atol=5e-6,
    )


def test_hangs_are_survived():
    cluster = quiet_cluster(n=4)
    cluster.attach_injector(FaultInjector(FaultPlan(
        faults=(NodeHang(node=1, start=0.0, duration=0.02),),
    )))
    result = estimate_extended_lmo_robust(DESEngine(cluster), reps=2)
    assert cluster.injector.stats.hang_stalls > 0
    assert (result.model.C >= 0).all()


def test_inconsistent_node_is_quarantined_and_reported():
    truth = GroundTruth.random(5, seed=11)

    class CorruptingEngine(AnalyticEngine):
        """Shrinks every one-to-two rooted at node 2: its solved C_2 goes
        negative, so every triplet containing node 2 turns unphysical."""

        def run(self, exp):
            value = super().run(exp)
            if exp.kind == "one_to_two" and 2 in exp.nodes:
                value *= 0.4
            return value

        def run_batch(self, exps):
            return [self.run(exp) for exp in exps]

    result = estimate_extended_lmo_robust(CorruptingEngine(truth), reps=1)
    assert result.quarantined == [2]
    assert result.rejected_triplets
    assert all(2 in nodes for nodes in result.rejected_triplets)
    assert not result.clean
    assert "quarantined nodes: [2]" in result.summary()
    # The healthy nodes' parameters survive untouched by the corruption.
    for node in (0, 1, 3, 4):
        assert result.model.C[node] == pytest.approx(truth.C[node], rel=1e-6)
    # The model is still physical even for the quarantined node.
    assert (result.model.C >= 0).all()
    assert (result.model.t >= 0).all()


def test_robust_estimate_validates_inputs():
    engine = DESEngine(quiet_cluster())
    with pytest.raises(ValueError, match="probe_nbytes"):
        estimate_extended_lmo_robust(engine, probe_nbytes=0)
    with pytest.raises(ValueError, match="quarantine_fraction"):
        estimate_extended_lmo_robust(engine, quarantine_fraction=0.0)
    with pytest.raises(ValueError, match="unmeasured"):
        estimate_extended_lmo_robust(engine, triplets=[(0, 1, 2)])
