"""Durable campaigns: crash-resume determinism, breakers, budgets, status."""

import json
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    IDEAL,
    FaultInjector,
    FaultPlan,
    GroundTruth,
    NodeCrash,
    NoiseModel,
    ProcessCrash,
    SimulatedCluster,
    SimulatedCrash,
    random_cluster,
)
from repro.estimation import (
    AnalyticEngine,
    Campaign,
    CampaignConfig,
    DESEngine,
    FingerprintMismatch,
    JournalCorruption,
    ScheduleMismatch,
    campaign_status,
    cluster_fingerprint,
)
from repro.estimation.journal import CampaignJournal, replay

pytestmark = pytest.mark.campaign

CONFIG = CampaignConfig(seed=11, timeout=5.0)


def make_engine(faults=(), gt_seed=5):
    gt = GroundTruth.random(4, seed=gt_seed)
    cluster = SimulatedCluster(
        random_cluster(4, seed=5), ground_truth=gt, profile=IDEAL,
        noise=NoiseModel(rel_sigma=0.02, spike_prob=0.0), seed=7,
    )
    if faults:
        cluster.attach_injector(FaultInjector(FaultPlan(faults=tuple(faults))))
    return DESEngine(cluster)


def models_equal(a, b):
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in ("C", "t", "L", "beta")
    )


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    path = tmp_path_factory.mktemp("base") / "full.jsonl"
    return Campaign.start(make_engine(), str(path), CONFIG).run()


# -- the happy path -------------------------------------------------------------
def test_full_campaign_completes(uninterrupted):
    result = uninterrupted
    assert result.stopped == "complete"
    assert result.completed == result.total_experiments == 36  # 2C(4,2)+6C(4,3)
    assert result.coverage == 1.0
    assert not result.degraded
    assert result.coverage_ok
    assert result.model is not None
    assert result.solved_triplets == result.total_triplets == 4
    assert result.quarantined == ()
    assert not result.resumable
    assert result.estimation_time > 0
    assert result.repetitions >= 36 * 3


def test_result_serializes_to_json(uninterrupted):
    doc = json.loads(json.dumps(uninterrupted.to_dict()))
    assert doc["coverage"] == 1.0
    assert doc["breakers"]["counts"]["closed"] == 4


def test_journal_is_audit_complete(uninterrupted):
    rep = replay(uninterrupted.journal_path)
    done = rep.of_type("experiment_done")
    assert len(done) == 36
    assert all("samples" in rec and rec["samples"] for rec in done)
    assert rep.of_type("campaign_complete")
    assert rep.header["fingerprint"] == cluster_fingerprint(make_engine())


def test_rerun_of_complete_journal_remeasures_nothing(uninterrupted, tmp_path):
    engine = make_engine()
    result = Campaign.resume(engine, uninterrupted.journal_path).run()
    assert engine.estimation_time == 0.0  # pure journal replay
    assert models_equal(result.model, uninterrupted.model)


# -- crash-resume determinism (the tentpole acceptance) --------------------------
@pytest.mark.parametrize("k", [2, 7, 12, 20, 30])
def test_crash_resume_is_bit_identical(k, uninterrupted, tmp_path):
    """Kill the process after k experiments (pair phase: k < 12, triplet
    phase: k >= 12), resume, and land on the exact uninterrupted model."""
    path = str(tmp_path / "crash.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=k)]), path, CONFIG
        ).run()
    status = campaign_status(path)
    assert status.completed == k
    assert not status.complete
    resumed = Campaign.resume(make_engine(), path).run()
    assert resumed.completed == 36
    assert models_equal(resumed.model, uninterrupted.model)
    # The journal never re-measures what the crashed run completed.
    done = replay(path).of_type("experiment_done")
    assert len(done) == 36
    assert len({rec["index"] for rec in done}) == 36


def test_resume_tolerates_torn_tail(uninterrupted, tmp_path):
    path = str(tmp_path / "torn.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=9)]), path, CONFIG
        ).run()
    with open(path, "a") as handle:
        handle.write('{"type": "experiment_done", "index": 9, "val')
    resumed = Campaign.resume(make_engine(), path).run()
    assert models_equal(resumed.model, uninterrupted.model)


# -- resume validation ----------------------------------------------------------
def test_resume_rejects_different_cluster(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=5)]), path, CONFIG
        ).run()
    with pytest.raises(FingerprintMismatch, match="recorded against cluster"):
        Campaign.resume(make_engine(gt_seed=99), path)


def test_identical_duplicate_done_is_tolerated(uninterrupted, tmp_path):
    """Replay is idempotent: a re-appended unit record with an identical
    payload (up to the volatile cost fields) warns and keeps the first."""
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=5)]), path, CONFIG
        ).run()
    rep = replay(path)
    dup = dict(rep.of_type("experiment_done")[0])
    dup["wall_cost"] = 999.0  # wall clock is volatile, not identity
    with CampaignJournal.open_append(path) as journal:
        journal.append(dup)
    with pytest.warns(UserWarning, match="duplicate experiment_done"):
        resumed = Campaign.resume(make_engine(), path).run()
    assert models_equal(resumed.model, uninterrupted.model)
    # The duplicate contributed nothing to the accounting.
    assert resumed.completed == 36


def test_conflicting_duplicate_done_is_corruption(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=5)]), path, CONFIG
        ).run()
    rep = replay(path)
    evil = dict(rep.of_type("experiment_done")[0])
    evil["value"] = evil["value"] * 2
    with CampaignJournal.open_append(path) as journal:
        journal.append(evil)
    with pytest.raises(JournalCorruption, match="conflicting experiment_done"):
        Campaign.resume(make_engine(), path)


def test_resume_rejects_edited_schedule_hash(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=5)]), path, CONFIG
        ).run()
    lines = open(path).read().splitlines()
    header = json.loads(lines[0])
    header["schedule_hash"] = "0000000000000000"
    lines[0] = json.dumps(header)
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(ScheduleMismatch, match="schedule hash"):
        Campaign.resume(make_engine(), path)


def test_resume_rejects_out_of_range_index(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=3)]), path, CONFIG
        ).run()
    with CampaignJournal.open_append(path) as journal:
        journal.append({"type": "experiment_done", "index": 99, "value": 1.0})
    with pytest.raises(JournalCorruption, match="outside the schedule"):
        Campaign.resume(make_engine(), path)


# -- property: any crash point is resumable to the same model --------------------
@settings(max_examples=8, deadline=None)
@given(k=st.integers(min_value=1, max_value=35))
def test_any_crash_point_resumes_identically(k, uninterrupted, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("prop")
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=k)]), path, CONFIG
        ).run()
    resumed = Campaign.resume(make_engine(), path).run()
    assert models_equal(resumed.model, uninterrupted.model)


# -- circuit breakers and degraded coverage --------------------------------------
def test_dead_node_degrades_honestly(tmp_path):
    path = str(tmp_path / "dead.jsonl")
    result = Campaign.start(
        make_engine([NodeCrash(node=3)]), path, CONFIG
    ).run()
    assert result.stopped == "complete"
    assert result.quarantined == (3,)
    # Without node 3 only pairs/triplets among {0,1,2} are measurable:
    # 3 pairs x 2 sizes + 1 triplet x 6 experiments = 12 of 36.
    assert result.completed == 12
    assert result.coverage == pytest.approx(12 / 36)
    assert result.degraded
    assert not result.coverage_ok  # below the 0.5 floor
    assert result.model is not None  # partial model, not a failure
    assert result.solved_triplets == 1
    assert result.breakers["counts"]["open"] == 1
    assert result.breakers["nodes"][3]["state"] == "open"
    text = result.summary()
    assert "DEGRADED" in text
    assert "quarantined nodes: [3]" in text
    doc = result.to_dict()
    assert doc["degraded"] is True and doc["coverage_ok"] is False


def test_dead_node_campaign_survives_a_crash_too(tmp_path):
    path = str(tmp_path / "dead_crash.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([NodeCrash(node=3), ProcessCrash(after_experiments=10)]),
            path, CONFIG,
        ).run()
    result = Campaign.resume(make_engine([NodeCrash(node=3)]), path).run()
    assert result.quarantined == (3,)
    assert result.completed == 12


def test_breaker_reroute_saves_cluster_time(tmp_path):
    """With breakers the dead node burns far fewer stall timeouts than
    the naive all-units sweep would."""
    path = str(tmp_path / "dead.jsonl")
    result = Campaign.start(make_engine([NodeCrash(node=3)]), path, CONFIG).run()
    skipped = [r for r in replay(path).records
               if r["type"] == "experiment_skipped"]
    assert len(skipped) >= 15  # most dead units rerouted, not timed out
    assert result.failed <= 6


# -- budgets ---------------------------------------------------------------------
def test_repetition_budget_stops_resumably(uninterrupted, tmp_path):
    path = str(tmp_path / "budget.jsonl")
    config = CampaignConfig(seed=11, timeout=5.0, max_repetitions=30)
    result = Campaign.start(make_engine(), path, config).run()
    assert result.stopped == "budget_repetitions"
    assert result.resumable
    assert result.model is None
    assert 0 < result.completed < 36
    assert replay(path).of_type("checkpoint")[-1]["reason"] == "budget_repetitions"
    # A bigger budget finishes the campaign to the identical model.
    resumed = Campaign.resume(make_engine(), path, max_repetitions=10**6).run()
    assert resumed.stopped == "complete"
    assert models_equal(resumed.model, uninterrupted.model)


def test_sim_time_budget_stops(tmp_path):
    path = str(tmp_path / "sim.jsonl")
    config = CampaignConfig(seed=11, timeout=5.0, max_sim_seconds=1e-6)
    result = Campaign.start(make_engine(), path, config).run()
    assert result.stopped == "budget_sim"
    assert result.completed == 1  # checked between units, never mid-unit
    assert result.resumable


def test_wall_clock_budget_stops(tmp_path):
    path = str(tmp_path / "wall.jsonl")
    config = CampaignConfig(seed=11, timeout=5.0, max_wall_seconds=1e-12)
    result = Campaign.start(make_engine(), path, config).run()
    assert result.stopped == "budget_wall"
    assert result.completed == 1
    assert result.resumable


def test_periodic_checkpoints_are_journaled(uninterrupted):
    checkpoints = replay(uninterrupted.journal_path).of_type("checkpoint")
    assert len(checkpoints) == 2  # 36 units, checkpoint_every=16
    assert all(rec["reason"] == "periodic" for rec in checkpoints)


# -- config validation (satellite: API boundary rejects bad input) ---------------
@pytest.mark.parametrize("kwargs", [
    {"reps": 0},
    {"reps": -3},
    {"reps": 2.5},
    {"reps": True},
    {"probe_nbytes": 0},
    {"seed": -1},
    {"timeout": 0.0},
    {"timeout": -1.0},
    {"timeout": float("nan")},
    {"timeout": float("inf")},
    {"max_retries": -1},
    {"backoff": 0.5},
    {"backoff": float("nan")},
    {"mad_threshold": float("nan")},
    {"physical_tol": -1e-9},
    {"quarantine_fraction": 0.0},
    {"quarantine_fraction": 1.5},
    {"coverage_floor": 0.0},
    {"coverage_floor": 2.0},
    {"checkpoint_every": 0},
    {"retry_passes": -1},
    {"max_wall_seconds": 0.0},
    {"max_wall_seconds": float("nan")},
    {"max_sim_seconds": -5.0},
    {"max_sim_seconds": float("inf")},
    {"max_repetitions": 0},
    {"max_repetitions": 3.5},
])
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        CampaignConfig(**kwargs)


def test_config_dict_roundtrip():
    config = CampaignConfig(seed=3, max_repetitions=500)
    assert CampaignConfig.from_dict(config.to_dict()) == config


def test_resume_validates_budget_overrides(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=3)]), path, CONFIG
        ).run()
    with pytest.raises(ValueError, match="max_wall_seconds"):
        Campaign.resume(make_engine(), path, max_wall_seconds=float("nan"))
    with pytest.raises(ValueError, match="max_repetitions"):
        Campaign.resume(make_engine(), path, max_repetitions=0)


def test_start_needs_three_nodes(tmp_path):
    gt = GroundTruth.random(2, seed=0)
    engine = AnalyticEngine(gt)
    with pytest.raises(ValueError, match="at least 3"):
        Campaign.start(engine, str(tmp_path / "j.jsonl"), CampaignConfig())


def test_start_refuses_existing_journal(uninterrupted):
    with pytest.raises(Exception, match="already exists"):
        Campaign.start(make_engine(), uninterrupted.journal_path, CONFIG)


# -- analytic engine + status ----------------------------------------------------
def test_campaign_on_analytic_engine(tmp_path):
    """The campaign is engine-agnostic; AnalyticEngine reseeds via .rng."""
    gt = GroundTruth.random(4, seed=2)

    def engine():
        return AnalyticEngine(gt, noise=NoiseModel(rel_sigma=0.05, spike_prob=0.0))

    full = Campaign.start(engine(), str(tmp_path / "a.jsonl"), CONFIG).run()
    assert full.coverage == 1.0
    path = str(tmp_path / "b.jsonl")
    config = CampaignConfig(seed=11, timeout=5.0, max_repetitions=40)
    assert Campaign.start(engine(), path, config).run().resumable
    resumed = Campaign.resume(engine(), path, max_repetitions=10**6).run()
    assert models_equal(resumed.model, full.model)


def test_status_of_partial_journal(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=4)]), path, CONFIG
        ).run()
    status = campaign_status(path)
    assert status.n == 4
    assert status.total_experiments == 36
    assert status.completed == 4
    assert not status.complete
    assert status.repetitions >= 12
    text = status.summary()
    assert "resumable" in text
    assert "4/36" in text
    doc = json.loads(json.dumps(status.to_dict()))
    assert doc["completed"] == 4


def test_status_reports_torn_tail(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=4)]), path, CONFIG
        ).run()
    with open(path, "a") as handle:
        handle.write('{"type": "experiment_sta')
    status = campaign_status(path)
    assert status.truncated_tail
    assert "torn record" in status.summary()


def test_open_append_truncates_torn_tail(uninterrupted, tmp_path):
    """Appending after a crash must not weld the new record onto the torn
    line — that used to turn a recoverable tail into mid-journal
    corruption the next time status or resume replayed the file."""
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=6)]), path, CONFIG
        ).run()
    with open(path, "a") as handle:
        handle.write('{"type": "experiment_done", "index": 6, "val')
    with CampaignJournal.open_append(path) as journal:
        journal.append({"type": "checkpoint", "reason": "test"})
    rep = replay(path)  # would raise JournalCorruption before the fix
    assert not rep.truncated_tail
    assert rep.of_type("checkpoint")[-1]["reason"] == "test"
    status = campaign_status(path)
    assert status.completed == 6
    resumed = Campaign.resume(make_engine(), path).run()
    assert models_equal(resumed.model, uninterrupted.model)


def test_status_summary_reports_wall_clock(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=4)]), path, CONFIG
        ).run()
    # Wall clock survives a torn tail: only loadable records are counted.
    with open(path, "a") as handle:
        handle.write('{"type": "experiment_done", "index": 4, "wall_cost": 1e9')
    status = campaign_status(path)
    assert status.wall_time > 0
    assert status.wall_time < 1e9  # the torn record's cost never lands
    assert "s wall clock" in status.summary()
    assert status.coverage == pytest.approx(4 / 36)


def test_status_reports_in_flight(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with pytest.raises(SimulatedCrash):
        Campaign.start(
            make_engine([ProcessCrash(after_experiments=4)]), path, CONFIG
        ).run()
    with CampaignJournal.open_append(path) as journal:
        journal.append({"type": "experiment_started", "index": 4})
    status = campaign_status(path)
    assert status.in_flight == (4,)
    assert "re-queued" in status.summary()
