"""Tests for the simulated-cluster transport mechanics.

The central contract: with noise off and the IDEAL profile, an isolated
point-to-point transfer takes *exactly* the extended-LMO time
``C_i + L_ij + C_j + M (t_i + 1/beta_ij + t_j)`` — the simulated hardware
literally implements the model the paper proposes, and all irregularities
are explicit, separately-tested add-ons.
"""

import pytest

from repro.cluster import (
    IDEAL,
    LAM_7_1_3,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
    table1_cluster,
)

KB = 1024


def quiet_cluster(n=4, seed=0, profile=IDEAL):
    spec = random_cluster(n, seed=seed)
    return SimulatedCluster(
        spec,
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=profile,
        noise=NoiseModel.none(),
        seed=seed,
    )


def run_transfer(cluster, src, dst, nbytes):
    """Run one isolated transfer, returning its completion time."""
    done = cluster.sim.spawn(cluster.transmit(src, dst, nbytes))
    cluster.sim.run(until=done)
    return cluster.sim.now


def test_isolated_transfer_matches_lmo_transport_stages_exactly():
    """transmit() covers sender CPU + wire: C_i + M t_i + L_ij + M/beta.
    (Receiver processing C_j + M t_j is charged by the MPI recv call.)"""
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    for nbytes in [0, 1, 1024, 100 * KB]:
        cluster.reset()
        elapsed = run_transfer(cluster, 0, 2, nbytes)
        expected = gt.send_cost(0, nbytes) + gt.wire_time(0, 2, nbytes)
        assert elapsed == pytest.approx(expected, rel=1e-12)
        # Adding the receiver stage completes the extended-LMO p2p time.
        assert expected + gt.send_cost(2, nbytes) == pytest.approx(
            gt.p2p_time(0, 2, nbytes), rel=1e-12
        )


def test_transfer_requires_distinct_endpoints():
    cluster = quiet_cluster()
    with pytest.raises(ValueError):
        next(cluster.transmit(1, 1, 10))


def test_transfer_rejects_negative_size():
    cluster = quiet_cluster()
    with pytest.raises(ValueError):
        next(cluster.transmit(0, 1, -1))


def test_two_transfers_to_distinct_destinations_share_only_sender_cpu():
    """The switch parallelizes flows to different ports (paper Sec. III):
    the only serialization is the sender's CPU."""
    cluster = quiet_cluster()
    gt = cluster.ground_truth
    sim = cluster.sim
    done1 = sim.spawn(cluster.transmit(0, 1, 10 * KB))
    done2 = sim.spawn(cluster.transmit(0, 2, 10 * KB))
    sim.run()
    slot = gt.send_cost(0, 10 * KB)  # one send's CPU slot
    finish1 = slot + gt.wire_time(0, 1, 10 * KB)
    finish2 = 2 * slot + gt.wire_time(0, 2, 10 * KB)
    assert sim.now == pytest.approx(max(finish1, finish2), rel=1e-12)
    assert done1.processed and done2.processed


def test_two_transfers_into_same_port_serialize_on_the_wire():
    """Flows into the same ingress port share one wire."""
    n = 4
    spec = random_cluster(n, seed=1)
    gt = GroundTruth.random(n, seed=1)
    cluster = SimulatedCluster(
        spec, ground_truth=gt, profile=IDEAL, noise=NoiseModel.none(), seed=1
    )
    nbytes = 50 * KB
    sim = cluster.sim
    sim.spawn(cluster.transmit(1, 0, nbytes))
    sim.spawn(cluster.transmit(2, 0, nbytes))
    sim.run()
    # Senders work in parallel; the later-arriving flow waits for the
    # earlier one's occupancy, and receiver CPU serializes processing.
    arrive = sorted(
        gt.send_cost(s, nbytes) + gt.L[s, 0] for s in (1, 2)
    )
    occupancy = [nbytes / gt.beta[1, 0], nbytes / gt.beta[2, 0]]
    # total wire completion of second flow >= first completion + occupancy
    first_done = arrive[0] + min(occupancy)
    assert sim.now >= first_done + min(occupancy)
    assert cluster.stats.port_waits >= 1


def test_port_wait_counter_zero_without_contention():
    cluster = quiet_cluster()
    run_transfer(cluster, 0, 1, KB)
    assert cluster.stats.port_waits == 0


def test_rendezvous_adds_handshake_and_protocol_overheads():
    n = 3
    gt = GroundTruth.random(n, seed=2)
    spec = random_cluster(n, seed=2)
    lam = SimulatedCluster(spec, ground_truth=gt, profile=LAM_7_1_3,
                           noise=NoiseModel.none(), seed=2)
    ideal = SimulatedCluster(spec, ground_truth=gt, profile=IDEAL,
                             noise=NoiseModel.none(), seed=2)
    nbytes = 100 * KB  # above LAM's 64 KB eager threshold
    t_lam = run_transfer(lam, 0, 1, nbytes)
    t_ideal = run_transfer(ideal, 0, 1, nbytes)
    extra = 2 * gt.L[0, 1] + LAM_7_1_3.sender_protocol_overhead(nbytes)
    assert t_lam == pytest.approx(t_ideal + extra, rel=1e-12)
    assert lam.stats.rendezvous_handshakes == 1
    assert ideal.stats.rendezvous_handshakes == 0


def test_no_rendezvous_below_eager_threshold():
    cluster = quiet_cluster(profile=LAM_7_1_3)
    run_transfer(cluster, 0, 1, 10 * KB)
    assert cluster.stats.rendezvous_handshakes == 0


def test_incast_triggers_escalations_in_medium_range():
    """Many concurrent medium-size flows into one port must RTO sometimes."""
    spec = table1_cluster()
    cluster = SimulatedCluster(spec, profile=LAM_7_1_3, noise=NoiseModel.none(), seed=3)
    nbytes = 32 * KB  # in (M1, M2) for 15 senders
    for _round in range(10):
        cluster.reset()
        for src in range(1, 16):
            cluster.sim.spawn(cluster.transmit(src, 0, nbytes))
        cluster.sim.run()
    assert cluster.stats.escalations > 0
    assert cluster.stats.escalation_time >= cluster.stats.escalations * LAM_7_1_3.rto_base


def test_no_escalations_for_small_messages():
    spec = table1_cluster()
    cluster = SimulatedCluster(spec, profile=LAM_7_1_3, noise=NoiseModel.none(), seed=4)
    for _round in range(10):
        cluster.reset()
        for src in range(1, 16):
            cluster.sim.spawn(cluster.transmit(src, 0, 1 * KB))
        cluster.sim.run()
    assert cluster.stats.escalations == 0


def test_no_escalations_above_window():
    """Flows above the TCP window are paced: deterministic sum regime."""
    spec = table1_cluster()
    cluster = SimulatedCluster(spec, profile=LAM_7_1_3, noise=NoiseModel.none(), seed=5)
    for _round in range(5):
        cluster.reset()
        for src in range(1, 16):
            cluster.sim.spawn(cluster.transmit(src, 0, 80 * KB))
        cluster.sim.run()
    assert cluster.stats.escalations == 0


def test_escalations_never_from_single_sender():
    """A lone saturating stream self-clocks: no RTOs (profile contract)."""
    spec = table1_cluster()
    cluster = SimulatedCluster(spec, profile=LAM_7_1_3, noise=NoiseModel.none(), seed=6)
    for _ in range(50):
        cluster.sim.spawn(cluster.transmit(1, 0, 32 * KB))
    cluster.sim.run()
    assert cluster.stats.escalations == 0


def test_noise_makes_runs_differ_but_seeds_reproduce():
    spec = random_cluster(3, seed=7)
    gt = GroundTruth.random(3, seed=7)

    def measure(seed):
        cluster = SimulatedCluster(spec, ground_truth=gt, profile=IDEAL,
                                   noise=NoiseModel.default(), seed=seed)
        return run_transfer(cluster, 0, 1, 10 * KB)

    assert measure(1) == measure(1)
    assert measure(1) != measure(2)


def test_reset_preserves_rng_state_reseed_restores_it():
    cluster = quiet_cluster()
    cluster.noise = NoiseModel.default()
    t1 = run_transfer(cluster, 0, 1, KB)
    cluster.reset()
    t2 = run_transfer(cluster, 0, 1, KB)
    assert t1 != t2  # fresh noise after reset
    cluster.reseed(0)
    cluster.reset()
    t3 = run_transfer(cluster, 0, 1, KB)
    assert t3 == t1  # reseed restores the sequence


def test_ground_truth_spec_size_mismatch_rejected():
    with pytest.raises(ValueError, match="nodes"):
        SimulatedCluster(random_cluster(4), ground_truth=GroundTruth.random(5))


def test_stats_reset():
    cluster = quiet_cluster()
    run_transfer(cluster, 0, 1, KB)
    assert cluster.stats.messages == 1
    cluster.stats.reset()
    assert cluster.stats.messages == 0
    assert cluster.stats.bytes_sent == 0


def test_escalation_recorded_on_trace_with_rto_label():
    from repro.simlib import Tracer

    spec = table1_cluster()
    cluster = SimulatedCluster(spec, profile=LAM_7_1_3, noise=NoiseModel.none(), seed=3)
    tracer = Tracer()
    cluster.attach_tracer(tracer)
    for _round in range(10):
        cluster.reset()
        for src in range(1, 16):
            cluster.sim.spawn(cluster.transmit(src, 0, 32 * KB))
        cluster.sim.run()
    rto_intervals = [i for i in tracer.intervals if i.label == "R"]
    assert rto_intervals, "ten incast rounds must RTO at least once"
    assert all(i.duration >= LAM_7_1_3.rto_base for i in rto_intervals)
    assert all(i.lane == "port0" for i in rto_intervals)


def test_degrade_node_changes_only_that_node_dynamics():
    cluster = quiet_cluster(n=4, seed=9)
    t_before = run_transfer(cluster, 1, 2, 32 * KB)
    cluster.degrade_node(3, factor=5.0)
    cluster.reset()
    t_after = run_transfer(cluster, 1, 2, 32 * KB)
    assert t_after == pytest.approx(t_before, rel=1e-12)
    cluster.reset()
    t_degraded = run_transfer(cluster, 3, 2, 32 * KB)
    assert t_degraded > t_before
