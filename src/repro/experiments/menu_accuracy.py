"""Extension study: model-driven selection across the full algorithm menu.

Beyond the paper's Fig. 6 (linear vs binomial scatter), a real MPI
implementation switches among many algorithms per operation.  This
experiment scores the estimated extended-LMO model's *decisions* over the
whole menu — broadcast (linear / binomial / pipeline / van de Geijn),
allgather (ring / recursive doubling) and allreduce (recursive doubling /
reduce+bcast / Rabenseifner) — at a small and a large message size each,
against what the simulated cluster actually prefers.
"""

from __future__ import annotations

from repro.experiments.common import KB, ExperimentResult, get_model_suite, paper_cluster
from repro.mpi import run_collective
from repro.predict_service import PredictRequest, predict_many

__all__ = ["run"]

MENU = {
    "bcast": ["linear", "binomial", "pipeline", "van_de_geijn"],
    "allgather": ["ring", "recursive_doubling"],
    "allreduce": ["recursive_doubling", "reduce_bcast", "rabenseifner"],
}
SIZES = {"small": 256, "large": 256 * KB}


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Score menu decisions; check the model agrees with the cluster."""
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    model = suite.lmo
    reps = 3 if quick else 5

    # The whole menu is one batched prediction call.
    menu_requests = [
        PredictRequest(operation, algo, float(nbytes))
        for operation, algorithms in MENU.items()
        for algo in algorithms
        for nbytes in SIZES.values()
    ]
    menu_predictions = dict(zip(
        [(r.operation, r.algorithm, r.nbytes) for r in menu_requests],
        predict_many(model, menu_requests),
    ))

    lines = []
    agreements, regrets = [], []
    for operation, algorithms in MENU.items():
        kwargs = {"combine": (lambda a, b: a)} if operation == "allreduce" else {}
        for label, nbytes in SIZES.items():
            observed = {}
            for algo in algorithms:
                observed[algo] = min(
                    run_collective(cluster, operation, algo, nbytes=nbytes,
                                   **kwargs).time
                    for _ in range(reps)
                )
            predicted = {
                algo: menu_predictions[(operation, algo, float(nbytes))]
                for algo in algorithms
            }
            best_observed = min(observed, key=observed.__getitem__)
            best_predicted = min(predicted, key=predicted.__getitem__)
            agree = best_predicted == best_observed
            # Regret: time lost by following the model instead of the oracle.
            regret = observed[best_predicted] / observed[best_observed] - 1.0
            agreements.append(agree)
            regrets.append(regret)
            lines.append(
                f"{operation:<10} {label:<6} model: {best_predicted:<18} "
                f"oracle: {best_observed:<18} regret {regret:6.1%}"
            )

    agreement_rate = sum(agreements) / len(agreements)
    worst_regret = max(regrets)
    lines.append("")
    lines.append(f"decision agreement: {agreement_rate:.0%}, "
                 f"worst regret {worst_regret:.1%}")
    result = ExperimentResult(
        experiment_id="menu_accuracy",
        title="(extension) LMO-driven algorithm selection across the menu",
        text="\n".join(lines),
    )
    result.checks = {
        "the model agrees with the oracle on most decisions (>=2/3)":
            agreement_rate >= 2 / 3,
        "following the model never costs more than 25% over the oracle":
            worst_regret < 0.25,
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
