"""Unit tests for the declarative alert rules engine."""

import pytest

from repro.obs import runtime as _obs
from repro.obs.insight.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    heal_hook,
)
from repro.obs.insight.detectors import ESCALATED_METRIC, TRANSFER_METRIC
from repro.obs.insight.residuals import ResidualMonitor
from repro.obs.metrics import MetricsRegistry


def test_rule_validation_rejects_nonsense():
    with pytest.raises(ValueError, match="unknown rule kind"):
        AlertRule(name="x", kind="promql", threshold=1.0)
    with pytest.raises(ValueError, match="unknown comparison"):
        AlertRule(name="x", kind="metric_total", metric="m", threshold=1.0, op="!=")
    with pytest.raises(ValueError, match="unknown residual stat"):
        AlertRule(name="x", kind="residual", threshold=1.0, stat="p42")
    with pytest.raises(ValueError, match="needs a metric name"):
        AlertRule(name="x", kind="metric_value", threshold=1.0)
    with pytest.raises(ValueError, match="unknown level"):
        AlertRule(name="x", kind="metric_total", metric="m", threshold=1.0,
                  level="panic")
    with pytest.raises(ValueError, match="duplicate rule names"):
        AlertEngine(rules=[
            AlertRule(name="x", kind="metric_total", metric="m", threshold=1.0),
            AlertRule(name="x", kind="metric_total", metric="m", threshold=2.0),
        ])


def test_metric_value_rule_sums_matching_samples_only():
    reg = MetricsRegistry()
    reg.gauge("breaker_nodes", state="open").set(2)
    reg.gauge("breaker_nodes", state="closed").set(5)
    rule = AlertRule(name="open", kind="metric_value", metric="breaker_nodes",
                     labels=(("state", "open"),), threshold=0.0, op=">")
    engine = AlertEngine(rules=[rule])
    states = engine.evaluate(reg.snapshot())
    assert states[0].value == 2.0
    assert states[0].firing is True
    assert engine.firing() == ["open"]


def test_metric_total_rule_counts_histogram_observations():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", a="1")
    h.observe(0.1)
    h.observe(0.2)
    reg.histogram("lat_seconds", a="2").observe(0.3)
    rule = AlertRule(name="busy", kind="metric_total", metric="lat_seconds",
                     threshold=2.0, op=">")
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].value == 3.0 and states[0].firing


def test_missing_metric_evaluates_to_zero_not_error():
    rule = AlertRule(name="m", kind="metric_value", metric="absent",
                     threshold=1.0)
    states = AlertEngine(rules=[rule]).evaluate({})
    assert states[0].value == 0.0 and not states[0].firing


def test_escalation_rate_rule():
    reg = MetricsRegistry()
    for _ in range(50):
        reg.histogram(TRANSFER_METRIC, lo=0, hi=28).observe(16384)
    for _ in range(3):
        reg.histogram(ESCALATED_METRIC, lo=0, hi=28).observe(16384)
    rule = AlertRule(name="esc", kind="escalation_rate", threshold=0.02, op=">")
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].value == pytest.approx(0.06)
    assert states[0].firing


def test_residual_rule_selects_worst_matching_card():
    reg = MetricsRegistry()
    monitor = ResidualMonitor(reg)
    monitor.record("lmo", "gather/linear", 1024, 1.5, 1.0)   # 50% error
    monitor.record("lmo", "scatter/linear", 1024, 1.05, 1.0)  # 5% error
    snap = reg.snapshot()
    any_card = AlertRule(name="any", kind="residual", stat="max", threshold=0.25)
    scoped = AlertRule(name="scoped", kind="residual", stat="max",
                       threshold=0.25, operation="scatter/linear")
    wrong_model = AlertRule(name="wrong", kind="residual", stat="max",
                            threshold=0.25, model="hockney")
    states = AlertEngine(rules=[any_card, scoped, wrong_model]).evaluate(snap)
    by_name = {s.rule.name: s for s in states}
    assert by_name["any"].firing and by_name["any"].value == pytest.approx(0.5)
    assert not by_name["scoped"].firing
    assert by_name["wrong"].value == 0.0 and not by_name["wrong"].firing


def test_residual_bias_stat_is_absolute():
    reg = MetricsRegistry()
    ResidualMonitor(reg).record("m", "op", 64, 0.5, 1.0)  # bias -0.5
    rule = AlertRule(name="b", kind="residual", stat="bias", threshold=0.25)
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].value == pytest.approx(0.5) and states[0].firing


def test_lifecycle_fires_once_and_resolves_once():
    firing_reg = MetricsRegistry()
    firing_reg.gauge("x").set(10)
    quiet_reg = MetricsRegistry()
    quiet_reg.gauge("x").set(0)
    rule = AlertRule(name="x_high", kind="metric_value", metric="x",
                     threshold=5.0, level="error")
    fired = []
    engine = AlertEngine(rules=[rule], on_fire=lambda r, v: fired.append((r.name, v)))
    tel = _obs.enable(fresh=True)
    engine.evaluate(firing_reg.snapshot())
    engine.evaluate(firing_reg.snapshot())  # still firing: no re-fire
    engine.evaluate(quiet_reg.snapshot())   # falling edge: resolved
    engine.evaluate(quiet_reg.snapshot())
    engine.evaluate(firing_reg.snapshot())  # rising edge again
    assert fired == [("x_high", 10.0), ("x_high", 10.0)]
    assert tel.registry.value("alerts_fired_total", rule="x_high") == 2
    firing_events = tel.events.events("alert_firing")
    resolved_events = tel.events.events("alert_resolved")
    assert len(firing_events) == 2
    assert len(resolved_events) == 1
    assert firing_events[0]["level"] == "error"
    assert firing_events[0]["rule"] == "x_high"
    assert resolved_events[0]["level"] == "info"
    assert engine.firing() == ["x_high"]


def test_engine_works_with_telemetry_off():
    reg = MetricsRegistry()
    reg.gauge("x").set(10)
    rule = AlertRule(name="x_high", kind="metric_value", metric="x", threshold=5.0)
    engine = AlertEngine(rules=[rule])
    assert engine.evaluate(reg.snapshot())[0].firing
    assert engine.firing() == ["x_high"]


class _FakeMaintainer:
    def __init__(self):
        self.cycles = 0

    def cycle(self):
        self.cycles += 1


def test_heal_hook_runs_cycle_only_for_heal_rules():
    maintainer = _FakeMaintainer()
    hook = heal_hook(maintainer)
    heal_rule = AlertRule(name="drift", kind="metric_value", metric="d",
                          threshold=0.1, trigger_heal=True)
    plain_rule = AlertRule(name="other", kind="metric_value", metric="d",
                           threshold=0.1)
    hook(plain_rule, 1.0)
    assert maintainer.cycles == 0
    hook(heal_rule, 1.0)
    assert maintainer.cycles == 1


def test_heal_hook_wired_through_engine_lifecycle():
    maintainer = _FakeMaintainer()
    rule = AlertRule(name="drift_high", kind="metric_value",
                     metric="maintainer_worst_drift", threshold=0.15,
                     trigger_heal=True)
    engine = AlertEngine(rules=[rule], on_fire=heal_hook(maintainer))
    reg = MetricsRegistry()
    reg.gauge("maintainer_worst_drift").set(0.4)
    engine.evaluate(reg.snapshot())
    engine.evaluate(reg.snapshot())  # still firing — one heal only
    assert maintainer.cycles == 1


def test_default_rules_catalog():
    rules = default_rules()
    names = [r.name for r in rules]
    assert names == ["escalation_rate_high", "breaker_open",
                     "model_drift_high", "residual_p95_high",
                     "lease_reclamations_high", "worker_heartbeat_stale",
                     "service_queue_depth_high", "service_p99_latency_high",
                     "service_crash_loop", "service_deadline_shed_high",
                     "service_requests_absent",
                     "slo_service_availability_burn_fast",
                     "slo_service_availability_burn_slow"]
    assert len(set(names)) == len(names)
    assert all(r.description for r in rules)
    heal = [r.name for r in rules if r.trigger_heal]
    assert heal == ["model_drift_high"]
    # The stock set evaluates cleanly against an empty snapshot.
    states = AlertEngine().evaluate({})
    assert [s.firing for s in states] == [False] * len(rules)


def test_metric_ratio_rule_divides_family_sums():
    reg = MetricsRegistry()
    reg.counter("reclaims").inc(3)
    reg.counter("grants", worker="0").inc(2)
    reg.counter("grants", worker="1").inc(2)
    rule = AlertRule(name="r", kind="metric_ratio", metric="reclaims",
                     metric_denom="grants", threshold=0.5, op=">")
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].value == pytest.approx(0.75)
    assert states[0].firing


def test_metric_ratio_rule_is_zero_when_denominator_absent():
    reg = MetricsRegistry()
    reg.counter("reclaims").inc(5)
    rule = AlertRule(name="r", kind="metric_ratio", metric="reclaims",
                     metric_denom="grants", threshold=0.5, op=">")
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].value == 0.0 and not states[0].firing


def test_metric_ratio_rule_requires_denominator():
    with pytest.raises(ValueError, match="denominator"):
        AlertRule(name="r", kind="metric_ratio", metric="a", threshold=0.5)


def test_default_lease_reclamation_rule_fires_on_churny_campaign():
    reg = MetricsRegistry()
    reg.counter("parallel_leases_granted_total").inc(10)
    reg.counter("parallel_units_reclaimed_total").inc(8)
    reg.gauge("parallel_worker_heartbeat_stale").set(1)
    states = AlertEngine().evaluate(reg.snapshot())
    by_name = {s.rule.name: s for s in states}
    assert by_name["lease_reclamations_high"].firing
    assert by_name["lease_reclamations_high"].value == pytest.approx(0.8)
    assert by_name["worker_heartbeat_stale"].firing
    assert by_name["worker_heartbeat_stale"].rule.level == "error"


def test_default_escalation_rate_rule_fires_on_hot_region():
    reg = MetricsRegistry()
    for i in range(100):
        reg.histogram(TRANSFER_METRIC, lo=0, hi=28).observe(32768)
        if i < 5:
            reg.histogram(ESCALATED_METRIC, lo=0, hi=28).observe(32768)
    states = AlertEngine().evaluate(reg.snapshot())
    by_name = {s.rule.name: s for s in states}
    assert by_name["escalation_rate_high"].firing
    assert by_name["escalation_rate_high"].value == pytest.approx(0.05)


def test_rule_to_dict_is_json_ready():
    rule = default_rules()[1]
    doc = rule.to_dict()
    assert doc["name"] == "breaker_open"
    assert doc["labels"] == {"state": "open"}
    assert doc["level"] == "error"


def test_metric_quantile_rule_validation():
    with pytest.raises(ValueError, match="needs a metric name"):
        AlertRule(name="q", kind="metric_quantile", threshold=1.0)
    with pytest.raises(ValueError, match="quantile"):
        AlertRule(name="q", kind="metric_quantile", metric="m",
                  threshold=1.0, quantile=0.0)
    with pytest.raises(ValueError, match="quantile"):
        AlertRule(name="q", kind="metric_quantile", metric="m",
                  threshold=1.0, quantile=1.5)
    rule = AlertRule(name="q", kind="metric_quantile", metric="m",
                     threshold=1.0, quantile=0.99)
    assert rule.to_dict()["quantile"] == 0.99


def test_metric_quantile_rule_merges_buckets_across_samples():
    reg = MetricsRegistry()
    # 99 fast requests on one verb, 9 slow ones on another: the p50 sits
    # in the fast bucket, the p99 in the slow bucket, and both are only
    # visible if the family's samples are merged.
    for _ in range(99):
        reg.histogram("svc_seconds", verb="predict").observe(0.01)
    for _ in range(9):
        reg.histogram("svc_seconds", verb="estimate").observe(2.0)
    snapshot = reg.snapshot()
    p50 = AlertRule(name="p50", kind="metric_quantile", metric="svc_seconds",
                    quantile=0.5, threshold=0.25, op=">")
    p99 = AlertRule(name="p99", kind="metric_quantile", metric="svc_seconds",
                    quantile=0.99, threshold=0.25, op=">")
    states = AlertEngine(rules=[p50, p99]).evaluate(snapshot)
    assert states[0].firing is False and states[0].value < 0.25
    assert states[1].firing is True and states[1].value > 1.0


def test_metric_quantile_rule_respects_label_filters():
    reg = MetricsRegistry()
    for _ in range(10):
        reg.histogram("svc_seconds", verb="predict").observe(0.01)
        reg.histogram("svc_seconds", verb="estimate").observe(2.0)
    rule = AlertRule(name="p99", kind="metric_quantile", metric="svc_seconds",
                     labels=(("verb", "predict"),), quantile=0.99,
                     threshold=0.25, op=">")
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].firing is False and states[0].value < 0.25


def test_metric_quantile_rule_is_quiet_without_data():
    rule = AlertRule(name="p99", kind="metric_quantile", metric="svc_seconds",
                     quantile=0.99, threshold=0.25, op=">")
    # Missing family, and a family of the wrong type, both read as 0.0.
    assert AlertEngine(rules=[rule]).evaluate({})[0].value == 0.0
    reg = MetricsRegistry()
    reg.counter("svc_seconds").inc(5)
    states = AlertEngine(rules=[rule]).evaluate(reg.snapshot())
    assert states[0].value == 0.0 and not states[0].firing


def test_default_service_rules_fire_on_a_struggling_daemon():
    reg = MetricsRegistry()
    reg.gauge("service_queue_depth", worker="predict-0").set(30)
    reg.gauge("service_queue_depth", worker="predict-1").set(30)
    for _ in range(100):
        reg.histogram("service_request_seconds", verb="predict").observe(0.5)
    states = AlertEngine().evaluate(reg.snapshot())
    by_name = {s.rule.name: s for s in states}
    assert by_name["service_queue_depth_high"].firing
    assert by_name["service_queue_depth_high"].value == 60.0
    assert by_name["service_p99_latency_high"].firing
    assert by_name["service_p99_latency_high"].value > 0.25
