"""Analysis utilities: prediction-accuracy scoring and reporting."""

from repro.analysis.accuracy import AccuracyReport, ModelScore, score_models

__all__ = ["AccuracyReport", "ModelScore", "score_models"]
