"""Per-node circuit breakers for estimation campaigns.

A dead or dying node makes every experiment touching it burn a full
timeout-and-retry budget — on a dead node that is ``reps + max_retries``
dead-peer stalls *per experiment*, across every pair and triplet the node
appears in.  The classic remedy is a circuit breaker: after a few
consecutive failures stop trying (OPEN), let the schedule route around
the node, and periodically re-admit it with a single cheap probe
(HALF_OPEN) so a recovered node — a brownout that ended, a daemon that
released the core — rejoins the campaign without operator action.

Time here is *campaign progress*, not wall-clock: an OPEN breaker cools
down for a fixed number of subsequently processed schedule units, which
keeps the state machine deterministic — the same failure pattern always
yields the same reroute, and a resumed campaign reconstructs the exact
breaker state by replaying journal events in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import runtime as _obs

__all__ = ["BreakerPolicy", "BreakerState", "CircuitBreaker", "BreakerBoard"]


def _note_transition(node: int, old: str, new: str) -> None:
    """Telemetry for one breaker state change (cold path — trips are rare)."""
    tel = _obs.ACTIVE
    if tel is None:
        return
    level = "warning" if new == BreakerState.OPEN else "info"
    tel.events.emit("breaker_transition", level=level, node=node, old=old, new=new)
    tel.registry.counter(
        "breaker_transitions_total",
        help="circuit-breaker state transitions",
        to=new,
    ).inc()
    if new == BreakerState.OPEN:
        tel.registry.counter(
            "breaker_opens_total", help="breaker trips to OPEN, per node",
            node=str(node),
        ).inc()
    elif new == BreakerState.HALF_OPEN:
        tel.registry.counter(
            "breaker_half_opens_total", help="breaker probes (HALF_OPEN), per node",
            node=str(node),
        ).inc()


class BreakerState:
    """The three classic states, as string constants (JSON-friendly)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip, and how long to cool down.

    ``failure_threshold`` consecutive failures open a node's breaker;
    it stays open while the campaign processes ``cooldown_units`` more
    schedule units, then goes half-open: the next unit touching the node
    runs as a probe — success closes the breaker, failure re-opens it
    for another full cooldown.
    """

    failure_threshold: int = 3
    cooldown_units: int = 8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_units < 1:
            raise ValueError(f"cooldown_units must be >= 1, got {self.cooldown_units}")

    def to_dict(self) -> dict:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown_units": self.cooldown_units,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BreakerPolicy":
        return cls(
            failure_threshold=int(doc["failure_threshold"]),
            cooldown_units=int(doc["cooldown_units"]),
        )


@dataclass
class CircuitBreaker:
    """One node's breaker.  Driven by the :class:`BreakerBoard`."""

    node: int
    policy: BreakerPolicy
    state: str = BreakerState.CLOSED
    consecutive_failures: int = 0
    total_failures: int = 0
    total_successes: int = 0
    #: Number of times this breaker has tripped OPEN.
    trips: int = 0
    #: Unit counter value at which an OPEN breaker may go half-open.
    _reopen_at: int = 0

    def allows(self, unit_counter: int) -> bool:
        """May a unit touching this node run right now?

        An OPEN breaker whose cooldown has elapsed transitions to
        HALF_OPEN here (and admits the unit as its probe).
        """
        if self.state == BreakerState.OPEN:
            if unit_counter >= self._reopen_at:
                self.state = BreakerState.HALF_OPEN
                if _obs.ACTIVE is not None:
                    _note_transition(self.node, BreakerState.OPEN, BreakerState.HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        self.total_successes += 1
        self.consecutive_failures = 0
        if self.state != BreakerState.CLOSED and _obs.ACTIVE is not None:
            _note_transition(self.node, self.state, BreakerState.CLOSED)
        self.state = BreakerState.CLOSED

    def record_failure(self, unit_counter: int) -> None:
        self.total_failures += 1
        self.consecutive_failures += 1
        if self.state == BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN for a full cooldown.
            self._trip(unit_counter)
        elif self.consecutive_failures >= self.policy.failure_threshold:
            self._trip(unit_counter)

    def _trip(self, unit_counter: int) -> None:
        old = self.state
        self.state = BreakerState.OPEN
        self.trips += 1
        self._reopen_at = unit_counter + self.policy.cooldown_units
        if _obs.ACTIVE is not None:
            _note_transition(self.node, old, BreakerState.OPEN)

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "trips": self.trips,
        }


@dataclass
class BreakerBoard:
    """All per-node breakers of one campaign, plus the unit counter.

    The board is advanced once per processed schedule unit
    (:meth:`advance`) whether the unit ran, failed or was skipped — the
    cooldown clock is campaign progress.  Event application is pure and
    order-deterministic, so a resumed campaign rebuilds the identical
    board by replaying the journal's outcome sequence.
    """

    n: int
    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    unit_counter: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"need n >= 1 nodes, got {self.n}")
        self.breakers = [CircuitBreaker(node, self.policy) for node in range(self.n)]

    # -- campaign-facing API -------------------------------------------------
    def allows(self, nodes: Iterable[int]) -> bool:
        """True when every breaker involved admits the unit."""
        return all(self.breakers[node].allows(self.unit_counter) for node in nodes)

    def record_success(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            self.breakers[node].record_success()

    def record_failure(self, nodes: Iterable[int]) -> None:
        """Blame the breakers for a failed unit.

        A failure cannot be attributed to one participant — unless some
        participants are HALF_OPEN: then the unit was their re-admission
        probe, the prime suspects stay guilty, and closed-breaker
        bystanders are not charged.  Without this, one dead node opens
        every breaker it shares probe units with.
        """
        involved = [self.breakers[node] for node in nodes]
        probing = [b for b in involved if b.state == BreakerState.HALF_OPEN]
        for breaker in probing if probing else involved:
            breaker.record_failure(self.unit_counter)

    def advance(self) -> None:
        """Account one processed schedule unit (run, failed or skipped)."""
        self.unit_counter += 1

    # -- reporting -----------------------------------------------------------
    def open_nodes(self) -> list[int]:
        """Nodes currently routed around (OPEN breakers)."""
        return [b.node for b in self.breakers if b.state == BreakerState.OPEN]

    def state_counts(self) -> dict[str, int]:
        counts = {BreakerState.CLOSED: 0, BreakerState.OPEN: 0, BreakerState.HALF_OPEN: 0}
        for breaker in self.breakers:
            counts[breaker.state] += 1
        return counts

    def to_dict(self) -> dict:
        return {
            "policy": self.policy.to_dict(),
            "unit_counter": self.unit_counter,
            "counts": self.state_counts(),
            "nodes": [b.to_dict() for b in self.breakers],
        }

    def summary(self) -> str:
        counts = self.state_counts()
        lines = [
            f"breakers: {counts['closed']} closed, {counts['open']} open, "
            f"{counts['half_open']} half-open"
        ]
        for breaker in self.breakers:
            if breaker.state != BreakerState.CLOSED or breaker.total_failures:
                lines.append(
                    f"  node {breaker.node}: {breaker.state} "
                    f"({breaker.total_failures} failures, "
                    f"{breaker.total_successes} successes, "
                    f"{breaker.trips} trips)"
                )
        return "\n".join(lines)
