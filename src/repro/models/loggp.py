"""The LogGP model [Alexandrov et al., SPAA 1995] (paper Sec. II).

LogGP extends LogP with a *gap per byte* ``G`` so long messages are
first-class: a point-to-point transfer costs ``L + 2o + (M-1) G``, and a
train of ``m`` messages costs ``L + 2o + (M-1) G + (m-1) g``.  Both gap
parameters still mix processor and network contributions — the paper's
core criticism — so the model cannot distinguish root-CPU serialization
from switch parallelism in collectives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import (
    ArrayLike,
    broadcast_result,
    validate_nbytes_batch,
    validate_rank_batch,
)

__all__ = ["LogGPModel"]


@dataclass(frozen=True)
class LogGPModel:
    """Homogeneous LogGP parameters.

    Attributes
    ----------
    L:
        Latency, seconds (constant network contribution).
    o:
        Overhead, seconds (constant processor contribution).
    g:
        Gap per *message*, seconds (constant mixed contribution between
        back-to-back messages).
    G:
        Gap per *byte*, seconds/byte (variable mixed contribution).
    P:
        Number of processors.
    """

    L: float
    o: float
    g: float
    G: float
    P: int

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g, self.G) < 0:
            raise ValueError(f"negative LogGP parameters: {self}")
        if self.P < 2:
            raise ValueError("a communication model needs P >= 2")

    @property
    def n(self) -> int:
        """Processor count (protocol-compatible alias of ``P``)."""
        return self.P

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``L + 2o + (M-1) G`` (zero-byte messages cost ``L + 2o``)."""
        return float(self.p2p_time_batch(i, j, nbytes))

    def p2p_time_batch(self, i: ArrayLike, j: ArrayLike, nbytes: ArrayLike) -> np.ndarray:
        """Vectorized ``L + 2o + (M-1) G`` over broadcastable arrays."""
        validate_rank_batch(self.P, i, j)
        nb = validate_nbytes_batch(nbytes)
        return broadcast_result(
            self.L + 2 * self.o + np.maximum(nb - 1, 0) * self.G, i, j, nb
        )

    def message_train_time(self, nbytes: float, count: int) -> float:
        """``L + 2o + (M-1) G + (m-1) g`` for ``m`` same-size messages."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return self.p2p_time(0, 1, nbytes) + (count - 1) * self.g

    def bandwidth(self) -> float:
        """Asymptotic bandwidth ``1/G``, bytes/second."""
        return 1.0 / self.G if self.G > 0 else float("inf")

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary."""
        return {"L": self.L, "o": self.o, "g": self.g, "G": self.G, "P": self.P}

    @classmethod
    def from_dict(cls, params: dict) -> "LogGPModel":
        """Inverse of :meth:`to_dict`."""
        return cls(L=params["L"], o=params["o"], g=params["g"], G=params["G"],
                   P=params["P"])
