"""Figure 6: algorithm selection for scatter, 100 KB < M < 200 KB.

"Similarly to [14], the Hockney model mispredicts that the binomial
algorithm outperforms the linear one, switching in favour of the first,
whereas the decision based on the LMO approximation will be correct."

We measure both algorithms, predict both with het-Hockney and LMO, and
compare the decisions against the observed winner.
"""

from __future__ import annotations

from repro.experiments.common import (
    KB,
    ExperimentResult,
    Series,
    get_model_suite,
    observation_benchmark,
    paper_cluster,
)
from repro.optimize import predict_algorithms

__all__ = ["run"]

SIZES_FULL = tuple(int(m * KB) for m in (100, 120, 140, 160, 180, 200))
SIZES_QUICK = tuple(int(m * KB) for m in (100, 150, 200))


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 6 (series in seconds, sizes in bytes)."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    bench = observation_benchmark(cluster, quick)

    observed_linear, observed_binomial = [], []
    hockney_linear, hockney_binomial = [], []
    lmo_linear, lmo_binomial = [], []
    decisions = []
    for m in sizes:
        observed_linear.append(bench.measure("scatter", "linear", m).mean)
        observed_binomial.append(bench.measure("scatter", "binomial", m).mean)
        hockney = predict_algorithms(suite.hockney_het, "scatter", m)
        lmo = predict_algorithms(suite.lmo, "scatter", m)
        hockney_linear.append(hockney.predictions["linear"])
        hockney_binomial.append(hockney.predictions["binomial"])
        lmo_linear.append(lmo.predictions["linear"])
        lmo_binomial.append(lmo.predictions["binomial"])
        observed_best = (
            "linear" if observed_linear[-1] < observed_binomial[-1] else "binomial"
        )
        decisions.append((m, observed_best, hockney.best, lmo.best))

    result = ExperimentResult(
        experiment_id="fig6",
        title="Linear vs binomial scatter, 100 KB < M < 200 KB: decisions",
        series=[
            Series("obs-linear", sizes, tuple(observed_linear)),
            Series("obs-binomial", sizes, tuple(observed_binomial)),
            Series("hockney-linear", sizes, tuple(hockney_linear)),
            Series("hockney-binomial", sizes, tuple(hockney_binomial)),
            Series("lmo-linear", sizes, tuple(lmo_linear)),
            Series("lmo-binomial", sizes, tuple(lmo_binomial)),
        ],
    )
    result.checks = {
        "the linear algorithm actually wins at every size": all(
            obs == "linear" for _m, obs, _h, _l in decisions
        ),
        # The Hockney margin between the two algorithms is tiny (its two
        # formulas differ only in how constants accumulate), so with
        # estimated parameters the misprediction can flip back near the
        # top of the band; the paper's claim is the switch inside it.
        "Hockney mispredicts (switches to binomial) within the band": any(
            hock == "binomial" for _m, _obs, hock, _l in decisions
        ),
        # The margin shrinks up the band (both Hockney formulas share the
        # 15*beta*M variable part); the guaranteed misprediction is at
        # the bottom, where 11 alpha dominates the tiny path premium.
        "Hockney mispredicts at 100 KB": next(
            hock for m, _obs, hock, _l in decisions if m == 100 * KB
        ) == "binomial",
        "LMO decides correctly at every size": all(
            lmo == "linear" for _m, _obs, _h, lmo in decisions
        ),
    }
    for m, obs, hock, lmo in decisions:
        result.notes.append(
            f"M={m // KB:3d} KB: observed winner {obs}, Hockney picks {hock}, "
            f"LMO picks {lmo}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
