"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.common import Series
from repro.experiments.plotting import SYMBOLS, ascii_chart

KB = 1024


def make_series():
    sizes = tuple(KB * m for m in (1, 2, 4, 8))
    a = Series("a", sizes, (0.001, 0.002, 0.004, 0.008))
    b = Series("b", sizes, (0.002, 0.004, 0.008, 0.016))
    return a, b


def test_chart_contains_symbols_and_legend():
    a, b = make_series()
    text = ascii_chart([a, b], title="demo")
    assert text.startswith("demo")
    assert "o=a" in text and "x=b" in text
    assert "1K" in text and "8K" in text
    # The max value labels the top of the y axis (in ms).
    assert "16.00" in text


def test_earlier_series_wins_overlaps():
    sizes = (KB, 2 * KB)
    a = Series("front", sizes, (0.001, 0.001))
    b = Series("back", sizes, (0.001, 0.001))  # identical points
    text = ascii_chart([a, b])
    assert "o" in text
    # 'x' only appears in the legend, never on the canvas.
    canvas = "\n".join(line for line in text.splitlines() if "legend" not in line)
    assert "x" not in canvas


def test_chart_validation():
    a, b = make_series()
    with pytest.raises(ValueError, match="nothing to plot"):
        ascii_chart([])
    with pytest.raises(ValueError, match="legible"):
        ascii_chart([a], width=5)
    with pytest.raises(ValueError, match="share the size grid"):
        ascii_chart([a, Series("c", (1, 2), (0.1, 0.2))])
    too_many = [Series(f"s{i}", a.sizes, a.values) for i in range(len(SYMBOLS) + 1)]
    with pytest.raises(ValueError, match="at most"):
        ascii_chart(too_many)
    zero = Series("z", a.sizes, (0.0,) * 4)
    with pytest.raises(ValueError, match="positive"):
        ascii_chart([zero])


def test_chart_handles_single_point_grid():
    s = Series("only", (KB,), (0.005,))
    text = ascii_chart([s])
    assert "o" in text


def test_report_embeds_charts():
    import io

    from repro.experiments.report import generate_report

    buffer = io.StringIO()
    generate_report(quick=True, stream=buffer)
    text = buffer.getvalue()
    assert "legend: o=observed" in text  # fig1's chart made it in
