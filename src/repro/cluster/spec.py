"""Cluster hardware specifications, including the paper's Table I cluster.

The paper validates the LMO model on a 16-node heterogeneous cluster with a
single Ethernet switch (Table I).  :func:`table1_cluster` reconstructs that
cluster; :func:`homogeneous_cluster` and :func:`random_cluster` build
synthetic clusters for tests and property-based checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "NodeType",
    "ClusterSpec",
    "TABLE1_NODE_TYPES",
    "table1_cluster",
    "homogeneous_cluster",
    "random_cluster",
]


@dataclass(frozen=True)
class NodeType:
    """One hardware configuration (a row of the paper's Table I).

    Attributes
    ----------
    model:
        Vendor model string, e.g. ``"Dell Poweredge 750"``.
    os:
        Operating system (``"FC4"`` or ``"Debian"`` in the paper).
    processor:
        Processor description, e.g. ``"3.4 Xeon"``.
    cpu_ghz:
        Clock speed in GHz.
    fsb_mhz:
        Front-side-bus speed in MHz (memory-bandwidth proxy).
    l2_cache_kb:
        L2 cache size in KB.
    arch_factor:
        Per-clock efficiency relative to a Pentium 4 (Opterons of the era
        did far more per cycle; Celerons less).  Used by the ground-truth
        parameter synthesis in :mod:`repro.cluster.params`.
    """

    model: str
    os: str
    processor: str
    cpu_ghz: float
    fsb_mhz: int
    l2_cache_kb: int
    arch_factor: float = 1.0

    @property
    def effective_ghz(self) -> float:
        """Architecture-adjusted clock speed (per-clock efficiency applied)."""
        return self.cpu_ghz * self.arch_factor


#: The seven node types of the paper's Table I, with their multiplicities.
TABLE1_NODE_TYPES: tuple[tuple[NodeType, int], ...] = (
    (NodeType("Dell Poweredge SC1425", "FC4", "3.6 Xeon", 3.6, 800, 2048, 1.05), 2),
    (NodeType("Dell Poweredge 750", "FC4", "3.4 Xeon", 3.4, 800, 1024, 1.05), 6),
    (NodeType("IBM E-server 326", "Debian", "1.8 AMD Opteron", 1.8, 1000, 1024, 2.1), 2),
    (NodeType("IBM X-Series 306", "Debian", "3.2 P4", 3.2, 800, 1024, 1.0), 1),
    (NodeType("HP Proliant DL 320 G3", "FC4", "3.4 P4", 3.4, 800, 1024, 1.0), 1),
    (NodeType("HP Proliant DL 320 G3", "FC4", "2.9 Celeron", 2.9, 533, 256, 0.8), 1),
    (NodeType("HP Proliant DL 140 G2", "Debian", "3.4 Xeon", 3.4, 800, 1024, 1.05), 3),
)


@dataclass(frozen=True)
class ClusterSpec:
    """An ordered collection of nodes attached to one switch.

    Node order defines MPI rank order throughout the package.
    """

    nodes: tuple[NodeType, ...]
    name: str = "cluster"

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError(f"a cluster needs >= 2 nodes, got {len(self.nodes)}")

    @property
    def n(self) -> int:
        """Number of nodes (MPI world size)."""
        return len(self.nodes)

    @property
    def node_type_counts(self) -> list[tuple[NodeType, int]]:
        """Distinct node types with multiplicities, in first-seen order."""
        counts: dict[NodeType, int] = {}
        for node in self.nodes:
            counts[node] = counts.get(node, 0) + 1
        return list(counts.items())

    def is_homogeneous(self) -> bool:
        """True when every node has the same type."""
        return len(set(self.nodes)) == 1

    def to_dict(self) -> dict:
        """Schema-v2 parameter dictionary (see :mod:`repro.io`)."""
        return {
            "name": self.name,
            "nodes": [
                {
                    "model": node.model, "os": node.os, "processor": node.processor,
                    "cpu_ghz": node.cpu_ghz, "fsb_mhz": node.fsb_mhz,
                    "l2_cache_kb": node.l2_cache_kb, "arch_factor": node.arch_factor,
                }
                for node in self.nodes
            ],
        }

    @classmethod
    def from_dict(cls, params: dict) -> "ClusterSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            nodes=tuple(NodeType(**node) for node in params["nodes"]),
            name=params["name"],
        )

    def describe(self) -> str:
        """Human-readable table (mirrors the layout of the paper's Table I)."""
        header = (
            f"{'Model':<24}{'OS':<8}{'Processor':<18}{'FSB':<8}{'L2':<8}{'#':>3}"
        )
        lines = [f"Cluster {self.name!r}: {self.n} nodes, single switch", header]
        for node, count in self.node_type_counts:
            lines.append(
                f"{node.model:<24}{node.os:<8}{node.processor:<18}"
                f"{node.fsb_mhz:<8}{node.l2_cache_kb:<8}{count:>3}"
            )
        return "\n".join(lines)


def table1_cluster() -> ClusterSpec:
    """The paper's 16-node heterogeneous cluster (Table I)."""
    nodes: list[NodeType] = []
    for node_type, count in TABLE1_NODE_TYPES:
        nodes.extend([node_type] * count)
    return ClusterSpec(tuple(nodes), name="ucd-hcl-16")


def homogeneous_cluster(n: int, node_type: Optional[NodeType] = None) -> ClusterSpec:
    """A homogeneous ``n``-node cluster (defaults to the Poweredge 750 type)."""
    if node_type is None:
        node_type = TABLE1_NODE_TYPES[1][0]
    return ClusterSpec((node_type,) * n, name=f"homogeneous-{n}")


def random_cluster(n: int, seed: int = 0) -> ClusterSpec:
    """A random heterogeneous cluster drawn from the Table I node types.

    Deterministic given ``seed``; used by property-based tests.
    """
    rng = np.random.default_rng(seed)
    pool = [node_type for node_type, _count in TABLE1_NODE_TYPES]
    nodes = tuple(pool[i] for i in rng.integers(0, len(pool), size=n))
    return ClusterSpec(nodes, name=f"random-{n}-seed{seed}")
