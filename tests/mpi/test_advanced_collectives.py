"""Tests for pipeline bcast and recursive-doubling collectives."""

import numpy as np
import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.mpi import run_collective

KB = 1024


def quiet_cluster(n=8, seed=0):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


# ------------------------------------------------------------ pipeline bcast
def test_pipeline_bcast_delivers_payload_to_everyone():
    cluster = quiet_cluster(n=6)
    payload = np.arange(64, dtype=np.uint8)
    run = run_collective(cluster, "bcast", "pipeline", nbytes=64, root=2, data=payload)
    for rank in range(6):
        assert (np.asarray(run.value(rank)) == payload).all()


def test_pipeline_bcast_beats_linear_for_large_messages():
    """Once the pipe fills, every link streams concurrently: the chain
    beats the root-serialized linear broadcast for big payloads."""
    cluster = quiet_cluster(n=8, seed=1)
    M = 256 * KB
    t_linear = run_collective(cluster, "bcast", "linear", nbytes=M).time
    t_pipeline = run_collective(
        cluster, "bcast", "pipeline", nbytes=M, segment_nbytes=16 * KB
    ).time
    assert t_pipeline < t_linear


def test_pipeline_bcast_segment_tradeoff():
    """Tiny segments pay per-segment constants; huge segments lose the
    overlap — a middle segment size beats both extremes."""
    cluster = quiet_cluster(n=8, seed=2)
    M = 128 * KB
    times = {
        seg: run_collective(cluster, "bcast", "pipeline", nbytes=M,
                            segment_nbytes=seg).time
        for seg in (256, 16 * KB, M)
    }
    assert times[16 * KB] < times[256]
    assert times[16 * KB] < times[M]


def test_pipeline_bcast_zero_bytes_and_validation():
    cluster = quiet_cluster(n=4, seed=3)
    run = run_collective(cluster, "bcast", "pipeline", nbytes=0)
    assert run.time > 0  # constants only
    with pytest.raises(Exception, match="segment"):
        run_collective(cluster, "bcast", "pipeline", nbytes=64, segment_nbytes=0)


# ------------------------------------------------- recursive doubling allgather
def test_rd_allgather_everyone_gets_everything():
    cluster = quiet_cluster(n=8, seed=4)
    data = [np.full(4, rank, dtype=np.uint8) for rank in range(8)]
    run = run_collective(cluster, "allgather", "recursive_doubling", nbytes=4, data=data)
    for rank in range(8):
        blocks = run.value(rank)
        for src, block in enumerate(blocks):
            assert (np.asarray(block) == src).all()


def test_rd_allgather_fewer_rounds_than_ring_for_small_blocks():
    """log2(n) rounds vs n-1 ring steps: latency-bound sizes favour it."""
    cluster = quiet_cluster(n=8, seed=5)
    t_rd = run_collective(cluster, "allgather", "recursive_doubling", nbytes=64).time
    t_ring = run_collective(cluster, "allgather", "ring", nbytes=64).time
    assert t_rd < t_ring


def test_rd_allgather_requires_power_of_two():
    cluster = quiet_cluster(n=6, seed=6)
    with pytest.raises(Exception, match="power-of-two"):
        run_collective(cluster, "allgather", "recursive_doubling", nbytes=64)


# ------------------------------------------------------------------ allreduce
@pytest.mark.parametrize("algorithm", ["recursive_doubling", "reduce_bcast"])
def test_allreduce_combines_on_every_rank(algorithm):
    cluster = quiet_cluster(n=8, seed=7)
    data = [rank + 1 for rank in range(8)]
    run = run_collective(
        cluster, "allreduce", algorithm, nbytes=8, data=data,
        combine=lambda a, b: (a or 0) + (b or 0),
    )
    for rank in range(8):
        assert run.value(rank) == sum(data)


def test_rd_allreduce_requires_power_of_two():
    cluster = quiet_cluster(n=5, seed=8)
    with pytest.raises(Exception, match="power-of-two"):
        run_collective(cluster, "allreduce", "recursive_doubling", nbytes=8)


def test_reduce_bcast_works_for_any_size():
    cluster = quiet_cluster(n=5, seed=9)
    data = [float(rank) for rank in range(5)]
    run = run_collective(
        cluster, "allreduce", "reduce_bcast", nbytes=8, data=data,
        combine=lambda a, b: max(a or 0.0, b or 0.0),
    )
    assert all(run.value(rank) == 4.0 for rank in range(5))


def test_rd_allreduce_latency_beats_reduce_bcast():
    """One butterfly (log n rounds) vs two binomial trees (2 log n)."""
    cluster = quiet_cluster(n=8, seed=10)
    t_rd = run_collective(cluster, "allreduce", "recursive_doubling", nbytes=64).time
    t_rb = run_collective(cluster, "allreduce", "reduce_bcast", nbytes=64).time
    assert t_rd < t_rb
