"""Shared fixtures for the prediction-service tests.

The daemon enables process-global telemetry when configured to; never
let that leak into other test modules.
"""

import pytest

from repro.cluster import GroundTruth
from repro.models import ExtendedLMOModel, GatherIrregularity
from repro.obs import runtime as _obs

KB = 1024


@pytest.fixture(autouse=True)
def _telemetry_off():
    _obs.disable()
    yield
    _obs.disable()


def make_model(n: int = 6, seed: int = 2, irregular: bool = True):
    """A deterministic extended-LMO model without running estimation."""
    irr = None
    if irregular:
        irr = GatherIrregularity(m1=4 * KB, m2=65 * KB,
                                 escalation_value=0.22, p_at_m2=0.7)
    return ExtendedLMOModel.from_ground_truth(GroundTruth.random(n, seed=seed), irr)


@pytest.fixture(scope="module")
def model():
    return make_model()
