"""FIFO and priority resources for the DES kernel.

A :class:`Resource` models a facility with fixed capacity (a CPU core, a NIC,
a switch port).  Processes acquire a slot, hold it for some activity, and
release it; waiters queue in FIFO (or priority) order.

Typical usage inside a process generator::

    usage = resource.request()
    yield usage                 # granted when a slot frees up
    yield sim.timeout(cost)     # hold the resource
    resource.release(usage)

or, with the convenience wrapper::

    yield from resource.hold(sim, cost)
"""

from __future__ import annotations

import heapq
from typing import Generator, Optional

from repro.simlib.kernel import URGENT, Event, SimulationError, Simulator

__all__ = ["Resource", "PriorityResource", "ResourceUsage"]


class ResourceUsage(Event):
    """The grant event for one resource request; token used for release."""

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.order = resource._order
        resource._order += 1


class Resource:
    """A capacity-limited facility with FIFO queueing.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Number of concurrent holders (>= 1).
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._order = 0
        self._users: set[ResourceUsage] = set()
        self._waiters: list[ResourceUsage] = []

    # -- inspection -------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._waiters)

    @property
    def busy(self) -> bool:
        """True when at least one slot is held or requested."""
        return bool(self._users or self._waiters)

    # -- acquire/release ----------------------------------------------------
    def request(self, priority: int = 0) -> ResourceUsage:
        """Ask for a slot; the returned event fires when granted."""
        usage = ResourceUsage(self, priority)
        if len(self._users) < self.capacity and not self._waiters:
            self._users.add(usage)
            usage.succeed(usage, priority=URGENT)
        else:
            self._enqueue(usage)
        return usage

    def release(self, usage: ResourceUsage) -> None:
        """Free a previously granted slot and wake the next waiter."""
        if usage not in self._users:
            raise SimulationError(f"release of non-held usage on {self.name or 'resource'}")
        self._users.remove(usage)
        nxt = self._dequeue()
        if nxt is not None:
            self._users.add(nxt)
            nxt.succeed(nxt, priority=URGENT)

    def hold(self, sim: Simulator, duration: float, priority: int = 0) -> Generator:
        """Acquire, hold for ``duration``, release (generator helper)."""
        usage = self.request(priority)
        yield usage
        try:
            yield sim.timeout(duration)
        finally:
            self.release(usage)

    # -- queue discipline (overridden by PriorityResource) -----------------
    def _enqueue(self, usage: ResourceUsage) -> None:
        self._waiters.append(usage)

    def _dequeue(self) -> Optional[ResourceUsage]:
        if self._waiters:
            return self._waiters.pop(0)
        return None


class PriorityResource(Resource):
    """Resource whose waiters are served by (priority, arrival order)."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        super().__init__(sim, capacity, name)
        self._heap: list[tuple[int, int, ResourceUsage]] = []

    def _enqueue(self, usage: ResourceUsage) -> None:
        heapq.heappush(self._heap, (usage.priority, usage.order, usage))

    def _dequeue(self) -> Optional[ResourceUsage]:
        if self._heap:
            return heapq.heappop(self._heap)[2]
        return None

    @property
    def queue_length(self) -> int:
        return len(self._heap)

    @property
    def busy(self) -> bool:
        return bool(self._users or self._heap)
