"""Extended-LMO predictions for the wider collective-algorithm menu.

The paper claims its intuitive models can express "the execution time of
any collective communication operation ... as a combination of maximums
and sums of the point-to-point parameters".  This module exercises that
claim beyond scatter/gather: broadcast (linear, binomial, pipeline),
ring and recursive-doubling allgather, and both allreduce compositions —
each expressed in the same serial-processor / parallel-network split.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.models.base import ArrayLike, validate_nbytes, validate_nbytes_batch, validate_rank
from repro.models.collectives.tree_eval import predict_tree_time, predict_tree_time_batch
from repro.models.collectives.trees import CommTree, binomial_tree
from repro.models.lmo_extended import ExtendedLMOModel

__all__ = [
    "predict_linear_bcast",
    "predict_binomial_bcast",
    "predict_pipeline_bcast",
    "predict_ring_allgather",
    "predict_rd_allgather",
    "predict_rd_allreduce",
    "predict_reduce_bcast_allreduce",
    "predict_collective",
    "predict_collective_sweep",
]


def predict_linear_bcast(model: ExtendedLMOModel, nbytes: float, root: int = 0) -> float:
    """Linear bcast: like linear scatter with every block the full message."""
    validate_nbytes(nbytes)
    validate_rank(model.n, root)
    others = [i for i in range(model.n) if i != root]
    serial = len(others) * model.send_cost(root, nbytes)
    parallel = max(model.wire_and_remote_cost(root, i, nbytes) for i in others)
    return float(serial + parallel)


def predict_binomial_bcast(
    model: ExtendedLMOModel,
    nbytes: float,
    root: int = 0,
    tree: Optional[CommTree] = None,
) -> float:
    """Binomial bcast: the scatter recursion with constant arc volume."""
    validate_nbytes(nbytes)
    if tree is None:
        tree = binomial_tree(model.n, root)

    def serial(i: int, _j: int, arc_nbytes: float) -> float:
        del arc_nbytes
        return model.send_cost(i, nbytes)

    def parallel(i: int, j: int, arc_nbytes: float) -> float:
        del arc_nbytes
        return model.wire_and_remote_cost(i, j, nbytes)

    # Pass block size 1 so arc volumes don't scale with sub-tree size:
    # every bcast arc carries the full message, captured via the closures.
    return predict_tree_time(tree, 1.0, serial, parallel)


def predict_pipeline_bcast(
    model: ExtendedLMOModel,
    nbytes: float,
    segment_nbytes: float,
    root: int = 0,
) -> float:
    """Chain bcast in segments: pipe fill plus steady-state draining.

    fill  = one segment traversing the whole chain;
    drain = remaining segments behind the chain's bottleneck stage (each
    intermediate node handles a segment twice: receive + forward).
    """
    validate_nbytes(nbytes)
    validate_rank(model.n, root)
    if segment_nbytes <= 0:
        raise ValueError("segment_nbytes must be positive")
    n = model.n
    chain = [(root + k) % n for k in range(n)]
    segments = max(1, math.ceil(nbytes / segment_nbytes))
    seg = min(segment_nbytes, nbytes) if nbytes else 0.0

    fill = 0.0
    stage_costs = []
    for u, v in zip(chain, chain[1:]):
        hop = (
            model.send_cost(u, seg)
            + model.L[u, v]
            + seg / model.beta[u, v]
            + model.send_cost(v, seg)
        )
        fill += hop
        stage_costs.append(hop)
    # Intermediate nodes touch every segment twice (receive then forward).
    for v in chain[1:-1]:
        stage_costs.append(2 * model.send_cost(v, seg))
    bottleneck = max(stage_costs)
    return float(fill + (segments - 1) * bottleneck)


def predict_ring_allgather(model: ExtendedLMOModel, nbytes: float) -> float:
    """Ring allgather: ``n-1`` synchronized steps behind the slowest link."""
    validate_nbytes(nbytes)
    n = model.n
    step = max(
        model.send_cost(r, nbytes)
        + model.L[r, (r + 1) % n]
        + nbytes / model.beta[r, (r + 1) % n]
        + model.send_cost((r + 1) % n, nbytes)
        for r in range(n)
    )
    return float((n - 1) * step)


def _rd_rounds(model: ExtendedLMOModel, volume_at_round) -> float:
    """Shared butterfly evaluation: sum over rounds of the worst pairwise
    exchange at that round's volume."""
    n = model.n
    if n & (n - 1):
        raise ValueError(f"recursive doubling requires a power-of-two n, got {n}")
    total = 0.0
    distance = 1
    round_idx = 0
    while distance < n:
        volume = volume_at_round(round_idx)
        total += max(
            # Full-duplex exchange: both directions overlap; the pair is
            # done after one wire plus both endpoints' processing.
            model.send_cost(r, volume)
            + model.L[r, r ^ distance]
            + volume / model.beta[r, r ^ distance]
            + model.send_cost(r ^ distance, volume)
            for r in range(n)
        )
        distance <<= 1
        round_idx += 1
    return float(total)


def predict_rd_allgather(model: ExtendedLMOModel, block_nbytes: float) -> float:
    """Recursive-doubling allgather: round k moves ``2^k`` blocks."""
    validate_nbytes(block_nbytes)
    return _rd_rounds(model, lambda k: (1 << k) * block_nbytes)


def predict_rd_allreduce(model: ExtendedLMOModel, nbytes: float) -> float:
    """Recursive-doubling allreduce: every round moves the full vector and
    pays one combining pass (``nbytes * t``) on each endpoint."""
    validate_nbytes(nbytes)
    base = _rd_rounds(model, lambda _k: nbytes)
    rounds = int(math.log2(model.n))
    combine = rounds * nbytes * float(model.t.max())
    return base + combine


def predict_reduce_bcast_allreduce(
    model: ExtendedLMOModel, nbytes: float, root: int = 0
) -> float:
    """Allreduce as binomial reduce + binomial bcast (both trees maxed)."""
    from repro.models.collectives.formulas import predict_binomial_gather

    validate_nbytes(nbytes)
    tree = binomial_tree(model.n, root)
    # Reduce ~ binomial gather with constant arc volume + combine passes.
    def serial(i: int, _j: int, _b: float) -> float:
        return model.send_cost(i, nbytes)

    def parallel(i: int, j: int, _b: float) -> float:
        return model.wire_and_remote_cost(i, j, nbytes) + nbytes * float(model.t[j])

    reduce_time = predict_tree_time(tree, 1.0, serial, parallel)
    del predict_binomial_gather  # documented relation; not reused directly
    return float(reduce_time + predict_binomial_bcast(model, nbytes, root=root, tree=tree))


#: (operation, algorithm) -> predictor over the extended LMO model.
_PREDICTORS = {
    ("bcast", "linear"): lambda m, nb, **kw: predict_linear_bcast(m, nb, **kw),
    ("bcast", "binomial"): lambda m, nb, **kw: predict_binomial_bcast(m, nb, **kw),
    ("bcast", "pipeline"): lambda m, nb, segment_nbytes=8192, **kw: predict_pipeline_bcast(
        m, nb, segment_nbytes, **kw
    ),
    ("allgather", "ring"): lambda m, nb, **_kw: predict_ring_allgather(m, nb),
    ("allgather", "recursive_doubling"): lambda m, nb, **_kw: predict_rd_allgather(m, nb),
    ("allreduce", "recursive_doubling"): lambda m, nb, **_kw: predict_rd_allreduce(m, nb),
    ("allreduce", "reduce_bcast"): lambda m, nb, **kw: predict_reduce_bcast_allreduce(
        m, nb, **kw
    ),
}


def predict_collective(
    model: ExtendedLMOModel, operation: str, algorithm: str, nbytes: float, **kwargs
) -> float:
    """Unified entry point for the extended-algorithm predictions."""
    try:
        predictor = _PREDICTORS[(operation, algorithm)]
    except KeyError:
        known = sorted(f"{op}/{algo}" for op, algo in _PREDICTORS)
        raise KeyError(
            f"no predictor for {operation}/{algorithm}; available: {', '.join(known)}"
        ) from None
    return predictor(model, nbytes, **kwargs)


def predict_vdg_bcast(model: ExtendedLMOModel, nbytes: float, root: int = 0) -> float:
    """van de Geijn bcast: binomial scatter of segments + ring allgather."""
    validate_nbytes(nbytes)
    from repro.models.collectives.formulas import predict_binomial_scatter

    segment = nbytes / model.n
    return float(
        predict_binomial_scatter(model, segment, root=root)
        + predict_ring_allgather(model, segment)
    )


def predict_ring_reduce_scatter(model: ExtendedLMOModel, block_nbytes: float) -> float:
    """Ring reduce-scatter: n-1 steps behind the slowest exchange+combine."""
    validate_nbytes(block_nbytes)
    n = model.n
    step = max(
        model.send_cost(r, block_nbytes)
        + model.L[r, (r + 1) % n]
        + block_nbytes / model.beta[r, (r + 1) % n]
        + model.send_cost((r + 1) % n, block_nbytes)
        + block_nbytes * float(model.t[(r + 1) % n])  # the combine pass
        for r in range(n)
    )
    return float((n - 1) * step)


def predict_rabenseifner_allreduce(model: ExtendedLMOModel, nbytes: float) -> float:
    """Rabenseifner allreduce: ring reduce-scatter + ring allgather."""
    validate_nbytes(nbytes)
    block = nbytes / model.n
    return float(predict_ring_reduce_scatter(model, block) + predict_ring_allgather(model, block))


_PREDICTORS[("bcast", "van_de_geijn")] = lambda m, nb, **kw: predict_vdg_bcast(m, nb, **kw)
_PREDICTORS[("reduce_scatter", "ring")] = lambda m, nb, **_kw: predict_ring_reduce_scatter(m, nb)
_PREDICTORS[("allreduce", "rabenseifner")] = lambda m, nb, **_kw: predict_rabenseifner_allreduce(m, nb)

__all__.extend(["predict_vdg_bcast", "predict_ring_reduce_scatter",
                "predict_rabenseifner_allreduce"])


# ====================================================================== sweeps
# Vectorized menu: every predictor above, evaluated over a whole array of
# message sizes in one pass.  Maxima over ranks/stages accumulate in the
# same order as the scalar generators, so results match the element-wise
# scalar loop bit for bit.
def predict_linear_bcast_sweep(
    model: ExtendedLMOModel, sizes: ArrayLike, root: int = 0
) -> np.ndarray:
    """Vectorized :func:`predict_linear_bcast`."""
    nb = validate_nbytes_batch(sizes)
    validate_rank(model.n, root)
    others = [i for i in range(model.n) if i != root]
    serial = len(others) * model.send_cost_batch(root, nb)
    parallel = model.wire_and_remote_cost_batch(root, others[0], nb)
    for i in others[1:]:
        parallel = np.maximum(parallel, model.wire_and_remote_cost_batch(root, i, nb))
    return serial + parallel


def predict_binomial_bcast_sweep(
    model: ExtendedLMOModel,
    sizes: ArrayLike,
    root: int = 0,
    tree: Optional[CommTree] = None,
) -> np.ndarray:
    """Vectorized :func:`predict_binomial_bcast`."""
    nb = validate_nbytes_batch(sizes)
    if tree is None:
        tree = binomial_tree(model.n, root)

    # As in the scalar version, arc volumes don't scale with sub-tree
    # size: the closures ignore the evaluator's per-arc bytes and charge
    # the full message on every arc.
    def serial(i: int, _j: int, _arc_nbytes) -> np.ndarray:
        return model.send_cost_batch(i, nb)

    def parallel(i: int, j: int, _arc_nbytes) -> np.ndarray:
        return model.wire_and_remote_cost_batch(i, j, nb)

    return predict_tree_time_batch(tree, nb, serial, parallel)


def predict_pipeline_bcast_sweep(
    model: ExtendedLMOModel,
    sizes: ArrayLike,
    segment_nbytes: float,
    root: int = 0,
) -> np.ndarray:
    """Vectorized :func:`predict_pipeline_bcast`."""
    nb = validate_nbytes_batch(sizes)
    validate_rank(model.n, root)
    if segment_nbytes <= 0:
        raise ValueError("segment_nbytes must be positive")
    n = model.n
    chain = [(root + k) % n for k in range(n)]
    segments = np.maximum(1.0, np.ceil(nb / segment_nbytes))
    seg = np.where(nb == 0, 0.0, np.minimum(segment_nbytes, nb))

    fill = np.zeros(nb.shape)
    stage_costs = []
    for u, v in zip(chain, chain[1:]):
        hop = (
            model.send_cost_batch(u, seg)
            + model.L[u, v]
            + seg / model.beta[u, v]
            + model.send_cost_batch(v, seg)
        )
        fill = fill + hop
        stage_costs.append(hop)
    for v in chain[1:-1]:
        stage_costs.append(2 * model.send_cost_batch(v, seg))
    bottleneck = stage_costs[0]
    for cost in stage_costs[1:]:
        bottleneck = np.maximum(bottleneck, cost)
    return fill + (segments - 1) * bottleneck


def predict_ring_allgather_sweep(model: ExtendedLMOModel, sizes: ArrayLike) -> np.ndarray:
    """Vectorized :func:`predict_ring_allgather`."""
    nb = validate_nbytes_batch(sizes)
    n = model.n

    def exchange(r: int) -> np.ndarray:
        return (
            model.send_cost_batch(r, nb)
            + model.L[r, (r + 1) % n]
            + nb / model.beta[r, (r + 1) % n]
            + model.send_cost_batch((r + 1) % n, nb)
        )

    step = exchange(0)
    for r in range(1, n):
        step = np.maximum(step, exchange(r))
    return (n - 1) * step


def _rd_rounds_sweep(model: ExtendedLMOModel, volume_at_round) -> np.ndarray:
    n = model.n
    if n & (n - 1):
        raise ValueError(f"recursive doubling requires a power-of-two n, got {n}")
    total = None
    distance = 1
    round_idx = 0
    while distance < n:
        volume = volume_at_round(round_idx)

        def exchange(r: int) -> np.ndarray:
            return (
                model.send_cost_batch(r, volume)
                + model.L[r, r ^ distance]
                + volume / model.beta[r, r ^ distance]
                + model.send_cost_batch(r ^ distance, volume)
            )

        worst = exchange(0)
        for r in range(1, n):
            worst = np.maximum(worst, exchange(r))
        total = worst if total is None else total + worst
        distance <<= 1
        round_idx += 1
    assert total is not None
    return total


def predict_rd_allgather_sweep(model: ExtendedLMOModel, sizes: ArrayLike) -> np.ndarray:
    """Vectorized :func:`predict_rd_allgather`."""
    nb = validate_nbytes_batch(sizes)
    return _rd_rounds_sweep(model, lambda k: (1 << k) * nb)


def predict_rd_allreduce_sweep(model: ExtendedLMOModel, sizes: ArrayLike) -> np.ndarray:
    """Vectorized :func:`predict_rd_allreduce`."""
    nb = validate_nbytes_batch(sizes)
    base = _rd_rounds_sweep(model, lambda _k: nb)
    rounds = int(math.log2(model.n))
    return base + rounds * nb * float(model.t.max())


def predict_reduce_bcast_allreduce_sweep(
    model: ExtendedLMOModel, sizes: ArrayLike, root: int = 0
) -> np.ndarray:
    """Vectorized :func:`predict_reduce_bcast_allreduce`."""
    nb = validate_nbytes_batch(sizes)
    tree = binomial_tree(model.n, root)

    def serial(i: int, _j: int, _b) -> np.ndarray:
        return model.send_cost_batch(i, nb)

    def parallel(i: int, j: int, _b) -> np.ndarray:
        return model.wire_and_remote_cost_batch(i, j, nb) + nb * float(model.t[j])

    reduce_time = predict_tree_time_batch(tree, nb, serial, parallel)
    return reduce_time + predict_binomial_bcast_sweep(model, nb, root=root, tree=tree)


def predict_vdg_bcast_sweep(
    model: ExtendedLMOModel, sizes: ArrayLike, root: int = 0
) -> np.ndarray:
    """Vectorized :func:`predict_vdg_bcast`."""
    nb = validate_nbytes_batch(sizes)
    from repro.models.collectives.formulas import predict_binomial_scatter_sweep

    segment = nb / model.n
    return (
        predict_binomial_scatter_sweep(model, segment, root=root)
        + predict_ring_allgather_sweep(model, segment)
    )


def predict_ring_reduce_scatter_sweep(
    model: ExtendedLMOModel, sizes: ArrayLike
) -> np.ndarray:
    """Vectorized :func:`predict_ring_reduce_scatter`."""
    nb = validate_nbytes_batch(sizes)
    n = model.n

    def exchange(r: int) -> np.ndarray:
        return (
            model.send_cost_batch(r, nb)
            + model.L[r, (r + 1) % n]
            + nb / model.beta[r, (r + 1) % n]
            + model.send_cost_batch((r + 1) % n, nb)
            + nb * float(model.t[(r + 1) % n])
        )

    step = exchange(0)
    for r in range(1, n):
        step = np.maximum(step, exchange(r))
    return (n - 1) * step


def predict_rabenseifner_allreduce_sweep(
    model: ExtendedLMOModel, sizes: ArrayLike
) -> np.ndarray:
    """Vectorized :func:`predict_rabenseifner_allreduce`."""
    nb = validate_nbytes_batch(sizes)
    block = nb / model.n
    return predict_ring_reduce_scatter_sweep(model, block) + predict_ring_allgather_sweep(
        model, block
    )


#: (operation, algorithm) -> vectorized predictor, mirroring ``_PREDICTORS``.
_SWEEP_PREDICTORS = {
    ("bcast", "linear"): lambda m, nb, **kw: predict_linear_bcast_sweep(m, nb, **kw),
    ("bcast", "binomial"): lambda m, nb, **kw: predict_binomial_bcast_sweep(m, nb, **kw),
    ("bcast", "pipeline"): lambda m, nb, segment_nbytes=8192, **kw: (
        predict_pipeline_bcast_sweep(m, nb, segment_nbytes, **kw)
    ),
    ("bcast", "van_de_geijn"): lambda m, nb, **kw: predict_vdg_bcast_sweep(m, nb, **kw),
    ("allgather", "ring"): lambda m, nb, **_kw: predict_ring_allgather_sweep(m, nb),
    ("allgather", "recursive_doubling"): lambda m, nb, **_kw: predict_rd_allgather_sweep(m, nb),
    ("allreduce", "recursive_doubling"): lambda m, nb, **_kw: predict_rd_allreduce_sweep(m, nb),
    ("allreduce", "reduce_bcast"): lambda m, nb, **kw: (
        predict_reduce_bcast_allreduce_sweep(m, nb, **kw)
    ),
    ("allreduce", "rabenseifner"): lambda m, nb, **_kw: (
        predict_rabenseifner_allreduce_sweep(m, nb)
    ),
    ("reduce_scatter", "ring"): lambda m, nb, **_kw: predict_ring_reduce_scatter_sweep(m, nb),
}


def predict_collective_sweep(
    model: ExtendedLMOModel,
    operation: str,
    algorithm: str,
    sizes: ArrayLike,
    **kwargs,
) -> np.ndarray:
    """Vectorized :func:`predict_collective` over an array of sizes."""
    try:
        predictor = _SWEEP_PREDICTORS[(operation, algorithm)]
    except KeyError:
        known = sorted(f"{op}/{algo}" for op, algo in _SWEEP_PREDICTORS)
        raise KeyError(
            f"no predictor for {operation}/{algorithm}; available: {', '.join(known)}"
        ) from None
    return predictor(model, validate_nbytes_batch(sizes), **kwargs)


__all__.extend([
    "predict_linear_bcast_sweep",
    "predict_binomial_bcast_sweep",
    "predict_pipeline_bcast_sweep",
    "predict_ring_allgather_sweep",
    "predict_rd_allgather_sweep",
    "predict_rd_allreduce_sweep",
    "predict_reduce_bcast_allreduce_sweep",
    "predict_vdg_bcast_sweep",
    "predict_ring_reduce_scatter_sweep",
    "predict_rabenseifner_allreduce_sweep",
])
