"""LMO model-based optimization of linear gather (paper Fig. 7).

The empirical part of the LMO gather model says: messages in the medium
region ``(M1, M2)`` suffer non-deterministic ~0.25 s escalations (TCP
incast timeouts).  The optimization "implemented on top of its native
counterpart" splits such messages and performs a *series of gathers*, each
chunk small enough that the concurrent senders cannot overflow the switch
port — avoiding the escalations entirely.  The paper reports ~10x better
performance in the escalation region.
"""

from __future__ import annotations

import math
from typing import Any, Generator

import numpy as np

from repro.models.base import ArrayLike, validate_nbytes_batch
from repro.models.collectives.formulas import predict_linear_gather_sweep
from repro.models.lmo_extended import ExtendedLMOModel, GatherIrregularity
from repro.mpi.collectives import linear
from repro.mpi.comm import RankComm

__all__ = [
    "split_plan",
    "split_chunk_counts",
    "predict_optimized_gather_sweep",
    "optimized_gather",
    "make_optimized_gather",
]


def split_plan(nbytes: int, irregularity: GatherIrregularity, safety: float = 0.9) -> list[int]:
    """Chunk sizes for one message of ``nbytes``.

    Messages outside the escalation region pass through unsplit.  Inside
    it, chunks of at most ``safety * M1`` bytes are used (strictly below
    the escalation onset, with headroom for estimation error).
    """
    if not (0 < safety <= 1):
        raise ValueError(f"safety must be in (0, 1], got {safety}")
    if nbytes <= 0:
        return [nbytes]
    if irregularity.regime(nbytes) != "medium":
        return [nbytes]
    chunk = max(1, int(irregularity.m1 * safety))
    count = math.ceil(nbytes / chunk)
    base = nbytes // count
    sizes = [base] * count
    for idx in range(nbytes - base * count):
        sizes[idx] += 1
    return sizes


def split_chunk_counts(
    sizes: ArrayLike, irregularity: GatherIrregularity, safety: float = 0.9
) -> np.ndarray:
    """Number of chunks :func:`split_plan` produces, for a whole size array.

    Sizes outside the medium (escalation) regime stay unsplit (count 1).
    """
    if not (0 < safety <= 1):
        raise ValueError(f"safety must be in (0, 1], got {safety}")
    nb = validate_nbytes_batch(sizes)
    chunk = max(1, int(irregularity.m1 * safety))
    medium = (nb >= irregularity.m1) & (nb <= irregularity.m2) & (nb > 0)
    return np.where(medium, np.ceil(nb / chunk), 1.0)


def predict_optimized_gather_sweep(
    model: ExtendedLMOModel,
    sizes: ArrayLike,
    root: int = 0,
    safety: float = 0.9,
) -> np.ndarray:
    """Predicted times of the split gather over a whole size sweep.

    For each size, the plan of :func:`split_plan` yields ``count``
    serialized rounds with ``extra`` chunks of ``base + 1`` bytes and the
    rest of ``base`` bytes, so the prediction is

        (count - extra) * T_gather(base) + extra * T_gather(base + 1)

    — two vectorized gather sweeps instead of a Python loop over chunks.
    Chunk sizes sit below the escalation onset ``m1``, so their expected
    time carries no escalation term.
    """
    irr = model.gather_irregularity
    nb = validate_nbytes_batch(sizes)
    if irr is None:
        return predict_linear_gather_sweep(model, nb, root=root)
    counts = split_chunk_counts(nb, irr, safety)
    base = np.floor_divide(nb, counts)
    extra = nb - base * counts
    t_base = predict_linear_gather_sweep(model, base, root=root)
    t_upper = predict_linear_gather_sweep(model, base + 1, root=root)
    split_time = (counts - extra) * t_base + extra * t_upper
    unsplit = predict_linear_gather_sweep(model, nb, root=root)
    return np.where(counts > 1, split_time, unsplit)


def optimized_gather(
    comm: RankComm,
    root: int,
    block_nbytes: int,
    irregularity: GatherIrregularity,
    block: Any = None,
    safety: float = 0.9,
) -> Generator:
    """Linear gather with model-based message splitting.

    Each chunk round is a full linear gather of the chunk; rounds are
    serialized (the next round's sends start after the previous round's
    data has been collected), which is how the paper's optimized gather
    stays below the incast threshold.
    """
    chunks = split_plan(block_nbytes, irregularity, safety)
    if len(chunks) == 1:
        result = yield from linear.gather(comm, root, block_nbytes, block=block)
        return result
    gathered_rounds = []
    for chunk_nbytes in chunks:
        result = yield from linear.gather(comm, root, chunk_nbytes, block=block)
        gathered_rounds.append(result)
    return gathered_rounds[-1]


def make_optimized_gather(irregularity: GatherIrregularity, safety: float = 0.9):
    """An algorithm function (registry-compatible) with bound parameters."""

    def algorithm(comm: RankComm, root: int, block_nbytes: int, block: Any = None):
        return optimized_gather(
            comm, root, block_nbytes, irregularity, block=block, safety=safety
        )

    return algorithm
