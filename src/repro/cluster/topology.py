"""Multi-switch topologies — where the single-switch model stops holding.

The paper's target platform is "a homogeneous or heterogeneous cluster
with a single switch", and the LMO model's assumptions lean on it: the
switch forwards flows to distinct ports fully in parallel, so the only
shared medium is each destination port.  Two cascaded switches break
that: flows crossing the inter-switch uplink *share it*, and no
point-to-point model — however well separated its parameters — can
express that contention.

:class:`TwoSwitchTopology` builds ground truths and uplink bookkeeping
for a cluster split across two switches.  The transport charges uplink
occupancy for cross-switch flows when the cluster is constructed with a
topology (see :meth:`repro.cluster.machine.SimulatedCluster.attach_topology`),
letting tests and experiments measure exactly how much accuracy the LMO
model loses once its platform assumption fails — and that it remains
exact within each switch.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.cluster.params import GroundTruth

__all__ = ["TwoSwitchTopology"]


@dataclass(frozen=True)
class TwoSwitchTopology:
    """Two switches joined by one uplink.

    Attributes
    ----------
    left:
        Nodes attached to the first switch.
    right:
        Nodes attached to the second switch.
    uplink_latency:
        Extra fixed latency for cross-switch flows (a second
        store-and-forward hop), seconds.
    uplink_rate:
        Uplink capacity in bytes/second.  All concurrent cross-switch
        flows serialize on it — the contention a single-switch model
        cannot express.
    """

    left: tuple[int, ...]
    right: tuple[int, ...]
    uplink_latency: float = 40e-6
    uplink_rate: float = 105e6

    def __post_init__(self) -> None:
        nodes = list(self.left) + list(self.right)
        if sorted(nodes) != list(range(len(nodes))):
            raise ValueError("left+right must partition 0..n-1")
        if not self.left or not self.right:
            raise ValueError("both switches need at least one node")
        if self.uplink_latency < 0 or self.uplink_rate <= 0:
            raise ValueError("invalid uplink parameters")

    @property
    def n(self) -> int:
        return len(self.left) + len(self.right)

    def same_switch(self, i: int, j: int) -> bool:
        """True when the two nodes share a switch (no uplink involved)."""
        left = set(self.left)
        return (i in left) == (j in left)

    def apply_to_ground_truth(self, gt: GroundTruth) -> GroundTruth:
        """A ground truth whose latencies reflect the extra uplink hop.

        Only the fixed latency moves here: the uplink's bandwidth enters
        dynamically as a serial occupancy of the shared uplink resource
        (store-and-forward through the second switch), so an isolated
        cross-switch flow still follows a clean linear model — with a
        shallower effective rate — while concurrent flows contend.
        """
        if gt.n != self.n:
            raise ValueError(f"ground truth is for {gt.n} nodes, topology has {self.n}")
        L = gt.L.copy()
        for i in range(self.n):
            for j in range(self.n):
                if i != j and not self.same_switch(i, j):
                    L[i, j] += self.uplink_latency
        return GroundTruth(C=gt.C.copy(), t=gt.t.copy(), L=L, beta=gt.beta.copy())

    @staticmethod
    def split_evenly(n: int, **kwargs) -> "TwoSwitchTopology":
        """First half of the ranks on one switch, second half on the other."""
        half = n // 2
        return TwoSwitchTopology(
            left=tuple(range(half)), right=tuple(range(half, n)), **kwargs
        )
