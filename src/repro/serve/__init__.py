"""repro.serve — the always-on prediction service daemon.

An asyncio server speaking newline-delimited JSON over TCP or a Unix
socket, answering the verbs ``predict`` / ``predict_many`` /
``estimate`` / ``optimize`` / ``obs`` / ``health`` / ``drain`` with the
same schema-v3 payloads and error codes as :mod:`repro.api` — one
serialization in-process and on the wire.  See ``docs/service.md`` for
the protocol reference and ``repro serve`` / ``repro client`` for the
command-line entry points.

Layout:

* :mod:`~repro.serve.protocol` — pure framing: en/decode request and
  response lines, line-size limit, verb table;
* :mod:`~repro.serve.service` — stateful worker tasks (bounded queues,
  coalescing predict batches, threaded estimation);
* :mod:`~repro.serve.server` — the daemon: routing, model registry,
  SIGHUP reload, graceful drain, telemetry;
* :mod:`~repro.serve.client` — blocking client raising the same typed
  errors the facade raises;
* :mod:`~repro.serve.runner` — in-process server hosting for tests and
  the load benchmark.
"""

from repro.serve.client import EstimateReply, ServiceClient
from repro.serve.protocol import MAX_LINE_BYTES, VERBS
from repro.serve.runner import ServerThread
from repro.serve.server import (
    ModelRegistry,
    PredictionServer,
    ServeConfig,
    run_server,
    serve,
)

__all__ = [
    "MAX_LINE_BYTES",
    "VERBS",
    "EstimateReply",
    "ModelRegistry",
    "PredictionServer",
    "ServeConfig",
    "ServerThread",
    "ServiceClient",
    "run_server",
    "serve",
]
