"""LogP / LogGP parameter estimation (paper Sec. II).

Per pair:

* ``o_s`` — the duration of the send call itself (``i -M-> j`` roundtrip
  with an empty reply; we time the send);
* ``o_r`` — the delayed-receive trick: after the message has certainly
  arrived, time the receive call;
* ``L`` — ``RTT/2 - o_s - o_r`` from a roundtrip with non-empty messages;
* ``g`` — the saturation experiment: a long one-directional train of
  messages, ``g = T_n / n``;
* ``G`` (LogGP) — the per-byte gap from a saturation with large messages:
  ``G = (T_n / n) / M``.

Homogeneous parameters are pair averages, as the paper prescribes for
applying the LogP family to heterogeneous clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.estimation.engines import ExperimentEngine
from repro.estimation.experiments import (
    Experiment,
    overhead_recv,
    overhead_send,
    roundtrip,
    saturation,
)
from repro.estimation.scheduling import run_schedule
from repro.models.loggp import LogGPModel
from repro.models.logp import LogPModel

__all__ = ["LogPEstimationResult", "estimate_logp", "estimate_loggp"]

KB = 1024
#: Packet size for LogP's small-message experiments (Ethernet MTU payload).
SMALL_NBYTES = 1024
LARGE_NBYTES = 64 * KB
#: Train length: "the number of messages is chosen to be large to ensure
#: that the point-to-point communication time is dominated by the factor
#: of bandwidth rather than latency".
TRAIN_COUNT = 32


@dataclass
class LogPEstimationResult:
    """Per-pair raw values and the averaged homogeneous models."""

    o_s: float
    o_r: float
    L: float
    g_small: float
    g_large_per_byte: float
    estimation_time: float
    pairs_measured: int

    def logp(self, P: int, packet_bytes: int = SMALL_NBYTES) -> LogPModel:
        """The homogeneous LogP model at the small-message packet size."""
        return LogPModel(
            L=self.L, o=(self.o_s + self.o_r) / 2.0, g=self.g_small,
            P=P, packet_bytes=packet_bytes,
        )

    def loggp(self, P: int) -> LogGPModel:
        """The homogeneous LogGP model."""
        return LogGPModel(
            L=self.L, o=(self.o_s + self.o_r) / 2.0,
            g=self.g_small, G=self.g_large_per_byte, P=P,
        )


def _measure_family(
    engine: ExperimentEngine,
    pairs: Sequence[tuple[int, int]],
    reps: int,
    parallel: bool,
) -> tuple[dict[Experiment, float], float]:
    experiments: list[Experiment] = []
    for i, j in pairs:
        experiments.append(overhead_send(i, j, SMALL_NBYTES))
        experiments.append(overhead_recv(i, j, SMALL_NBYTES))
        experiments.append(roundtrip(i, j, SMALL_NBYTES))
        experiments.append(saturation(i, j, SMALL_NBYTES, TRAIN_COUNT))
        experiments.append(saturation(i, j, LARGE_NBYTES, TRAIN_COUNT))
    t_start = engine.estimation_time
    measured = run_schedule(engine, experiments, parallel=parallel, reps=reps)
    return measured, engine.estimation_time - t_start


def estimate_logp(
    engine: ExperimentEngine,
    reps: int = 3,
    parallel: bool = True,
    pairs: Sequence[tuple[int, int]] | None = None,
) -> LogPEstimationResult:
    """Estimate LogP/LogGP parameters, averaged over pairs."""
    n = engine.n
    pair_list = list(combinations(range(n), 2)) if pairs is None else list(pairs)
    measured, cost = _measure_family(engine, pair_list, reps, parallel)

    o_s_vals, o_r_vals, l_vals, g_vals, big_g_vals = [], [], [], [], []
    for i, j in pair_list:
        o_s = measured[overhead_send(i, j, SMALL_NBYTES)]
        o_r = measured[overhead_recv(i, j, SMALL_NBYTES)]
        rtt = measured[roundtrip(i, j, SMALL_NBYTES)]
        o_s_vals.append(o_s)
        o_r_vals.append(o_r)
        l_vals.append(max(rtt / 2.0 - o_s - o_r, 0.0))
        g_vals.append(measured[saturation(i, j, SMALL_NBYTES, TRAIN_COUNT)] / TRAIN_COUNT)
        per_msg = measured[saturation(i, j, LARGE_NBYTES, TRAIN_COUNT)] / TRAIN_COUNT
        big_g_vals.append(per_msg / LARGE_NBYTES)

    return LogPEstimationResult(
        o_s=float(np.mean(o_s_vals)),
        o_r=float(np.mean(o_r_vals)),
        L=float(np.mean(l_vals)),
        g_small=float(np.mean(g_vals)),
        g_large_per_byte=float(np.mean(big_g_vals)),
        estimation_time=cost,
        pairs_measured=len(pair_list),
    )


def estimate_loggp(
    engine: ExperimentEngine,
    reps: int = 3,
    parallel: bool = True,
    pairs: Sequence[tuple[int, int]] | None = None,
) -> LogGPModel:
    """Convenience wrapper returning the homogeneous LogGP model."""
    return estimate_logp(engine, reps=reps, parallel=parallel, pairs=pairs).loggp(engine.n)
