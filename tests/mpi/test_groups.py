"""Tests for sub-communicators (GroupComm / run_group_collective)."""

import numpy as np
import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.models import ExtendedLMOModel, predict_linear_scatter
from repro.mpi import MessageLayer, run_collective, run_group_collective, run_ranks

KB = 1024


def quiet_cluster(n=8, seed=90):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


def test_group_comm_identity_and_translation():
    cluster = quiet_cluster()
    layer = MessageLayer(cluster)
    comm = layer.group_comm([2, 5, 7], member=5)
    assert comm.size == 3
    assert comm.rank == 1
    assert comm.physical_rank == 5
    assert comm.translate(0) == 2
    assert comm.translate(2) == 7
    with pytest.raises(ValueError):
        comm.translate(3)


def test_group_comm_validation():
    cluster = quiet_cluster()
    layer = MessageLayer(cluster)
    with pytest.raises(ValueError, match="distinct"):
        layer.group_comm([1, 1, 2], member=1)
    with pytest.raises(ValueError, match="not in the group"):
        layer.group_comm([1, 2, 3], member=5)
    with pytest.raises(ValueError, match="out of range"):
        layer.group_comm([1, 99], member=1)


def test_group_scatter_moves_data_between_members_only():
    cluster = quiet_cluster()
    members = [1, 4, 6]
    data = [np.full(8, g, dtype=np.uint8) for g in range(3)]
    run = run_group_collective(cluster, members, "scatter", "linear",
                               nbytes=8, root=0, data=data)
    for g in range(3):
        assert (np.asarray(run.value(g)) == g).all()
    # Only the members moved any bytes.
    assert cluster.stats.messages == 2


def test_group_gather_binomial_on_subset():
    cluster = quiet_cluster()
    members = [0, 2, 3, 7]
    data = [np.full(4, g, dtype=np.uint8) for g in range(4)]
    run = run_group_collective(cluster, members, "gather", "binomial",
                               nbytes=4, root=0, data=data)
    gathered = run.value(0)
    for g, block in enumerate(gathered):
        assert (np.asarray(block) == g).all()


def test_group_collective_timing_matches_world_prediction_on_subset():
    """A group scatter over members behaves like a world scatter over a
    cluster restricted to those nodes — the prediction with the
    ``participants`` argument matches."""
    cluster = quiet_cluster(seed=91)
    gt = cluster.ground_truth
    model = ExtendedLMOModel.from_ground_truth(gt)
    members = [3, 0, 5, 6]
    M = 32 * KB
    run = run_group_collective(cluster, members, "scatter", "linear", nbytes=M, root=0)
    predicted = predict_linear_scatter(model, M, root=3, participants=members)
    assert run.time == pytest.approx(predicted, rel=0.1)


def test_two_disjoint_groups_run_concurrently():
    """Two groups on disjoint nodes share only the virtual clock: the
    combined makespan is the max of the individual ones (the switch does
    not couple them) — the same property the estimation scheduler uses."""
    cluster = quiet_cluster(seed=92)
    M = 16 * KB
    members_a = [0, 1, 2]
    members_b = [4, 5, 6]

    def group_program(members):
        def factory(comm):
            from repro.mpi.collectives import linear

            group = comm.layer.group_comm(members, comm.rank)
            return linear.scatter(group, 0, M)

        return factory

    t_a = run_group_collective(cluster, members_a, "scatter", "linear", nbytes=M).time
    t_b = run_group_collective(cluster, members_b, "scatter", "linear", nbytes=M).time
    programs = {}
    for members in (members_a, members_b):
        for node in members:
            programs[node] = group_program(members)
    results = run_ranks(cluster, programs)
    combined = max(res.finish for res in results.values())
    assert combined == pytest.approx(max(t_a, t_b), rel=1e-9)


def test_group_of_whole_world_matches_world_collective():
    cluster = quiet_cluster(seed=93)
    M = 8 * KB
    world = run_collective(cluster, "scatter", "linear", nbytes=M).time
    group = run_group_collective(cluster, list(range(8)), "scatter", "linear",
                                 nbytes=M).time
    assert group == pytest.approx(world, rel=1e-12)


def test_group_root_validation():
    cluster = quiet_cluster()
    with pytest.raises(ValueError, match="group root"):
        run_group_collective(cluster, [0, 1], "scatter", "linear", nbytes=8, root=5)


def test_group_unsupported_operation():
    cluster = quiet_cluster()
    with pytest.raises(Exception, match="support scatter/gather/bcast"):
        run_group_collective(cluster, [0, 1, 2], "alltoall", "linear", nbytes=8)
