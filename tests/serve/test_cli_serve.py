"""End-to-end test of ``repro serve`` / ``repro client``.

Boots the daemon as a real subprocess on an ephemeral port, drives it
with the ``client`` subcommand (in-process, for exit codes and output)
plus raw SIGHUP/SIGTERM, and checks the full lifecycle the deployment
docs promise: bind, answer, reload without dropping, drain, exit 0.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.cli import main

from tests.serve.conftest import KB, make_model

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "lmo.json"
    api.save_model(make_model(), str(path))
    return str(path)


@pytest.fixture()
def daemon(model_file):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--model", f"lmo={model_file}", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        assert banner.startswith("listening on "), banner
        host, _, port = banner.removeprefix("listening on ").rpartition(":")
        yield proc, host, int(port)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


def client_args(host, port, verb, params=None):
    args = ["client", verb, "--host", host, "--port", str(port)]
    if params is not None:
        args += ["--params", json.dumps(params)]
    return args


def test_serve_and_client_full_lifecycle(daemon, model_file, capsys):
    proc, host, port = daemon
    model = api.load_model(model_file)

    # predict over the wire == the facade, through the CLI.
    assert main(client_args(host, port, "predict", {
        "model": "lmo", "operation": "scatter", "algorithm": "linear",
        "nbytes": 64 * KB,
    })) == 0
    doc = json.loads(capsys.readouterr().out)
    local = api.predict(model, "scatter", "linear", 64 * KB)
    assert doc == local.to_dict()

    # Unknown model: stable error code on stderr, exit 1.
    assert main(client_args(host, port, "predict", {
        "model": "nope", "operation": "scatter", "algorithm": "linear",
        "nbytes": KB,
    })) == 1
    err = capsys.readouterr().err
    assert err.startswith("model_not_loaded: ")
    assert "'nope'" in err and "lmo" in err

    # Bad --params: usage error before any connection, exit 2.
    assert main(["client", "predict", "--params", "{not json"]) == 2
    assert "not valid JSON" in capsys.readouterr().err
    assert main(["client", "predict", "--params", "[1]"]) == 2
    assert "JSON object" in capsys.readouterr().err

    # SIGHUP mid-life: models reload, nothing breaks, answers continue.
    proc.send_signal(signal.SIGHUP)
    time.sleep(0.3)
    assert main(client_args(host, port, "health")) == 0
    health = json.loads(capsys.readouterr().out)
    assert health["status"] == "running" and health["models"] == ["lmo"]

    # Drain verb: daemon answers, shuts down, exits 0.
    assert main(client_args(host, port, "drain")) == 0
    assert json.loads(capsys.readouterr().out)["draining"] is True
    assert proc.wait(timeout=30) == 0

    # A client against the gone daemon: connection error, exit 2.
    assert main(client_args(host, port, "health")) == 2
    assert "cannot reach the daemon" in capsys.readouterr().err


def test_sigterm_drains_and_exits_zero(daemon):
    proc, host, port = daemon
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=30) == 0


def test_serve_rejects_bad_model_spec(capsys):
    assert main(["serve", "--model", "justaname"]) == 2
    assert "NAME=PATH" in capsys.readouterr().err
