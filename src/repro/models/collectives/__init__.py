"""Collective-operation predictions: trees, the generic evaluator, and
the per-model closed forms of the paper's Table II."""
