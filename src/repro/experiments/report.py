"""Run every experiment and render the EXPERIMENTS.md report.

Usage::

    python -m repro.experiments.report [--quick] [--seed N] [--out PATH]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, TextIO

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.plotting import SYMBOLS, ascii_chart

__all__ = ["generate_report", "main"]

#: What the paper reports, per experiment — rendered alongside ours.
PAPER_BASELINES = {
    "table1": "16 nodes, 7 hardware types behind one Ethernet switch.",
    "fig1": "Sequential Hockney predictions pessimistic, parallel ones "
            "optimistic; observation in between.",
    "fig2": "Binomial tree, root sends 8/4/2/1 blocks, disjoint sub-trees.",
    "fig3": "Heterogeneous Hockney (recursion (1)-(2)) tracks binomial "
            "scatter much better than the homogeneous closed form.",
    "fig4": "LMO most accurate for linear scatter; PLogP comparable for "
            "medium sizes; leap at 64 KB (LAM eager limit).",
    "fig5": "Only LMO captures gather: two slopes (M<M1, M>M2) and "
            "non-deterministic escalations up to 0.25 s in between.",
    "fig6": "For 100-200 KB scatter, Hockney wrongly switches to binomial; "
            "LMO correctly keeps linear.",
    "fig7": "Model-based gather splitting avoids escalations: ~10x.",
    "table2": "Traditional models reuse the scatter formula for gather; "
              "only LMO has distinct branches with empirical M1/M2.",
    "estimation_cost": "Het-Hockney estimation at CI 95%/2.5%: serial 16 s "
                       "vs parallel 5 s (3.2x), identical parameters.",
    "thresholds": "M1=4 KB, M2=65 KB (LAM 7.1.3); M1=3 KB, M2=125 KB "
                  "(MPICH 1.2.7).",
    "ablations": "(reproduction-only) each observed irregularity must vanish "
                 "when its modelled mechanism is disabled.",
    "menu_accuracy": "(extension) the paper's Fig. 6 decision problem over "
                     "the full algorithm menu: the estimated LMO model "
                     "should pick (near-)winning algorithms throughout.",
    "accuracy_table": "(summary) Section V quantified: LMO first, PLogP "
                      "competitive on medium sizes, Hockney/LogGP far "
                      "behind and Hockney-sequential pessimistic.",
}


def generate_report(
    quick: bool = False, seed: int = 0, stream: Optional[TextIO] = None
) -> bool:
    """Run all experiments; writes markdown to ``stream`` (default stdout).

    Returns True when every shape check passed.
    """
    out = stream if stream is not None else sys.stdout
    all_ok = True
    out.write("# EXPERIMENTS — paper vs reproduction\n\n")
    out.write(
        "Every table and figure of the paper, regenerated on the simulated\n"
        "Table I cluster (see DESIGN.md for the substitutions).  Absolute\n"
        "times differ from the 2009 testbed by construction; each experiment\n"
        "carries *shape checks* encoding the paper's qualitative claims.\n\n"
        f"Mode: {'quick' if quick else 'full'}; seed: {seed}.\n\n"
    )
    for experiment_id, runner in ALL_EXPERIMENTS.items():
        started = time.time()
        result = runner(quick=quick, seed=seed)
        elapsed = time.time() - started
        ok = result.all_checks_pass
        all_ok &= ok
        out.write(f"## {experiment_id}: {result.title}\n\n")
        out.write(f"**Paper:** {PAPER_BASELINES.get(experiment_id, '-')}\n\n")
        out.write(f"**Reproduction ({elapsed:.1f} s):**\n\n```\n{result.render()}\n```\n\n")
        if result.series and len(result.series) <= len(SYMBOLS):
            out.write(f"```\n{ascii_chart(result.series)}\n```\n\n")
    out.write(
        f"**Overall: {'ALL SHAPE CHECKS PASS' if all_ok else 'SOME CHECKS FAILED'}**\n"
    )
    return all_ok


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sweeps, fewer reps")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None, help="write to a file")
    args = parser.parse_args(argv)
    if args.out:
        with open(args.out, "w") as handle:
            ok = generate_report(quick=args.quick, seed=args.seed, stream=handle)
    else:
        ok = generate_report(quick=args.quick, seed=args.seed)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
