"""Terminal plotting of experiment series (the figures, as figures).

EXPERIMENTS.md tables carry the numbers; :func:`ascii_chart` adds the
shape — a fixed-width character plot where each series gets a symbol, so
"the observation runs between the two Hockney families" is visible at a
glance without leaving the terminal.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Series

__all__ = ["ascii_chart"]

SYMBOLS = "ox+*#@%&"


def ascii_chart(
    series: Sequence[Series],
    width: int = 68,
    height: int = 14,
    title: Optional[str] = None,
) -> str:
    """Plot series (seconds over bytes) as a character grid.

    The x axis is the index of the size grid (sizes are typically
    geometric, so index spacing reads like a log axis); the y axis is
    linear in milliseconds from 0 to the global maximum.  Overlapping
    points keep the symbol of the *earlier* series (list order = z-order,
    so put the observation first).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("chart too small to be legible")
    if len(series) > len(SYMBOLS):
        raise ValueError(f"at most {len(SYMBOLS)} series supported")
    sizes = series[0].sizes
    for s in series:
        if s.sizes != sizes:
            raise ValueError("all series must share the size grid")
    top = max(max(s.values) for s in series)
    if top <= 0:
        raise ValueError("nothing positive to plot")

    grid = [[" "] * width for _ in range(height)]
    n_points = len(sizes)
    for z, s in enumerate(reversed(series)):
        symbol = SYMBOLS[len(series) - 1 - z]
        for idx, value in enumerate(s.values):
            col = int(idx / max(n_points - 1, 1) * (width - 1))
            row = height - 1 - int(value / top * (height - 1))
            grid[row][col] = symbol

    kb = 1024
    lines = []
    if title:
        lines.append(title)
    axis_width = 9
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{top * 1e3:8.2f} |"
        elif row_idx == height - 1:
            label = f"{0.0:8.2f} |"
        else:
            label = " " * (axis_width - 1) + "|"
        lines.append(label + "".join(row))
    lines.append(" " * (axis_width - 1) + "+" + "-" * width)
    lines.append(
        " " * axis_width
        + f"{sizes[0] / kb:g}K{' ' * (width - 12)}{sizes[-1] / kb:g}K  (ms over M)"
    )
    lines.append(
        " " * axis_width
        + "legend: "
        + "  ".join(f"{SYMBOLS[i]}={s.name}" for i, s in enumerate(series))
    )
    return "\n".join(lines)
