"""Unit tests for the metrics registry and Prometheus exposition."""

import json
import math
import re

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    prometheus_text,
)

# A strict line-level validator for the Prometheus text exposition format
# (what promtool's parser accepts for names, labels and values).
_PROM_HELP = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_PROM_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (\+Inf|-Inf|NaN|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$"  # value
)


def assert_valid_prometheus(text):
    """Every line must be a HELP/TYPE comment or a well-formed sample."""
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        ok = (
            _PROM_HELP.match(line)
            or _PROM_TYPE.match(line)
            or _PROM_SAMPLE.match(line)
        )
        assert ok, f"invalid Prometheus exposition line: {line!r}"


def test_counter_inc_and_total():
    reg = MetricsRegistry()
    reg.counter("units_total", help="units", outcome="done").inc()
    reg.counter("units_total", outcome="done").inc(2)
    reg.counter("units_total", outcome="failed").inc()
    assert reg.value("units_total", outcome="done") == 3
    assert reg.value("units_total", outcome="failed") == 1
    assert reg.total("units_total") == 4
    # Untouched children and unknown families read zero, not KeyError.
    assert reg.value("units_total", outcome="skipped") == 0
    assert reg.value("no_such_metric") == 0


def test_counter_rejects_negative_increment():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="only go up"):
        reg.counter("c_total").inc(-1)


def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("coverage")
    g.set(0.5)
    g.inc(0.25)
    g.dec(0.5)
    assert g.value == pytest.approx(0.25)


def test_metric_kind_conflict_is_an_error():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("x_total")


def test_bad_metric_and_label_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError, match="bad metric name"):
        reg.counter("2bad")
    with pytest.raises(ValueError, match="bad label name"):
        reg.counter("ok_total", **{"bad-label": 1})


def test_histogram_log2_buckets_and_overflow():
    h = Histogram(lo=-2, hi=2)  # bounds 0.25, 0.5, 1, 2, 4
    assert h.bounds == [0.25, 0.5, 1.0, 2.0, 4.0]
    h.observe(0.2)   # first bucket
    h.observe(1.0)   # exact bound lands in that bucket
    h.observe(3.0)
    h.observe(100.0)  # +Inf overflow
    assert h.count == 4
    assert h.sum == pytest.approx(104.2)
    assert h.bucket_counts[0] == 1
    assert h.bucket_counts[2] == 1
    assert h.bucket_counts[4] == 1
    assert h.bucket_counts[5] == 1  # +Inf
    with pytest.raises(ValueError):
        h.observe(float("nan"))


def test_histogram_quantile_is_bucket_resolution():
    h = Histogram(lo=-2, hi=2)
    for v in [0.2, 0.2, 0.2, 3.0]:
        h.observe(v)
    assert h.quantile(0.5) == 0.25   # upper bound of the holding bucket
    assert h.quantile(1.0) == 4.0
    assert math.isnan(Histogram().quantile(0.5))
    with pytest.raises(ValueError):
        h.quantile(1.5)


def _exact_quantile(values, q):
    """Nearest-rank quantile of a sorted sample (the reference)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def test_bucket_quantile_interpolates_within_a_bucket():
    # 2 obs in (0, 1], 2 in (1, 2]: the median sits at the top of the
    # first bucket, the 75th percentile halfway through the second.
    buckets = [[1.0, 2], [2.0, 2], ["+Inf", 0]]
    assert bucket_quantile(buckets, 4, 0.5) == pytest.approx(1.0)
    assert bucket_quantile(buckets, 4, 0.75) == pytest.approx(1.5)
    assert bucket_quantile(buckets, 4, 0.0) == pytest.approx(0.0)
    assert bucket_quantile(buckets, 4, 1.0) == pytest.approx(2.0)


def test_bucket_quantile_edge_cases():
    assert math.isnan(bucket_quantile([[1.0, 0], ["+Inf", 0]], 0, 0.5))
    with pytest.raises(ValueError):
        bucket_quantile([[1.0, 1], ["+Inf", 0]], 1, 1.5)
    # Mass in the +Inf bucket clamps to the highest finite bound.
    assert bucket_quantile([[1.0, 0], [2.0, 0], ["+Inf", 5]], 5, 0.5) == 2.0


def test_interpolated_quantiles_track_exact_quantiles():
    # A known sample set: uniform on (0, 10] at 0.01 resolution.  Within
    # each log2 bucket the distribution really is uniform, so the
    # interpolation assumption holds and p50 is near-exact; the top
    # bucket (8, 16] is only filled to 10, so higher quantiles drift —
    # but must stay inside the holding bucket (within 2x of exact).
    values = [i / 100.0 for i in range(1, 1001)]
    h = Histogram(lo=-10, hi=4)
    for v in values:
        h.observe(v)
    for q in (0.50, 0.90, 0.95, 0.99):
        exact = _exact_quantile(values, q)
        interpolated = h.quantile_interpolated(q)
        ratio = interpolated / exact
        assert 0.5 <= ratio <= 2.0, (q, exact, interpolated)
    assert h.quantile_interpolated(0.50) == pytest.approx(5.0, rel=0.01)
    # And it refines the coarse bucket-resolution estimate: the old
    # quantile() reports the bucket's upper bound (8.0) for the median.
    assert h.quantile(0.5) == 8.0
    assert abs(h.quantile_interpolated(0.5) - 5.0) < abs(h.quantile(0.5) - 5.0)


def test_interpolated_quantile_empty_and_bounds():
    h = Histogram()
    assert math.isnan(h.quantile_interpolated(0.5))
    with pytest.raises(ValueError):
        h.quantile_interpolated(-0.1)


def test_snapshot_roundtrips_through_json():
    reg = MetricsRegistry()
    reg.counter("units_total", help="units", outcome="done").inc(3)
    reg.gauge("coverage").set(0.75)
    reg.histogram("lat_seconds", lo=-4, hi=0).observe(0.1)
    snap = json.loads(json.dumps(reg.snapshot()))
    assert snap["units_total"]["type"] == "counter"
    assert snap["units_total"]["samples"][0]["labels"] == {"outcome": "done"}
    assert snap["units_total"]["samples"][0]["value"] == 3
    hist = snap["lat_seconds"]["samples"][0]
    assert hist["count"] == 1
    assert hist["buckets"][-1][0] == "+Inf"
    # And the rendered text from the JSON round-trip is identical.
    assert prometheus_text(snap) == reg.to_prometheus()


def test_prometheus_text_is_valid_exposition():
    reg = MetricsRegistry()
    reg.counter("units_total", help="finished units", outcome="done").inc(3)
    reg.counter("units_total", outcome='we "quote"\nnewline\\slash').inc()
    reg.gauge("coverage", help="fraction solved").set(0.75)
    reg.histogram("lat_seconds", help="latencies", lo=-2, hi=2).observe(0.3)
    text = reg.to_prometheus()
    assert_valid_prometheus(text)
    # Histogram convention: cumulative buckets ending at +Inf, sum, count.
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_sum 0.3" in text
    assert "lat_seconds_count 1" in text
    cumulative = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("lat_seconds_bucket")
    ]
    assert cumulative == sorted(cumulative)


def test_prometheus_nonfinite_values_render_canonically():
    # Regression: NaN gauges used to render as lowercase 'nan' (repr),
    # which the exposition-format parser rejects.
    reg = MetricsRegistry()
    reg.gauge("g_nan").set(float("nan"))
    reg.gauge("g_inf").set(float("inf"))
    reg.gauge("g_ninf").set(float("-inf"))
    text = reg.to_prometheus()
    assert_valid_prometheus(text)
    assert "g_nan NaN" in text
    assert "g_inf +Inf" in text
    assert "g_ninf -Inf" in text
    assert "g_nan nan" not in text  # the old lowercase-repr bug


def test_prometheus_numeric_label_values_are_coerced():
    # Regression: non-string label values crashed the escaping path
    # (int has no .replace); they must render as quoted strings.
    reg = MetricsRegistry()
    reg.counter("units_total", node=3).inc()
    reg.gauge("load", ratio=0.5).set(1.0)
    text = reg.to_prometheus()
    assert_valid_prometheus(text)
    assert 'units_total{node="3"} 1' in text
    assert 'load{ratio="0.5"} 1' in text


def test_prometheus_label_escaping_covers_all_specials():
    reg = MetricsRegistry()
    reg.counter("c_total", path='a\\b "q"\nend').inc()
    text = reg.to_prometheus()
    assert_valid_prometheus(text)
    assert r'path="a\\b \"q\"\nend"' in text
    # Help text escapes backslash and newline too.
    reg2 = MetricsRegistry()
    reg2.counter("d_total", help="line1\nline2\\tail").inc()
    text2 = reg2.to_prometheus()
    assert_valid_prometheus(text2)
    assert r"# HELP d_total line1\nline2\\tail" in text2


def test_reset_drops_all_families():
    reg = MetricsRegistry()
    reg.counter("a_total").inc()
    reg.reset()
    assert reg.families() == []
    assert reg.total("a_total") == 0
