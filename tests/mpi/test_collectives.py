"""Tests for collective algorithms: correctness of data movement and the
timing structure the paper's formulas rely on."""

import numpy as np
import pytest

from repro.cluster import (
    IDEAL,
    GroundTruth,
    NoiseModel,
    SimulatedCluster,
    random_cluster,
)
from repro.mpi import run_collective
from repro.mpi.collectives import ALGORITHMS, get_algorithm

KB = 1024


def quiet_cluster(n=8, seed=0):
    return SimulatedCluster(
        random_cluster(n, seed=seed),
        ground_truth=GroundTruth.random(n, seed=seed),
        profile=IDEAL,
        noise=NoiseModel.none(),
        seed=seed,
    )


# ---------------------------------------------------------------- data paths
@pytest.mark.parametrize("algorithm", ["linear", "binomial"])
def test_scatter_delivers_correct_blocks(algorithm):
    cluster = quiet_cluster(n=8)
    data = [np.full(16, rank, dtype=np.uint8) for rank in range(8)]
    run = run_collective(cluster, "scatter", algorithm, nbytes=16, root=2, data=data)
    for rank in range(8):
        block = run.value(rank)
        assert block is not None
        assert (np.asarray(block) == rank).all()


@pytest.mark.parametrize("algorithm", ["linear", "binomial"])
def test_gather_collects_blocks_in_rank_order(algorithm):
    cluster = quiet_cluster(n=8)
    data = [np.full(16, rank, dtype=np.uint8) for rank in range(8)]
    run = run_collective(cluster, "gather", algorithm, nbytes=16, root=3, data=data)
    gathered = run.value(3)
    assert gathered is not None and len(gathered) == 8
    for rank, block in enumerate(gathered):
        assert (np.asarray(block) == rank).all()
    for rank in range(8):
        if rank != 3:
            assert run.value(rank) is None


@pytest.mark.parametrize("algorithm", ["linear", "binomial"])
def test_bcast_reaches_everyone(algorithm):
    cluster = quiet_cluster(n=7)  # non-power-of-two
    payload = np.arange(32, dtype=np.uint8)
    run = run_collective(cluster, "bcast", algorithm, nbytes=32, root=1, data=payload)
    for rank in range(7):
        assert (np.asarray(run.value(rank)) == payload).all()


@pytest.mark.parametrize("algorithm", ["linear", "binomial"])
def test_reduce_combines_all_values(algorithm):
    cluster = quiet_cluster(n=6)
    data = [rank + 1 for rank in range(6)]
    run = run_collective(
        cluster, "reduce", algorithm, nbytes=8, root=0, data=data,
        combine=lambda a, b: (a or 0) + (b or 0),
    )
    assert run.value(0) == sum(data)


def test_allgather_ring_everyone_gets_everything():
    cluster = quiet_cluster(n=5)
    data = [np.full(8, rank, dtype=np.uint8) for rank in range(5)]
    run = run_collective(cluster, "allgather", "ring", nbytes=8, data=data)
    for rank in range(5):
        blocks = run.value(rank)
        for src, block in enumerate(blocks):
            assert (np.asarray(block) == src).all()


def test_alltoall_completes_all_pairs():
    cluster = quiet_cluster(n=5)
    run = run_collective(cluster, "alltoall", "linear", nbytes=4 * KB)
    for rank in range(5):
        received = run.value(rank)
        assert sorted(received) == [r for r in range(5) if r != rank]


def test_barrier_completes_and_costs_only_constants():
    cluster = quiet_cluster(n=8)
    run = run_collective(cluster, "barrier", "binomial", nbytes=0)
    gt = cluster.ground_truth
    # Zero-byte tree traversal: bounded by ~2*depth hops of max constants.
    bound = 2 * 3 * 4 * (gt.C.max() * 2 + gt.L.max())
    assert 0 < run.time < bound


# ------------------------------------------------------------------ timing
def test_linear_scatter_time_matches_lmo_formula():
    """DES linear scatter equals the paper's formula (4) exactly when the
    last-sent message also finishes last (enforced here by construction)."""
    n = 5
    gt = GroundTruth.random(n, seed=11)
    cluster = SimulatedCluster(
        random_cluster(n, seed=11), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=11,
    )
    M = 64 * KB
    run = run_collective(cluster, "scatter", "linear", nbytes=M, root=0)
    # Formula (4): (n-1)(C_r + M t_r) + max_i over the *pipelined* arrivals:
    # message k departs after k send slots, so completion is
    # max_k [ k*(C_r+M t_r) + L_rk + M/beta + C_k + M t_k ].
    slot = gt.send_cost(0, M)
    pipeline = max(
        (k + 1) * slot + gt.L[0, dst] + M / gt.beta[0, dst] + gt.send_cost(dst, M)
        for k, dst in enumerate([1, 2, 3, 4])
    )
    assert run.time == pytest.approx(pipeline, rel=1e-12)
    # The paper's formula (4) is the pessimistic envelope of the pipeline:
    formula4 = (n - 1) * slot + max(
        gt.L[0, i] + M / gt.beta[0, i] + gt.send_cost(i, M) for i in range(1, n)
    )
    assert run.time <= formula4 + 1e-15
    # ... and is tight when the root-CPU term dominates (it does here).
    assert run.time == pytest.approx(formula4, rel=0.05)


def test_linear_scatter_root_time_is_send_slots_only():
    n = 5
    cluster = quiet_cluster(n=n, seed=12)
    gt = cluster.ground_truth
    M = 8 * KB
    run = run_collective(cluster, "scatter", "linear", nbytes=M, root=0)
    assert run.root_time == pytest.approx((n - 1) * gt.send_cost(0, M), rel=1e-12)
    assert run.time > run.root_time


def test_binomial_scatter_faster_than_linear_for_small_messages():
    """log n constant cost beats (n-1) serial sends when M is small."""
    cluster = quiet_cluster(n=16, seed=13)
    t_lin = run_collective(cluster, "scatter", "linear", nbytes=256, root=0).time
    t_bin = run_collective(cluster, "scatter", "binomial", nbytes=256, root=0).time
    assert t_bin < t_lin


def test_linear_scatter_faster_than_binomial_for_large_messages():
    """Binomial re-sends data through intermediate nodes: for large M the
    linear algorithm wins on a switched cluster (paper Fig. 6)."""
    cluster = quiet_cluster(n=16, seed=14)
    M = 150 * KB
    t_lin = run_collective(cluster, "scatter", "linear", nbytes=M, root=0).time
    t_bin = run_collective(cluster, "scatter", "binomial", nbytes=M, root=0).time
    assert t_lin < t_bin


def test_gather_and_scatter_symmetric_structure():
    """For the IDEAL profile and small messages, linear gather is within a
    small factor of linear scatter (same serial root CPU bottleneck).  For
    larger messages gather grows past scatter: its flows share the root's
    ingress port, whereas scatter fans out over distinct ports."""
    cluster = quiet_cluster(n=8, seed=15)
    t_scatter = run_collective(cluster, "scatter", "linear", nbytes=256).time
    t_gather = run_collective(cluster, "gather", "linear", nbytes=256).time
    assert t_gather == pytest.approx(t_scatter, rel=0.6)

    M = 64 * KB
    t_scatter_big = run_collective(cluster, "scatter", "linear", nbytes=M).time
    t_gather_big = run_collective(cluster, "gather", "linear", nbytes=M).time
    assert t_gather_big > t_scatter_big


def test_collective_run_deterministic_without_noise():
    cluster = quiet_cluster(n=8, seed=16)
    t1 = run_collective(cluster, "scatter", "binomial", nbytes=KB).time
    t2 = run_collective(cluster, "scatter", "binomial", nbytes=KB).time
    assert t1 == t2


def test_registry_contents_and_errors():
    assert ("scatter", "linear") in ALGORITHMS
    assert ("gather", "binomial") in ALGORITHMS
    with pytest.raises(KeyError, match="available"):
        get_algorithm("scatter", "hypercube")


def test_scatter_data_length_validated():
    cluster = quiet_cluster(n=4)
    with pytest.raises(Exception, match="blocks"):
        run_collective(cluster, "scatter", "linear", nbytes=8, data=[None] * 3)
