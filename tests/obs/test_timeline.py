"""The windowed time-series store: ticking, queries, persistence."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import (
    DEFAULT_TIERS,
    TimelineStore,
    Window,
    WindowTier,
    merge_windows,
)

TIERS = (WindowTier(1.0, 120), WindowTier(10.0, 120), WindowTier(60.0, 180))


def make_store():
    reg = MetricsRegistry()
    clock = [0.0]
    store = TimelineStore(registry=reg, tiers=TIERS, clock=lambda: clock[0])
    store.tick(0.0)
    return reg, clock, store


def drive(reg, clock, store, seconds, ok_per_s=9, err_per_s=1, latency=0.05):
    for _ in range(seconds):
        clock[0] += 1.0
        reg.counter("service_requests_total", outcome="ok").inc(ok_per_s)
        if err_per_s:
            reg.counter("service_requests_total", outcome="error").inc(err_per_s)
        reg.histogram("service_request_seconds",
                      buckets=(0.01, 0.1, 0.25, 1.0)).observe(latency)
        store.tick(clock[0])


def test_tier_validation():
    with pytest.raises(ValueError):
        WindowTier(0.0, 10)
    with pytest.raises(ValueError):
        WindowTier(1.0, 0)
    with pytest.raises(ValueError):
        TimelineStore(registry=MetricsRegistry(), tiers=())
    with pytest.raises(ValueError):  # duplicate widths are ambiguous
        TimelineStore(registry=MetricsRegistry(),
                      tiers=(WindowTier(1.0, 10), WindowTier(1.0, 20)))
    # tier order does not matter: the store sorts finest -> coarsest
    store = TimelineStore(registry=MetricsRegistry(),
                          tiers=(WindowTier(10.0, 10), WindowTier(1.0, 10)))
    assert [t.width for t in store.tiers] == [1.0, 10.0]


def test_counter_sum_and_rate():
    reg, clock, store = make_store()
    drive(reg, clock, store, 30)
    assert store.sum_over_window("service_requests_total", 30.0) == 300.0
    assert store.sum_over_window("service_requests_total", 30.0,
                                 labels={"outcome": "error"}) == 30.0
    assert store.rate("service_requests_total", 30.0) == pytest.approx(10.0)


def test_counter_reset_clamps_to_zero():
    """A registry reset (restart) must never produce a negative delta."""
    reg, clock, store = make_store()
    drive(reg, clock, store, 5)
    reg.reset()
    clock[0] += 1.0
    reg.counter("service_requests_total", outcome="ok").inc(2)
    store.tick(clock[0])
    total = store.sum_over_window("service_requests_total", 60.0)
    assert total == 52.0  # 50 before the reset + 2 after, nothing negative
    assert store.rate("service_requests_total", 60.0) >= 0.0


def test_gauge_latest_wins():
    reg, clock, store = make_store()
    for value in (3.0, 7.0, 5.0):
        clock[0] += 1.0
        reg.gauge("queue_depth").set(value)
        store.tick(clock[0])
    assert store.gauge("queue_depth") == 5.0
    assert math.isnan(store.gauge("never_seen"))


def test_quantile_over_window():
    reg, clock, store = make_store()
    drive(reg, clock, store, 20, latency=0.05)
    q99 = store.quantile_over_window("service_request_seconds", 0.99, 20.0)
    assert 0.01 <= q99 <= 0.1  # the 0.05 observations live in (0.01, 0.1]
    assert math.isnan(
        store.quantile_over_window("service_request_seconds", 0.99, 20.0,
                                   labels={"outcome": "nope"})
    )


def test_tier_selection_prefers_finest_sufficient():
    reg, clock, store = make_store()
    drive(reg, clock, store, 30)
    fine = store.windows_in(30.0)
    assert all(w.width == 1.0 for w in fine)
    coarse = store.windows_in(600.0)
    assert all(w.width == 10.0 for w in coarse)


def test_backwards_clock_is_clamped():
    reg, clock, store = make_store()
    drive(reg, clock, store, 5)
    before = store.last_tick
    store.tick(before - 3.0)  # clock went backwards; no crash, no reorder
    assert store.last_tick == before


def test_window_dict_round_trip():
    reg, clock, store = make_store()
    drive(reg, clock, store, 15)
    doc = store.to_dict()
    back = TimelineStore.from_dict(doc)
    assert back.sum_over_window("service_requests_total", 15.0) == \
        store.sum_over_window("service_requests_total", 15.0)
    assert back.rate("service_requests_total", 15.0) == \
        store.rate("service_requests_total", 15.0)
    # a query-only store cannot tick
    with pytest.raises(ValueError):
        back.tick(99.0)


def test_jsonl_round_trip(tmp_path):
    reg, clock, store = make_store()
    drive(reg, clock, store, 15)
    path = str(tmp_path / "timeline.jsonl")
    store.write_jsonl(path)
    back = TimelineStore.read_jsonl(path)
    assert back.sum_over_window("service_requests_total", 15.0) == 150.0
    assert back.counter_names() == store.counter_names()


def test_maybe_tick_respects_finest_width():
    reg, clock, store = make_store()
    clock[0] = 0.5
    assert not store.maybe_tick()  # under a second since the baseline tick
    clock[0] = 1.5
    assert store.maybe_tick()
    assert not store.maybe_tick()


def test_eviction_is_bounded():
    reg = MetricsRegistry()
    clock = [0.0]
    store = TimelineStore(registry=reg,
                          tiers=(WindowTier(1.0, 4),),
                          clock=lambda: clock[0])
    store.tick(0.0)
    for _ in range(20):
        clock[0] += 1.0
        reg.counter("ticks_total").inc()
        store.tick(clock[0])
    windows = store.windows_in(100.0)
    assert len(windows) <= 4
    assert store.sum_over_window("ticks_total", 100.0) <= 4.0


def test_merge_windows_requires_same_width():
    a = Window(width=1.0, index=0)
    b = Window(width=2.0, index=0)
    with pytest.raises(ValueError):
        merge_windows(a, b)


def test_default_tiers_cover_six_hours():
    assert DEFAULT_TIERS[0].width == 1.0
    assert DEFAULT_TIERS[-1].horizon >= 3 * 3600.0
