"""Tests for LogP, LogGP and PLogP models."""

import pytest

from repro.models import LogGPModel, LogPModel, PiecewiseLinear, PLogPModel


# --------------------------------------------------------------------- LogP
def test_logp_small_message_is_L_plus_2o():
    model = LogPModel(L=30e-6, o=10e-6, g=12e-6, P=8)
    assert model.p2p_time(0, 1, 100) == pytest.approx(30e-6 + 2 * 10e-6)


def test_logp_large_message_pays_gap_per_packet():
    model = LogPModel(L=30e-6, o=10e-6, g=12e-6, P=8, packet_bytes=1500)
    t = model.p2p_time(0, 1, 6000)  # 4 packets
    assert t == pytest.approx(30e-6 + 20e-6 + 3 * 12e-6)


def test_logp_packets_and_bandwidth():
    model = LogPModel(L=30e-6, o=10e-6, g=12e-6, P=8, packet_bytes=1000)
    assert model.packets(0) == 1
    assert model.packets(1) == 1
    assert model.packets(1000) == 1
    assert model.packets(1001) == 2
    assert model.bandwidth() == pytest.approx(1000 / 12e-6)


def test_logp_validation():
    with pytest.raises(ValueError):
        LogPModel(L=-1.0, o=1e-6, g=1e-6, P=4)
    with pytest.raises(ValueError):
        LogPModel(L=1e-6, o=1e-6, g=1e-6, P=1)
    with pytest.raises(ValueError):
        LogPModel(L=1e-6, o=1e-6, g=1e-6, P=4, packet_bytes=0)


# -------------------------------------------------------------------- LogGP
def test_loggp_p2p_formula():
    model = LogGPModel(L=30e-6, o=10e-6, g=15e-6, G=8e-8, P=8)
    M = 10_000
    assert model.p2p_time(0, 1, M) == pytest.approx(30e-6 + 20e-6 + (M - 1) * 8e-8)


def test_loggp_zero_bytes():
    model = LogGPModel(L=30e-6, o=10e-6, g=15e-6, G=8e-8, P=8)
    assert model.p2p_time(0, 1, 0) == pytest.approx(50e-6)


def test_loggp_message_train():
    model = LogGPModel(L=30e-6, o=10e-6, g=15e-6, G=8e-8, P=8)
    single = model.p2p_time(0, 1, 1000)
    assert model.message_train_time(1000, 4) == pytest.approx(single + 3 * 15e-6)
    with pytest.raises(ValueError):
        model.message_train_time(1000, 0)


def test_loggp_bandwidth_is_inverse_G():
    model = LogGPModel(L=0, o=0, g=0, G=8e-8, P=4)
    assert model.bandwidth() == pytest.approx(1 / 8e-8)


# -------------------------------------------------------------------- PLogP
def test_piecewise_linear_interpolates():
    f = PiecewiseLinear((0.0, 10.0, 20.0), (0.0, 100.0, 110.0))
    assert f(0) == 0
    assert f(5) == pytest.approx(50.0)
    assert f(10) == pytest.approx(100.0)
    assert f(15) == pytest.approx(105.0)


def test_piecewise_linear_extrapolates_end_segments():
    f = PiecewiseLinear((10.0, 20.0), (100.0, 110.0))
    assert f(30) == pytest.approx(120.0)
    assert f(0) == pytest.approx(90.0)


def test_piecewise_linear_single_point_is_constant():
    f = PiecewiseLinear((5.0,), (42.0,))
    assert f(0) == f(5) == f(1e9) == 42.0


def test_piecewise_linear_from_samples_sorts_and_dedups():
    f = PiecewiseLinear.from_samples([(10, 1.0), (0, 0.0), (10, 2.0)])
    assert f.breakpoints() == [(0.0, 0.0), (10.0, 2.0)]


def test_piecewise_linear_validation():
    with pytest.raises(ValueError):
        PiecewiseLinear((), ())
    with pytest.raises(ValueError):
        PiecewiseLinear((0.0, 0.0), (1.0, 2.0))


def make_plogp(P=8):
    g = PiecewiseLinear((0.0, 1024.0, 65536.0), (40e-6, 120e-6, 5.3e-3))
    o_s = PiecewiseLinear((0.0, 65536.0), (10e-6, 400e-6))
    o_r = PiecewiseLinear((0.0, 65536.0), (12e-6, 420e-6))
    return PLogPModel(L=35e-6, o_s=o_s, o_r=o_r, g=g, P=P)


def test_plogp_p2p_is_L_plus_gap():
    model = make_plogp()
    assert model.p2p_time(0, 1, 1024) == pytest.approx(35e-6 + 120e-6)


def test_plogp_gap_covers_overheads():
    model = make_plogp()
    assert model.gap_covers_overheads(0)
    assert model.gap_covers_overheads(65536)


def test_plogp_validation():
    f = PiecewiseLinear((0.0,), (1.0,))
    with pytest.raises(ValueError):
        PLogPModel(L=-1.0, o_s=f, o_r=f, g=f, P=4)
    with pytest.raises(ValueError):
        PLogPModel(L=1e-6, o_s=f, o_r=f, g=f, P=1)
