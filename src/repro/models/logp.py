"""The LogP model [Culler et al., PPoPP 1993] (paper Sec. II).

LogP describes communication of *small fixed-size* packets with four
parameters: latency ``L`` (constant network contribution), overhead ``o``
(constant processor contribution), gap ``g`` (minimum inter-message time,
the reciprocal of per-message bandwidth — a mixed contribution), and the
processor count ``P``.

A point-to-point message costs ``L + 2o``.  Large messages are modelled as
a train of ``ceil(M / w)`` packets of the underlying packet size ``w``:
``L + 2o + (k - 1) g``.  The paper abbreviates this as ``L + 2o + M g``
("in the formula for a series the gap parameter will be used"), which our
:meth:`LogPModel.p2p_time` reproduces with ``w`` configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.base import validate_nbytes, validate_rank

__all__ = ["LogPModel"]


@dataclass(frozen=True)
class LogPModel:
    """Homogeneous LogP parameters.

    Attributes
    ----------
    L:
        Latency upper bound, seconds (constant network contribution).
    o:
        Send/receive overhead, seconds (constant processor contribution).
    g:
        Gap between consecutive packets, seconds (mixed variable
        contribution).
    P:
        Number of processors.
    packet_bytes:
        Packet size ``w`` used to decompose large messages (LogP itself
        leaves this implicit; Ethernet's MTU is the natural choice).
    """

    L: float
    o: float
    g: float
    P: int
    packet_bytes: int = 1500

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g) < 0:
            raise ValueError(f"negative LogP parameters: {self}")
        if self.P < 2:
            raise ValueError("a communication model needs P >= 2")
        if self.packet_bytes < 1:
            raise ValueError("packet_bytes must be >= 1")

    @property
    def n(self) -> int:
        """Processor count (protocol-compatible alias of ``P``)."""
        return self.P

    def packets(self, nbytes: float) -> int:
        """Number of packets a message of ``nbytes`` decomposes into."""
        validate_nbytes(nbytes)
        if nbytes == 0:
            return 1
        return -(-int(nbytes) // self.packet_bytes)

    def p2p_time(self, i: int, j: int, nbytes: float) -> float:
        """``L + 2o + (k-1) g`` for a k-packet message."""
        validate_rank(self.P, i, j)
        return self.L + 2 * self.o + (self.packets(nbytes) - 1) * self.g

    def bandwidth(self) -> float:
        """End-to-end bandwidth implied by the gap, bytes/second."""
        return self.packet_bytes / self.g if self.g > 0 else float("inf")
