"""Tests for the original and extended LMO models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GroundTruth
from repro.models import (
    ExtendedLMOModel,
    GatherIrregularity,
    LMOModel,
)

KB = 1024


def make_extended(n=5, seed=0):
    return ExtendedLMOModel.from_ground_truth(GroundTruth.random(n, seed=seed))


def test_extended_p2p_formula():
    model = make_extended()
    M = 10 * KB
    expected = (
        model.C[0] + model.L[0, 3] + model.C[3]
        + M * (model.t[0] + 1 / model.beta[0, 3] + model.t[3])
    )
    assert model.p2p_time(0, 3, M) == pytest.approx(expected)


def test_extended_p2p_symmetric_for_symmetric_links():
    """T_ij(M) == T_ji(M): both directions cross the same switch."""
    model = make_extended()
    assert model.p2p_time(1, 4, 5000) == pytest.approx(model.p2p_time(4, 1, 5000))


def test_send_cost_and_wire_cost_partition_p2p_time():
    """C_i + M t_i (serial) + L + M/b + C_j + M t_j (parallel) = T_ij(M)."""
    model = make_extended()
    M = 30 * KB
    total = model.send_cost(0, M) + model.wire_and_remote_cost(0, 2, M)
    assert total == pytest.approx(model.p2p_time(0, 2, M))


def test_to_heterogeneous_hockney_preserves_p2p_times():
    """Paper Sec. III: the LMO parameters regroup into Hockney's."""
    model = make_extended(6, seed=2)
    hockney = model.to_heterogeneous_hockney()
    for i, j in [(0, 1), (2, 5), (4, 3)]:
        for M in [0, KB, 100 * KB]:
            assert hockney.p2p_time(i, j, M) == pytest.approx(model.p2p_time(i, j, M))


def test_original_lmo_folds_latency_into_delays():
    model = make_extended(4, seed=3)
    original = model.to_original_lmo()
    assert isinstance(original, LMOModel)
    # The variable part is untouched...
    assert np.allclose(original.t, model.t)
    assert np.allclose(original.beta, model.beta)
    # ... and fixed delays absorbed roughly the per-node half-latency, so
    # p2p estimates agree up to link-latency spread.
    spread = np.ptp(model.L[~np.eye(4, dtype=bool)])
    diff = abs(original.p2p_time(0, 1, 0) - model.p2p_time(0, 1, 0))
    assert diff <= 2 * spread + 1e-12


def test_original_lmo_p2p_formula():
    model = LMOModel(
        C=np.array([10e-6, 20e-6]),
        t=np.array([1e-9, 2e-9]),
        beta=np.array([[np.inf, 1e7], [1e7, np.inf]]),
    )
    M = 1000
    assert model.p2p_time(0, 1, M) == pytest.approx(30e-6 + M * (3e-9 + 1e-7))


def test_validation_rejects_bad_shapes_and_values():
    gt = GroundTruth.random(3, seed=4)
    with pytest.raises(ValueError):
        ExtendedLMOModel(gt.C[:2], gt.t, gt.L, gt.beta)
    L = gt.L.copy()
    L[0, 1] *= 2  # asymmetric
    with pytest.raises(ValueError):
        ExtendedLMOModel(gt.C, gt.t, L, gt.beta)
    C = gt.C.copy()
    C[0] = -1.0
    with pytest.raises(ValueError):
        ExtendedLMOModel(C, gt.t, gt.L, gt.beta)


# ------------------------------------------------------ gather irregularity
def test_irregularity_regimes():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    assert irr.regime(1 * KB) == "small"
    assert irr.regime(30 * KB) == "medium"
    assert irr.regime(100 * KB) == "large"


def test_irregularity_probability_grows_with_size():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, p_at_m1=0.0, p_at_m2=0.8)
    assert irr.escalation_probability(2 * KB) == 0.0
    p_mid = irr.escalation_probability(30 * KB)
    p_high = irr.escalation_probability(60 * KB)
    assert 0 < p_mid < p_high <= 0.8
    assert irr.escalation_probability(100 * KB) == 0.0  # paced regime


def test_irregularity_validation():
    with pytest.raises(ValueError):
        GatherIrregularity(m1=10.0, m2=5.0)
    with pytest.raises(ValueError):
        GatherIrregularity(m1=1.0, m2=2.0, p_at_m1=0.9, p_at_m2=0.1)


def test_with_irregularity_returns_annotated_copy():
    model = make_extended()
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB)
    annotated = model.with_irregularity(irr)
    assert annotated.gather_irregularity is irr
    assert model.gather_irregularity is None
    assert np.array_equal(annotated.C, model.C)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 10), seed=st.integers(0, 500), m=st.integers(0, 1 << 20))
def test_p2p_time_monotone_in_message_size(n, seed, m):
    model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(n, seed=seed))
    assert model.p2p_time(0, n - 1, m + 1) > model.p2p_time(0, n - 1, m) - 1e-18
