"""Figure 5: linear gather — observation vs all models' predictions.

Only the LMO model (formula (5)) captures linear gather's structure on a
switched TCP cluster: one slope below ``M1``, non-deterministic
escalations (up to ~0.25 s) between ``M1`` and ``M2``, and a second,
steeper slope above ``M2`` where the incoming flows serialize.  The
traditional models reuse their scatter formulas and miss all of it.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    KB,
    SIZES_FULL,
    SIZES_QUICK,
    ExperimentResult,
    Series,
    get_model_suite,
    observation_benchmark,
    paper_cluster,
    prediction_series,
)
from repro.models import GatherPrediction, predict_linear_gather
from repro.mpi import run_collective
from repro.predict_service import predict_sweep

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 5 (series in seconds, sizes in bytes)."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    bench = observation_benchmark(cluster, quick)

    # Observation: median (the figure's visible line) plus escalation
    # statistics per size.
    reps = 8 if quick else 15
    medians, minima, esc_fraction = [], [], []
    for m in sizes:
        samples = [
            run_collective(cluster, "gather", "linear", m).time for _ in range(reps)
        ]
        arr = np.asarray(samples)
        medians.append(float(np.median(arr)))
        minima.append(float(arr.min()))
        esc_fraction.append(float((arr - arr.min() > 0.05).mean()))
    del bench  # observation done manually above for escalation statistics

    observed = Series("observed-median", sizes, tuple(medians))
    observed_clean = Series("observed-min", sizes, tuple(minima))

    # The base-value curve still needs the per-size GatherPrediction
    # (regime structure); the expected curve comes from the sweep engine.
    lmo_values = []
    for m in sizes:
        pred = predict_linear_gather(suite.lmo, m)
        assert isinstance(pred, GatherPrediction)
        lmo_values.append(pred.base)
    series = [
        observed,
        observed_clean,
        Series("lmo", sizes, tuple(lmo_values)),
        prediction_series("lmo-expected", suite.lmo, "gather", "linear", sizes),
        prediction_series("het-hockney", suite.hockney_het, "gather", "linear", sizes),
        prediction_series("loggp", suite.loggp, "gather", "linear", sizes),
        prediction_series("plogp", suite.plogp, "gather", "linear", sizes),
    ]
    result = ExperimentResult(
        experiment_id="fig5",
        title="Linear gather: observation vs LMO (two slopes + escalations) and others",
        series=series,
    )

    irr = suite.lmo.gather_irregularity
    assert irr is not None
    medium = [m for m in sizes if irr.m1 < m <= irr.m2]
    small = [m for m in sizes if m <= irr.m1]
    large = [m for m in sizes if m > irr.m2]
    esc_by_size = dict(zip(sizes, esc_fraction))

    def slope(series_: Series, subset: list[int]) -> float:
        if len(subset) < 2:
            return float("nan")
        return (series_.at(subset[-1]) - series_.at(subset[0])) / (subset[-1] - subset[0])

    checks: dict[str, bool] = {}
    if small and large and len(large) >= 2:
        checks["large-message slope is much steeper (>2x) than small-message slope"] = (
            slope(observed_clean, large) > 2 * max(slope(observed_clean, small), 1e-12)
            if len(small) >= 2
            else True
        )
        lmo_series = result.get("lmo")
        checks["LMO reproduces the large-message slope within 40%"] = abs(
            slope(lmo_series, large) / slope(observed_clean, large) - 1
        ) < 0.4
    if medium:
        checks["escalations occur only in the medium region"] = all(
            esc_by_size[m] == 0.0 for m in small + large
        ) and any(esc_by_size[m] > 0 for m in medium)
        checks["escalation probability grows toward M2"] = (
            max(irr.escalation_probability(m) for m in medium)
            >= irr.escalation_probability(medium[0])
        )
    checks["only LMO distinguishes gather from scatter"] = (
        result.get("het-hockney").values == tuple(
            float(v) for v in predict_sweep(
                suite.hockney_het, "scatter", "linear",
                [float(m) for m in sizes],
            )
        )
    )
    result.checks = checks
    result.notes.append(
        f"estimated M1={irr.m1 / KB:.0f} KB, M2={irr.m2 / KB:.0f} KB, "
        f"escalation magnitude {irr.escalation_value * 1e3:.0f} ms "
        f"(paper, LAM 7.1.3: M1=4 KB, M2=65 KB, escalations up to 250 ms)"
    )
    result.notes.append(
        "escalated-run fraction per size: "
        + ", ".join(f"{m // KB}K:{f:.0%}" for m, f in zip(sizes, esc_fraction))
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
