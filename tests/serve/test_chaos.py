"""The chaos proxy itself: transparency when clean, reachability of
every fault arm, and determinism of the injected fault sequence."""

import socket

import pytest

from repro import api
from repro.serve import protocol
from repro.serve.chaos import ChaosConfig, ChaosProxy, _read_line
from repro.serve.client import ServiceClient
from repro.serve.runner import ServerThread
from repro.serve.server import ServeConfig

from tests.serve.conftest import KB, make_model

pytestmark = pytest.mark.resilience


@pytest.fixture(scope="module")
def host():
    config = ServeConfig(port=0, models={"lmo": make_model()}, workers=1,
                         telemetry=False)
    with ServerThread(config) as server:
        yield server


def _proxy(server, config):
    hostname, port = server.address
    return ChaosProxy(hostname, port, config)


def test_clean_profile_is_a_transparent_relay(host):
    model = make_model()
    with _proxy(host, ChaosConfig.clean()) as proxy:
        with ServiceClient(host=proxy.host, port=proxy.port) as client:
            for nbytes in (KB, 16 * KB, 64 * KB, 256 * KB):
                via_proxy = client.predict("lmo", "scatter", "linear", nbytes)
                assert via_proxy == api.predict(model, "scatter", "linear",
                                                nbytes)
        stats = proxy.stats.snapshot()
    assert stats["connections"] == 1
    assert stats["requests"] == 4 and stats["responses"] == 4
    assert proxy.stats.faults == 0


def test_config_validates_rates():
    with pytest.raises(ValueError):
        ChaosConfig(reset_rate=1.5)
    with pytest.raises(ValueError):
        ChaosConfig(stall_seconds=-1.0)


def test_reset_arm_surfaces_as_connection_failure(host):
    with _proxy(host, ChaosConfig(seed=0, reset_rate=1.0, partial_rate=0.0,
                                  corrupt_rate=0.0, stall_rate=0.0,
                                  delay_rate=0.0)) as proxy:
        with pytest.raises((protocol.WireError, OSError)):
            with ServiceClient(host=proxy.host, port=proxy.port,
                               timeout=10.0) as client:
                client.health()
        assert proxy.stats.snapshot()["resets"] == 1


def test_partial_arm_surfaces_as_wire_error(host):
    with _proxy(host, ChaosConfig(seed=0, reset_rate=0.0, partial_rate=1.0,
                                  corrupt_rate=0.0, stall_rate=0.0,
                                  delay_rate=0.0)) as proxy:
        with pytest.raises((protocol.WireError, OSError)):
            with ServiceClient(host=proxy.host, port=proxy.port,
                               timeout=10.0) as client:
                client.health()
        assert proxy.stats.snapshot()["partials"] == 1


def test_corrupt_arm_is_caught_by_the_crc(host):
    with _proxy(host, ChaosConfig(seed=0, reset_rate=0.0, partial_rate=0.0,
                                  corrupt_rate=1.0, stall_rate=0.0,
                                  delay_rate=0.0)) as proxy:
        with pytest.raises(protocol.WireError):
            with ServiceClient(host=proxy.host, port=proxy.port,
                               timeout=10.0) as client:
                client.health()
        assert proxy.stats.snapshot()["corruptions"] == 1


def test_stall_arm_trips_the_client_timeout(host):
    config = ChaosConfig(seed=0, reset_rate=0.0, partial_rate=0.0,
                         corrupt_rate=0.0, stall_rate=1.0,
                         stall_seconds=5.0, delay_rate=0.0)
    with _proxy(host, config) as proxy:
        with pytest.raises((socket.timeout, TimeoutError, OSError)):
            with ServiceClient(host=proxy.host, port=proxy.port,
                               timeout=0.5) as client:
                client.health()
        assert proxy.stats.snapshot()["stalls"] == 1


def test_delay_arm_stretches_latency_without_breaking(host):
    config = ChaosConfig(seed=0, reset_rate=0.0, partial_rate=0.0,
                         corrupt_rate=0.0, stall_rate=0.0,
                         delay_rate=1.0, delay_seconds=0.05)
    with _proxy(host, config) as proxy:
        with ServiceClient(host=proxy.host, port=proxy.port) as client:
            assert client.health()["status"] == "running"
        assert proxy.stats.snapshot()["delays"] == 1


def _fault_trace(server, seed, calls=40):
    """Drive a fixed call sequence through a fresh proxy; record each
    call's outcome class and the final stats."""
    outcomes = []
    with _proxy(server, ChaosConfig(seed=seed)) as proxy:
        client = None
        for i in range(calls):
            try:
                if client is None:
                    client = ServiceClient(host=proxy.host, port=proxy.port,
                                           timeout=2.0)
                client.predict("lmo", "scatter", "linear", float(KB * (i + 1)))
                outcomes.append("ok")
            except Exception as exc:  # noqa: BLE001 - classified below
                outcomes.append(type(exc).__name__)
                if client is not None:
                    client.close()
                client = None
        if client is not None:
            client.close()
        return outcomes, proxy.stats.snapshot()


def test_same_seed_same_faults(host):
    """The whole point: a fixed seed and a fixed call sequence replay
    the identical fault sequence, call by call."""
    outcomes_a, stats_a = _fault_trace(host, seed=11)
    outcomes_b, stats_b = _fault_trace(host, seed=11)
    assert outcomes_a == outcomes_b
    for key in ("resets", "partials", "corruptions"):
        assert stats_a[key] == stats_b[key]
    # And a different seed lands faults elsewhere.
    outcomes_c, _ = _fault_trace(host, seed=12)
    assert outcomes_c != outcomes_a


def test_read_line_handles_split_and_glued_lines():
    class Conn:
        def __init__(self, chunks):
            self.chunks = list(chunks)

        def recv(self, _n):
            return self.chunks.pop(0) if self.chunks else b""

    conn = Conn([b'{"a"', b': 1}\n{"b": 2}\n{"c"'])
    buffer = bytearray()
    assert _read_line(conn, buffer) == b'{"a": 1}\n'
    assert _read_line(conn, buffer) == b'{"b": 2}\n'
    assert _read_line(conn, buffer) is None  # EOF mid-line
