"""Integration tests: every reproduced table/figure passes its shape checks.

These run the real pipeline end to end (estimate models on the simulated
cluster, measure collectives, compare predictions) in quick mode.  The
model suite is estimated once per session (module-level cache in
``repro.experiments.common``).
"""

import io

import pytest

from repro.experiments import ALL_EXPERIMENTS, run_experiment
from repro.experiments.common import KB, ExperimentResult, Series


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_experiment_shape_checks_pass(experiment_id):
    result = run_experiment(experiment_id, quick=True)
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"{experiment_id} failed checks: {failed}"
    assert result.checks, f"{experiment_id} defines no checks"


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="available"):
        run_experiment("fig99")


def test_render_contains_title_and_checks():
    result = run_experiment("fig2")
    text = result.render()
    assert "fig2" in text
    assert "[PASS]" in text


def test_series_helpers():
    s = Series("x", (KB, 2 * KB), (1.0, 2.0))
    ref = Series("ref", (KB, 2 * KB), (2.0, 2.0))
    assert s.at(KB) == 1.0
    assert s.mean_relative_error(ref) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        Series("bad", (1,), (1.0, 2.0))
    with pytest.raises(KeyError):
        ExperimentResult("id", "t").get("nope")


def test_report_generation_quick():
    from repro.experiments.report import generate_report

    buffer = io.StringIO()
    ok = generate_report(quick=True, stream=buffer)
    text = buffer.getvalue()
    assert ok, "some experiment checks failed in the report"
    assert "# EXPERIMENTS" in text
    for experiment_id in ALL_EXPERIMENTS:
        assert f"## {experiment_id}:" in text
    assert "ALL SHAPE CHECKS PASS" in text


def test_csv_export_of_a_numeric_experiment():
    result = run_experiment("fig1", quick=True)
    csv = result.to_csv()
    lines = csv.strip().splitlines()
    assert lines[0].startswith("nbytes,observed")
    assert len(lines) == 1 + len(result.series[0].sizes)
    first = lines[1].split(",")
    assert int(first[0]) == result.series[0].sizes[0]
    assert float(first[1]) == result.series[0].values[0]


def test_csv_export_empty_for_structural_experiment():
    assert run_experiment("fig2").to_csv() == ""


def test_checks_hold_at_a_second_seed():
    """Robustness: the headline figures' shape checks are not a
    seed-0 artifact."""
    for experiment_id in ("fig4", "fig6"):
        result = run_experiment(experiment_id, quick=True, seed=1)
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id}@seed1 failed: {failed}"
