"""Tests for model serialization (round trips for every type)."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GroundTruth
from repro.io import FORMAT_VERSION, SCHEMA_VERSION, dumps, load, loads, save
from repro.models import (
    ExtendedLMOModel,
    GatherIrregularity,
    HeterogeneousHockneyModel,
    HockneyModel,
    LMOModel,
    LogGPModel,
    LogPModel,
    PiecewiseLinear,
    PLogPModel,
)

KB = 1024


def roundtrip(obj):
    return loads(dumps(obj))


def test_ground_truth_roundtrip():
    gt = GroundTruth.random(5, seed=1)
    back = roundtrip(gt)
    assert isinstance(back, GroundTruth)
    assert np.allclose(back.C, gt.C)
    assert np.allclose(back.L, gt.L)
    # inf diagonal survives the 'inf' string encoding.
    assert np.isinf(back.beta[0, 0])
    assert back.p2p_time(0, 3, 10 * KB) == pytest.approx(gt.p2p_time(0, 3, 10 * KB))


def test_extended_lmo_roundtrip_with_irregularity():
    irr = GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.22, p_at_m2=0.7)
    model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(4, seed=2), irr)
    back = roundtrip(model)
    assert isinstance(back, ExtendedLMOModel)
    assert back.gather_irregularity == irr
    assert back.p2p_time(1, 2, KB) == pytest.approx(model.p2p_time(1, 2, KB))


def test_extended_lmo_roundtrip_without_irregularity():
    model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(3, seed=3))
    assert roundtrip(model).gather_irregularity is None


def test_original_lmo_roundtrip():
    gt = GroundTruth.random(3, seed=4)
    model = ExtendedLMOModel.from_ground_truth(gt).to_original_lmo()
    back = roundtrip(model)
    assert isinstance(back, LMOModel)
    assert back.p2p_time(0, 2, KB) == pytest.approx(model.p2p_time(0, 2, KB))


def test_hockney_roundtrips():
    hom = HockneyModel(alpha=1e-4, beta=8e-8, n=8)
    assert roundtrip(hom) == hom
    het = HeterogeneousHockneyModel.from_ground_truth(GroundTruth.random(4, seed=5))
    back = roundtrip(het)
    assert np.allclose(back.alpha, het.alpha)


def test_logp_family_roundtrips():
    logp = LogPModel(L=3e-5, o=1e-5, g=1.2e-5, P=8, packet_bytes=1500)
    assert roundtrip(logp) == logp
    loggp = LogGPModel(L=3e-5, o=1e-5, g=1.2e-5, G=9e-9, P=8)
    assert roundtrip(loggp) == loggp


def test_plogp_roundtrip():
    f = PiecewiseLinear((0.0, 1024.0, 65536.0), (4e-5, 1e-4, 6e-4))
    model = PLogPModel(L=3.5e-5, o_s=f, o_r=f, g=f, P=16)
    back = roundtrip(model)
    assert isinstance(back, PLogPModel)
    assert back.g(32 * KB) == pytest.approx(model.g(32 * KB))
    assert back.p2p_time(0, 1, KB) == pytest.approx(model.p2p_time(0, 1, KB))


def test_file_save_load(tmp_path):
    model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(3, seed=6))
    path = tmp_path / "model.json"
    save(model, str(path))
    back = load(str(path))
    assert back.p2p_time(0, 1, 100) == pytest.approx(model.p2p_time(0, 1, 100))


def test_envelope_validation():
    with pytest.raises(ValueError, match="not a repro-model"):
        loads('{"format": "other", "version": 1, "payload": {}}')
    with pytest.raises(ValueError, match="version"):
        loads('{"format": "repro-model", "version": 999, "payload": {}}')
    with pytest.raises(ValueError, match="unknown document"):
        loads('{"format": "repro-model", "version": %d, "payload": {"type": "X"}}'
              % FORMAT_VERSION)


def test_unserializable_type_rejected():
    with pytest.raises(TypeError):
        dumps(object())


def test_v2_envelope_shape():
    import json

    doc = json.loads(dumps(HockneyModel(alpha=1e-4, beta=8e-8, n=8)))
    assert doc["model"] == "HockneyModel"
    assert doc["schema_version"] == SCHEMA_VERSION == 2
    assert isinstance(doc["params"], dict)


def test_v2_envelope_validation():
    with pytest.raises(ValueError, match="schema version"):
        loads('{"model": "HockneyModel", "schema_version": 99, "params": {}}')
    with pytest.raises(ValueError, match="unknown document"):
        loads('{"model": "Nope", "schema_version": 2, "params": {}}')
    with pytest.raises(ValueError, match="params"):
        loads('{"model": "HockneyModel", "schema_version": 2}')
    with pytest.raises(ValueError, match="not a repro-model"):
        loads("[1, 2, 3]")


def test_all_six_models_roundtrip_v2():
    gt = GroundTruth.random(4, seed=11)
    f = PiecewiseLinear((0.0, 1024.0), (4e-5, 1e-4))
    models = [
        HockneyModel(alpha=1e-4, beta=8e-8, n=4),
        HeterogeneousHockneyModel.from_ground_truth(gt),
        LogPModel(L=3e-5, o=1e-5, g=1.2e-5, P=4, packet_bytes=1500),
        LogGPModel(L=3e-5, o=1e-5, g=1.2e-5, G=9e-9, P=4),
        PLogPModel(L=3.5e-5, o_s=f, o_r=f, g=f, P=4),
        ExtendedLMOModel.from_ground_truth(
            gt, GatherIrregularity(m1=4 * KB, m2=65 * KB, escalation_value=0.2)
        ),
    ]
    for model in models:
        back = roundtrip(model)
        assert type(back) is type(model)
        assert back.p2p_time(0, 1, KB) == pytest.approx(model.p2p_time(0, 1, KB))


def test_legacy_v1_loads_with_deprecation_warning():
    from repro.api.compat import reset_legacy_warnings

    reset_legacy_warnings()
    legacy = (
        '{"format": "repro-model", "version": 1, "payload": '
        '{"type": "HockneyModel", "alpha": 0.0001, "beta": 8e-08, "n": 8}}'
    )
    with pytest.warns(DeprecationWarning, match="legacy"):
        model = loads(legacy)
    assert model == HockneyModel(alpha=1e-4, beta=8e-8, n=8)
    # Consolidated: the second legacy touch in the same process is silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert loads(legacy) == model


def test_legacy_v1_matrix_payload_loads():
    from repro.api.compat import reset_legacy_warnings

    reset_legacy_warnings()
    legacy = (
        '{"format": "repro-model", "version": 1, "payload": '
        '{"type": "GroundTruth",'
        ' "C": [1e-05, 2e-05], "t": [1e-09, 2e-09],'
        ' "L": [[0.0, 3e-05], [3e-05, 0.0]],'
        ' "beta": [["inf", 10000000.0], [10000000.0, "inf"]]}}'
    )
    with pytest.warns(DeprecationWarning):
        gt = loads(legacy)
    assert isinstance(gt, GroundTruth)
    assert np.isinf(gt.beta[0, 0])
    assert gt.beta[0, 1] == 1e7


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 8), seed=st.integers(0, 500), m=st.integers(0, 1 << 18))
def test_roundtrip_preserves_all_p2p_times(n, seed, m):
    model = ExtendedLMOModel.from_ground_truth(GroundTruth.random(n, seed=seed))
    back = roundtrip(model)
    assert back.p2p_time(0, n - 1, m) == pytest.approx(model.p2p_time(0, n - 1, m))


def test_cluster_spec_roundtrip():
    from repro.cluster import table1_cluster

    spec = table1_cluster()
    back = roundtrip(spec)
    assert back == spec
    assert back.n == 16
    assert back.describe() == spec.describe()
