"""End-to-end tests of the prediction daemon over real sockets.

Every test talks to a :class:`ServerThread` — a real listener with real
framing and real backpressure — and the identity tests compare wire
replies **bit-for-bit** against in-process :func:`repro.api.predict`.
"""

import contextlib
import json
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.serve import ServeConfig, ServerThread, protocol

from tests.serve.conftest import KB, make_model


@pytest.fixture(scope="module")
def host(model):
    config = ServeConfig(port=0, models={"lmo": model}, workers=2,
                         telemetry=False)
    with ServerThread(config) as running:
        yield running


# -- health and identity ----------------------------------------------------------
def test_health_reports_the_fleet(host, model):
    with host.client() as client:
        health = client.health()
    assert health["status"] == "running"
    assert "lmo" in health["models"]
    assert health["inflight"] == 0
    assert set(health["workers"]) >= {"predict-0", "predict-1", "estimate"}
    for worker in health["workers"].values():
        assert worker["state"] == "running"


def test_predict_is_bit_identical_to_the_facade(host, model):
    cases = [
        ("scatter", "linear", 64 * KB, 0),
        ("scatter", "linear", 777, 3),
        ("gather", "linear", 2 * KB, 0),     # small regime
        ("gather", "linear", 32 * KB, 1),    # medium regime
        ("gather", "linear", 256 * KB, 0),   # large regime
        ("bcast", "binomial", 16 * KB, 0),
    ]
    with host.client() as client:
        for operation, algorithm, nbytes, root in cases:
            wire = client.predict("lmo", operation, algorithm, nbytes, root=root)
            local = api.predict(model, operation, algorithm, nbytes, root=root)
            assert wire == local                      # frozen dataclass equality
            assert wire.seconds == local.seconds      # bit-identical, not approx
            assert wire.to_dict() == local.to_dict()  # one serialization


def test_gather_prediction_carries_regime_and_escalation(host, model):
    with host.client() as client:
        p = client.predict("lmo", "gather", "linear", 32 * KB)
    local = api.predict(model, "gather", "linear", 32 * KB)
    assert p.regime == local.regime is not None
    assert p.escalation_probability == local.escalation_probability


def test_64_concurrent_clients_all_bit_identical(host, model):
    cases = [
        ("scatter", "linear", float(512 * (i + 1)), i % 5)
        for i in range(32)
    ] + [
        ("gather", "linear", float(1024 * (i + 1)), i % 5)
        for i in range(32)
    ]

    def roundtrip(case):
        operation, algorithm, nbytes, root = case
        with host.client() as client:
            return client.predict("lmo", operation, algorithm, nbytes, root=root)

    with ThreadPoolExecutor(max_workers=64) as pool:
        wire = list(pool.map(roundtrip, cases))
    for case, got in zip(cases, wire):
        operation, algorithm, nbytes, root = case
        local = api.predict(model, operation, algorithm, nbytes, root=root)
        assert got == local
        assert got.seconds == local.seconds


def test_predict_many_matches_the_facade(host, model):
    requests = [
        {"operation": "scatter", "algorithm": "linear", "nbytes": 4 * KB},
        {"operation": "gather", "algorithm": "linear", "nbytes": 64 * KB,
         "root": 2},
    ]
    with host.client() as client:
        batch = client.predict_many("lmo", requests)
    local = api.predict_many(model, [
        api.PredictRequest(operation="scatter", algorithm="linear",
                           nbytes=4 * KB),
        api.PredictRequest(operation="gather", algorithm="linear",
                           nbytes=64 * KB, root=2),
    ])
    assert batch.seconds == tuple(float(s) for s in local)


def test_predict_many_rejects_mixed_models(host):
    requests = [
        {"model": "other", "operation": "scatter", "algorithm": "linear",
         "nbytes": KB},
    ]
    with host.client() as client:
        with pytest.raises(api.InvalidRequest, match="one model per call"):
            client.predict_many("lmo", requests)


def test_optimize_matches_the_facade(host, model):
    sizes = [8 * KB, 64 * KB, 256 * KB]
    with host.client() as client:
        wire = client.optimize("lmo", sizes)
    local = api.optimize_gather(model, sizes)
    assert wire.to_dict() == local.to_dict()
    assert wire.speedups == local.speedups


# -- typed errors over the wire ---------------------------------------------------
def test_unknown_model_raises_model_not_loaded(host):
    with host.client() as client:
        with pytest.raises(api.ModelNotLoaded, match="no model named 'nope'"):
            client.predict("nope", "scatter", "linear", KB)
        # The connection survives an error reply.
        assert client.health()["status"] == "running"


def test_missing_params_raise_invalid_request(host):
    with host.client() as client:
        with pytest.raises(api.InvalidRequest, match="missing field"):
            client.call("predict", {"model": "lmo"})


def test_unknown_verb_raises_invalid_request(host):
    with host.client() as client:
        with pytest.raises(api.InvalidRequest, match="unknown verb"):
            client.call("launch_missiles", {})


def test_estimate_with_bad_model_name_fails_typed(host):
    with host.client() as client:
        with pytest.raises(api.InvalidRequest, match="unknown model"):
            client.estimate(model="bogus", quick=True, reps=1, nodes=4)


def test_estimate_registers_a_model_then_serves_it(host):
    with host.client() as client:
        reply = client.estimate(model="hockney", quick=True, reps=1, nodes=4,
                                register_as="fresh")
        assert reply.registered_as == "fresh"
        assert reply.outcome.model_name == "hockney"
        assert reply.outcome.n == 4
        assert "fresh" in client.health()["models"]
        p = client.predict("fresh", "scatter", "linear", 4 * KB)
        assert p.seconds > 0


# -- protocol edge cases over a raw socket ----------------------------------------
def _raw_connection(host):
    addr = host.address
    sock = socket.create_connection(addr, timeout=30)
    return sock, sock.makefile("rwb")


def test_malformed_line_gets_an_error_reply_and_the_stream_survives(host):
    sock, stream = _raw_connection(host)
    try:
        stream.write(b"{this is not json}\n")
        stream.flush()
        doc = json.loads(stream.readline())
        assert doc["ok"] is False
        assert doc["id"] is None
        assert doc["error"]["code"] == "invalid_request"
        # Same connection, next line answered normally.
        stream.write(protocol.encode_request("health", {}, 2))
        stream.flush()
        assert json.loads(stream.readline())["ok"] is True
    finally:
        sock.close()


def test_malformed_line_error_correlates_by_peeked_id(host):
    sock, stream = _raw_connection(host)
    try:
        stream.write(b'{"id": 9, "verb": "launch_missiles"}\n')
        stream.flush()
        doc = json.loads(stream.readline())
        assert doc["ok"] is False and doc["id"] == 9
    finally:
        sock.close()


def test_blank_lines_are_skipped(host):
    sock, stream = _raw_connection(host)
    try:
        stream.write(b"\n\n" + protocol.encode_request("health", {}, 1))
        stream.flush()
        doc = json.loads(stream.readline())
        assert doc["ok"] is True and doc["id"] == 1
    finally:
        sock.close()


def test_oversized_line_errors_and_closes_the_connection(host):
    sock, stream = _raw_connection(host)
    payload = (b'{"verb": "predict", "params": {"pad": "'
               + b"x" * protocol.MAX_LINE_BYTES + b'"}}\n')
    try:
        with contextlib.suppress(BrokenPipeError, ConnectionResetError):
            stream.write(payload)
            stream.flush()
        try:
            line = stream.readline()
        except ConnectionResetError:
            line = b""
        if line:  # the error reply made it out before the close
            doc = json.loads(line)
            assert doc["ok"] is False and doc["id"] is None
            assert doc["error"]["code"] == "invalid_request"
            assert stream.readline() == b""  # ...and then the stream ends
    finally:
        sock.close()
    # The server survives the episode.
    with host.client() as client:
        assert client.health()["status"] == "running"


def test_mid_request_disconnect_leaves_the_server_healthy(host, model):
    # Hang up right after sending a request, without reading the reply.
    sock, stream = _raw_connection(host)
    stream.write(protocol.encode_request(
        "predict", {"model": "lmo", "operation": "scatter",
                    "algorithm": "linear", "nbytes": KB}, 1))
    stream.flush()
    sock.close()
    # Hang up mid-line (no trailing newline ever arrives).
    sock, stream = _raw_connection(host)
    stream.write(b'{"id": 1, "verb": "pre')
    stream.flush()
    sock.close()
    time.sleep(0.1)
    with host.client() as client:
        assert client.health()["status"] == "running"
        p = client.predict("lmo", "scatter", "linear", KB)
    assert p == api.predict(model, "scatter", "linear", KB)


# -- batching ---------------------------------------------------------------------
def test_batched_replies_equal_unbatched_and_facade(model):
    cases = [("scatter", "linear", float(KB * (i + 1)), i % 3)
             for i in range(16)]
    barrier = threading.Barrier(len(cases))

    def fire(running, case):
        operation, algorithm, nbytes, root = case
        with running.client() as client:
            barrier.wait(timeout=30)
            return client.predict("lmo", operation, algorithm, nbytes,
                                  root=root)

    batched_config = ServeConfig(port=0, models={"lmo": model}, workers=1,
                                 batch_window=0.05, telemetry=False)
    with ServerThread(batched_config) as running:
        with ThreadPoolExecutor(max_workers=len(cases)) as pool:
            batched = list(pool.map(lambda c: fire(running, c), cases))
        coalesced = running.server._workers[0].batches

    # The window actually coalesced concurrent requests...
    assert coalesced < len(cases)

    unbatched_config = ServeConfig(port=0, models={"lmo": model}, workers=1,
                                   batch_window=0.0, telemetry=False)
    with ServerThread(unbatched_config) as running:
        with running.client() as client:
            unbatched = [
                client.predict("lmo", operation, algorithm, nbytes, root=root)
                for operation, algorithm, nbytes, root in cases
            ]

    # ...and coalescing changed nothing: batched == serial == in-process.
    for case, via_batch, via_serial in zip(cases, batched, unbatched):
        operation, algorithm, nbytes, root = case
        local = api.predict(model, operation, algorithm, nbytes, root=root)
        assert via_batch == via_serial == local


# -- backpressure -----------------------------------------------------------------
def test_full_queue_rejects_with_overloaded(model):
    config = ServeConfig(port=0, models={"lmo": model}, workers=1,
                         batch_window=0.25, queue_limit=1, telemetry=False)
    attempts = 12
    barrier = threading.Barrier(attempts)

    def fire(running, i):
        with running.client() as client:
            barrier.wait(timeout=30)
            try:
                return client.predict("lmo", "scatter", "linear",
                                      float(KB * (i + 1)))
            except api.Overloaded as exc:
                return exc

    with ServerThread(config) as running:
        with ThreadPoolExecutor(max_workers=attempts) as pool:
            outcomes = list(pool.map(lambda i: fire(running, i),
                                     range(attempts)))
    rejected = [o for o in outcomes if isinstance(o, api.Overloaded)]
    answered = [o for o in outcomes if isinstance(o, api.Prediction)]
    assert len(rejected) + len(answered) == attempts
    assert rejected, "a 1-deep queue under 12 concurrent clients must shed load"
    assert answered, "backpressure must shed load, not reject everything"
    assert all("back off and retry" in str(o) for o in rejected)


# -- lifecycle --------------------------------------------------------------------
def test_drain_answers_everything_queued_then_stops(model):
    config = ServeConfig(port=0, models={"lmo": model}, workers=1,
                         batch_window=0.5, telemetry=False)
    inflight = 8
    results = []

    def fire(running, i):
        with running.client() as client:
            results.append(client.predict("lmo", "scatter", "linear",
                                          float(KB * (i + 1))))

    with ServerThread(config) as running:
        threads = [threading.Thread(target=fire, args=(running, i))
                   for i in range(inflight)]
        for thread in threads:
            thread.start()
        with running.client() as control:
            # Drain only promises answers for *accepted* work: wait until
            # all 8 predicts are in flight (queued behind the long batch
            # window) before pulling the plug.
            deadline = time.monotonic() + 30
            while control.health()["inflight"] < inflight:
                assert time.monotonic() < deadline, "predicts never queued"
                time.sleep(0.01)
            reply = control.drain()
        assert reply["draining"] is True
        for thread in threads:
            thread.join(timeout=30)
        # Every request accepted before the drain was answered.
        assert len(results) == inflight
        for i, got in enumerate(sorted(results, key=lambda p: p.nbytes)):
            assert got == api.predict(model, "scatter", "linear",
                                      float(KB * (i + 1)))
        # The listener is gone: new connections are refused.
        addr = running.address
        running._thread.join(timeout=30)
        assert running.server.state == "stopped"
        with pytest.raises(OSError):
            socket.create_connection(addr, timeout=5)


def test_reload_drops_nothing_and_swaps_the_model(tmp_path, model):
    path = tmp_path / "model.json"
    api.save_model(model, str(path))
    loaded = api.load_model(str(path))
    config = ServeConfig(port=0, models={"lmo": str(path)}, workers=2,
                         telemetry=False)
    failures = []
    results = []

    def traffic(running):
        with running.client() as client:
            for i in range(25):
                try:
                    results.append(client.predict(
                        "lmo", "scatter", "linear", float(KB + i)))
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    failures.append(exc)

    with ServerThread(config) as running:
        threads = [threading.Thread(target=traffic, args=(running,))
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(10):  # hammer SIGHUP's handler mid-traffic
            assert running.reload() == 1
            time.sleep(0.005)
        for thread in threads:
            thread.join(timeout=60)

        assert not failures
        assert len(results) == 100
        for got in results:
            assert got == api.predict(loaded, "scatter", "linear", got.nbytes)

        # A reload actually swaps: write a different model, reload, and
        # the same name now answers with the new model's numbers.
        replacement = make_model(n=6, seed=9, irregular=False)
        api.save_model(replacement, str(path))
        assert running.reload() == 1
        fresh = api.load_model(str(path))
        with running.client() as client:
            after = client.predict("lmo", "scatter", "linear", 64 * KB)
        assert after == api.predict(fresh, "scatter", "linear", 64 * KB)
        assert after.seconds != api.predict(
            loaded, "scatter", "linear", 64 * KB).seconds


def test_unix_socket_serves_and_cleans_up(model):
    with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
        path = f"{tmp}/repro.sock"  # short: AF_UNIX paths cap near 107 chars
        config = ServeConfig(unix_path=path, models={"lmo": model},
                             telemetry=False)
        with ServerThread(config) as running:
            assert running.server.endpoint == path
            with running.client() as client:
                assert client.health()["endpoint"] == path
                p = client.predict("lmo", "scatter", "linear", KB)
            assert p == api.predict(model, "scatter", "linear", KB)
        import os
        assert not os.path.exists(path)  # drained server unlinks its socket


# -- observability ----------------------------------------------------------------
def test_obs_verb_reports_metrics_and_service_alerts(model):
    config = ServeConfig(port=0, models={"lmo": model}, telemetry=True)
    with ServerThread(config) as running:
        with running.client() as client:
            client.predict("lmo", "scatter", "linear", KB)
            client.predict("lmo", "gather", "linear", 64 * KB)
            snapshot = client.obs()
    assert snapshot["enabled"] is True
    metrics = set(snapshot["telemetry"]["metrics"])
    assert {"service_requests_total", "service_request_seconds",
            "service_inflight", "service_connections"} <= metrics
    rules = {alert["rule"]["name"] for alert in snapshot["alerts"]}
    assert {"service_queue_depth_high", "service_p99_latency_high"} <= rules
    assert snapshot["firing"] == []


def test_obs_verb_without_telemetry(model):
    config = ServeConfig(port=0, models={"lmo": model}, telemetry=False)
    with ServerThread(config) as running:
        with running.client() as client:
            assert client.obs() == {"enabled": False}
