"""Application communication planning: pick every collective's algorithm.

An application is, communication-wise, a sequence of collective calls.
Given an estimated model, the planner chooses an algorithm for each call
from the registered menu (falling back across operations it has formulas
for), and predicts the plan's total communication time — MPI autotuning,
driven by the paper's model instead of exhaustive measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.models.collectives.formulas import (
    GatherPrediction,
    predict_binomial_gather,
    predict_binomial_scatter,
    predict_linear_gather,
    predict_linear_scatter,
)
from repro.models.collectives.formulas_ext import _PREDICTORS, predict_collective
from repro.models.lmo_extended import ExtendedLMOModel

__all__ = ["CollectiveCall", "PlannedCall", "CommunicationPlan", "plan_collectives"]

#: Algorithms the planner may choose from, per operation.
MENU: dict[str, tuple[str, ...]] = {
    "scatter": ("linear", "binomial"),
    "gather": ("linear", "binomial"),
    "bcast": ("linear", "binomial", "pipeline", "van_de_geijn"),
    "allgather": ("ring", "recursive_doubling"),
    "allreduce": ("recursive_doubling", "reduce_bcast", "rabenseifner"),
    "reduce_scatter": ("ring",),
}


@dataclass(frozen=True)
class CollectiveCall:
    """One collective invocation in an application's communication trace."""

    operation: str
    nbytes: int
    root: int = 0
    count: int = 1  # identical repetitions (e.g. per-iteration calls)

    def __post_init__(self) -> None:
        if self.operation not in MENU:
            raise ValueError(
                f"unplannable operation {self.operation!r}; known: {sorted(MENU)}"
            )
        if self.nbytes < 0 or self.count < 1:
            raise ValueError(f"invalid call: {self}")


@dataclass(frozen=True)
class PlannedCall:
    """A call with its chosen algorithm and predicted time."""

    call: CollectiveCall
    algorithm: str
    predicted_each: float

    @property
    def predicted_total(self) -> float:
        return self.predicted_each * self.call.count


@dataclass
class CommunicationPlan:
    """The chosen algorithms and the predicted total communication time."""

    calls: list[PlannedCall]

    @property
    def predicted_total(self) -> float:
        return sum(planned.predicted_total for planned in self.calls)

    def render(self) -> str:
        lines = [f"{'operation':<15} {'bytes':>9} {'x':>4} {'algorithm':<20} {'each':>9}"]
        for planned in self.calls:
            call = planned.call
            lines.append(
                f"{call.operation:<15} {call.nbytes:>9} {call.count:>4} "
                f"{planned.algorithm:<20} {planned.predicted_each * 1e3:>8.2f}ms"
            )
        lines.append(f"predicted communication total: {self.predicted_total * 1e3:.2f} ms")
        return "\n".join(lines)


def _predict(model: ExtendedLMOModel, operation: str, algorithm: str,
             nbytes: int, root: int) -> float:
    if operation == "scatter":
        fn = predict_linear_scatter if algorithm == "linear" else predict_binomial_scatter
        return float(fn(model, nbytes, root=root))
    if operation == "gather":
        if algorithm == "linear":
            value = predict_linear_gather(model, nbytes, root=root)
            return value.expected if isinstance(value, GatherPrediction) else float(value)
        return float(predict_binomial_gather(model, nbytes, root=root))
    if (operation, algorithm) in _PREDICTORS:
        if operation == "bcast":
            return float(predict_collective(model, operation, algorithm, nbytes,
                                            root=root))
        return float(predict_collective(model, operation, algorithm, nbytes))
    raise KeyError(f"no predictor for {operation}/{algorithm}")


def plan_collectives(
    model: ExtendedLMOModel,
    calls: Sequence[CollectiveCall],
    menu: Optional[dict[str, tuple[str, ...]]] = None,
) -> CommunicationPlan:
    """Choose the predicted-fastest algorithm for every call."""
    chosen_menu = MENU if menu is None else menu
    planned: list[PlannedCall] = []
    for call in calls:
        candidates = {
            algorithm: _predict(model, call.operation, algorithm, call.nbytes, call.root)
            for algorithm in chosen_menu[call.operation]
        }
        best = min(candidates, key=candidates.__getitem__)
        planned.append(PlannedCall(call=call, algorithm=best,
                                   predicted_each=candidates[best]))
    return CommunicationPlan(calls=planned)
