"""Bench of the paper's core procedure: LMO parameter estimation.

Times both the full experiment-set estimation on the simulated cluster
and the pure equation-solving stage (triplet systems, eqs. 8 and 11) via
the analytic oracle — the paper's own cost breakdown (Sec. IV counts the
measurements and the ``3 C(n,3)`` comparisons / ``12 C(n,3)`` formulas).
"""

import numpy as np

from repro.cluster import GroundTruth
from repro.estimation import AnalyticEngine, DESEngine, estimate_extended_lmo, star_triplets


def test_bench_full_estimation_on_cluster(benchmark, lam_cluster):
    """Kernel: the complete star-design estimation at n=16 on the DES."""

    def kernel():
        engine = DESEngine(lam_cluster)
        return estimate_extended_lmo(
            engine, reps=1, triplets=star_triplets(16), clamp=True
        ).model

    model = benchmark(kernel)
    assert model.n == 16


def test_bench_equation_solving_only(benchmark):
    """Kernel: measurements from the analytic oracle, i.e. almost pure
    system-solving cost (eqs. 8/11 per triplet + eq. 12 averaging)."""
    gt = GroundTruth.random(16, seed=1)

    def kernel():
        return estimate_extended_lmo(AnalyticEngine(gt), reps=1).model

    model = benchmark(kernel)
    assert np.allclose(model.C, gt.C, rtol=1e-6)
