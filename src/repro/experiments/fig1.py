"""Figure 1: linear scatter vs the four Hockney predictions.

The paper's opening evidence: on the 16-node cluster, both sequential
Hockney predictions (homogeneous and heterogeneous) are *pessimistic* —
they serialize wire time the switch parallelizes — while both parallel
variants are *optimistic* — they ignore the root CPU's serialization.
The observation runs between the two families for all message sizes.
"""

from __future__ import annotations

from repro.experiments.common import (
    SIZES_FULL,
    SIZES_QUICK,
    ExperimentResult,
    Series,
    get_model_suite,
    observation_benchmark,
    paper_cluster,
    prediction_series,
)

__all__ = ["run"]


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 1 (series in seconds, sizes in bytes)."""
    sizes = SIZES_QUICK if quick else SIZES_FULL
    cluster = paper_cluster(seed=seed)
    suite = get_model_suite(seed=seed, quick=quick)
    bench = observation_benchmark(cluster, quick)

    observed = [bench.measure("scatter", "linear", m).mean for m in sizes]
    series = [
        Series("observed", sizes, tuple(observed)),
        prediction_series("hom-seq", suite.hockney_hom, "scatter", "linear", sizes,
                          assumption="sequential"),
        prediction_series("het-seq", suite.hockney_het, "scatter", "linear", sizes,
                          assumption="sequential"),
        prediction_series("hom-par", suite.hockney_hom, "scatter", "linear", sizes,
                          assumption="parallel"),
        prediction_series("het-par", suite.hockney_het, "scatter", "linear", sizes,
                          assumption="parallel"),
    ]
    result = ExperimentResult(
        experiment_id="fig1",
        title="Linear scatter on the 16-node heterogeneous cluster vs Hockney",
        series=series,
    )
    obs = result.get("observed")
    result.checks = {
        "sequential Hockney (hom) is pessimistic at every size": all(
            result.get("hom-seq").at(m) > obs.at(m) for m in sizes
        ),
        "sequential Hockney (het) is pessimistic at every size": all(
            result.get("het-seq").at(m) > obs.at(m) for m in sizes
        ),
        "parallel Hockney (hom) is optimistic at every size": all(
            result.get("hom-par").at(m) < obs.at(m) for m in sizes
        ),
        "parallel Hockney (het) is optimistic at every size": all(
            result.get("het-par").at(m) < obs.at(m) for m in sizes
        ),
        "sequential pessimism is large (>2x) below the eager threshold": (
            result.get("het-seq").at(max(m for m in sizes if m <= 64 * 1024))
            > 2 * obs.at(max(m for m in sizes if m <= 64 * 1024))
        ),
    }
    result.notes.append(
        "Hockney cannot separate root-CPU serialization from switch "
        "parallelism, so its two readings bracket the observation."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
