"""The MPI layer as a library: write rank programs against the simulated
cluster, move real numpy data, and inspect the transport's behaviour.

This example is about the *substrate*: an mpi4py-flavoured API whose
"network" is the discrete-event model of a single-switch cluster —
point-to-point messaging, non-blocking requests, collectives carrying
real arrays, and the protocol effects (eager vs rendezvous) that the
paper's empirical parameters describe.

Run with::

    python examples/mpi_playground.py
"""

import numpy as np

from repro.cluster import LAM_7_1_3, SimulatedCluster, table1_cluster
from repro.mpi import run_collective, run_ranks

KB = 1024


def main() -> None:
    cluster = SimulatedCluster(table1_cluster(), profile=LAM_7_1_3, seed=6)

    # -- point-to-point with real payloads --------------------------------
    print("1. point-to-point ping-pong with a numpy payload")

    def pinger(comm):
        payload = np.arange(1024, dtype=np.float64)
        start = comm.sim.now
        yield from comm.send(1, payload=payload, tag=7)
        env = yield from comm.recv(1, tag=8)
        rtt = comm.sim.now - start
        return rtt, float(np.asarray(env.payload).sum())

    def ponger(comm):
        env = yield from comm.recv(0, tag=7)
        reply = np.asarray(env.payload) * 2.0
        yield from comm.send(0, payload=reply, tag=8)

    results = run_ranks(cluster, {0: pinger, 1: ponger})
    rtt, checksum = results[0].value
    print(f"   RTT for 8 KB each way: {rtt * 1e3:.3f} ms, "
          f"checksum of doubled payload: {checksum:.0f}")
    print()

    # -- overlapping non-blocking traffic ---------------------------------
    print("2. overlap: isend/irecv across three ranks")

    def relay(comm):
        left = (comm.rank - 1) % 3
        right = (comm.rank + 1) % 3
        send_req = comm.isend(right, nbytes=16 * KB, tag=1)
        recv_req = comm.irecv(left, tag=1)
        yield send_req.sent
        yield from comm.wait(recv_req)
        return comm.sim.now

    results = run_ranks(cluster, {rank: relay for rank in range(3)})
    print(f"   3-rank ring exchange completed at "
          f"{max(r.finish for r in results.values()) * 1e3:.3f} ms")
    print()

    # -- collectives carrying data ------------------------------------------
    print("3. scatter + allgather moving real blocks")
    data = [np.full(4, rank, dtype=np.int32) for rank in range(16)]
    run = run_collective(cluster, "scatter", "binomial", nbytes=16, data=data)
    print(f"   rank 5 received block: {np.asarray(run.value(5)).tolist()} "
          f"in {run.time * 1e3:.3f} ms")
    run = run_collective(cluster, "allgather", "ring", nbytes=16, data=data)
    gathered = run.value(9)
    print(f"   rank 9 allgather holds {len(gathered)} blocks, block 12 = "
          f"{np.asarray(gathered[12]).tolist()}")
    print()

    # -- protocol effects -----------------------------------------------------
    print("4. protocol counters: eager vs rendezvous")
    cluster.stats.reset()
    run_collective(cluster, "scatter", "linear", nbytes=32 * KB)
    eager_stats = (cluster.stats.messages, cluster.stats.rendezvous_handshakes)
    cluster.stats.reset()
    run_collective(cluster, "scatter", "linear", nbytes=128 * KB)
    rendezvous_stats = (cluster.stats.messages, cluster.stats.rendezvous_handshakes)
    print(f"   32 KB scatter:  {eager_stats[0]} messages, "
          f"{eager_stats[1]} rendezvous handshakes")
    print(f"   128 KB scatter: {rendezvous_stats[0]} messages, "
          f"{rendezvous_stats[1]} rendezvous handshakes "
          "(every send pays the handshake above the 64 KB eager limit)")


if __name__ == "__main__":
    main()
