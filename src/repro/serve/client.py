"""Blocking clients for the prediction daemon.

Two clients share one typed verb surface:

* :class:`ServiceClient` — one socket, one request line per call, one
  response line back.  Error replies re-raise as the *same* typed
  exceptions :mod:`repro.api` raises in-process
  (:func:`repro.api.errors.from_payload`), and result payloads parse
  back into the same schema-v3 dataclasses — code written against the
  facade ports to the wire by swapping ``api.predict(model_obj, ...)``
  for ``client.predict("model-name", ...)``::

      with ServiceClient(port=7725) as client:
          p = client.predict("lmo", "scatter", "linear", 65536)
          print(p.seconds)

* :class:`ResilientClient` — the same surface, wrapped in the retry /
  deadline / idempotency discipline a caller facing a real network (or
  a supervised server that restarts underneath it) needs:

  - only *retryable* failures are retried: ``overloaded``, connection
    reset/refused, timeouts, and wire-integrity failures
    (:class:`~repro.serve.protocol.WireError`).  A typed server verdict
    (``invalid_request``, ``model_not_loaded``, ``deadline_exceeded``,
    a genuine ``internal_error`` reply) is final and raises immediately;
  - backoff between attempts is exponential with *seeded* jitter
    (:class:`RetryPolicy`) — deterministic under a fixed seed, so the
    chaos tests replay exactly;
  - an optional per-call ``deadline_ms`` budget is propagated on the
    wire (the server sheds the request unexecuted once it expires) and
    bounds the retry loop client-side;
  - every logical call carries one idempotency key across all of its
    retries, so a retried ``predict``/``estimate`` is deduplicated
    server-side rather than re-executed — retries are safe even for
    side-effectful verbs.

Both clients are deliberately synchronous (benchmarks drive concurrency
by running many clients, as real callers would); neither is thread-safe —
use one client per thread.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Mapping, NamedTuple, Optional, Sequence, Union

from repro.api import errors, schema
from repro.api.errors import ApiError, InternalError, Overloaded
from repro.obs import runtime as _obs
from repro.obs import trace as _trace
from repro.predict_service import PredictRequest
from repro.serve import protocol
from repro.serve.protocol import WireError

__all__ = [
    "EstimateReply",
    "ResilientClient",
    "RetryExhausted",
    "RetryPolicy",
    "ServiceClient",
]


class EstimateReply(NamedTuple):
    """An ``estimate`` verb's reply: the outcome document (``model`` is
    ``None`` — the model lives server-side) and its registry name."""

    outcome: schema.EstimateOutcome
    registered_as: str


class _Verbs:
    """Typed verb wrappers over an abstract ``call`` — shared by the
    plain and the resilient client so both expose one surface."""

    def call(self, verb: str, params: Optional[Mapping[str, Any]] = None) -> dict:
        raise NotImplementedError

    def predict(
        self,
        model: str,
        operation: str,
        algorithm: str,
        nbytes: float,
        root: int = 0,
        dest: Optional[int] = None,
    ) -> schema.Prediction:
        params: dict[str, Any] = {
            "model": model, "operation": operation, "algorithm": algorithm,
            "nbytes": nbytes, "root": root,
        }
        if dest is not None:
            params["dest"] = dest
        return schema.Prediction.from_dict(self.call("predict", params))

    def predict_many(
        self,
        model: str,
        requests: Sequence[Union[Mapping[str, Any], PredictRequest,
                                 schema.PredictParams]],
    ) -> schema.PredictionBatch:
        items = []
        for request in requests:
            if isinstance(request, PredictRequest):
                item: dict[str, Any] = {
                    "model": model, "operation": request.operation,
                    "algorithm": request.algorithm, "nbytes": request.nbytes,
                    "root": request.root,
                }
                if request.dest is not None:
                    item["dest"] = request.dest
            elif isinstance(request, schema.PredictParams):
                item = request.to_dict()
            else:
                item = dict(request)
            items.append(item)
        return schema.PredictionBatch.from_dict(
            self.call("predict_many", {"model": model, "requests": items})
        )

    def estimate(self, **params: Any) -> EstimateReply:
        """Server-side estimation; see :class:`repro.api.schema.EstimateParams`
        for the keyword menu (model, profile, nodes, seed, reps, quick,
        empirical, register_as)."""
        result = self.call("estimate", params)
        return EstimateReply(
            outcome=schema.EstimateOutcome.from_dict(result),
            registered_as=str(result.get("registered_as", "")),
        )

    def optimize(
        self,
        model: str,
        sizes: Sequence[float],
        root: int = 0,
        safety: float = 0.9,
    ) -> schema.GatherOptimization:
        return schema.GatherOptimization.from_dict(self.call("optimize", {
            "model": model, "sizes": list(sizes), "root": root,
            "safety": safety,
        }))

    def health(self) -> dict:
        return self.call("health")

    def obs(self) -> dict:
        return self.call("obs")

    def drain(self) -> dict:
        return self.call("drain")


class ServiceClient(_Verbs):
    """One connection to a running ``repro serve`` daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7725,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        # Everything between socket creation and a fully-set-up client
        # must close the fd on failure — a refused connect or a hung
        # handshake must not leak a descriptor per attempt (a resilient
        # caller makes *many* attempts).
        if unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(timeout)
                sock.connect(unix_path)
            except BaseException:
                sock.close()
                raise
            self.endpoint = unix_path
        else:
            sock = socket.create_connection((host, port), timeout=timeout)
            self.endpoint = f"{host}:{port}"
        try:
            self._file = sock.makefile("rwb")
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._next_id = 0

    # -- plumbing -----------------------------------------------------------------
    def settimeout(self, timeout: Optional[float]) -> None:
        """Adjust the per-operation socket timeout (deadline budgeting)."""
        self._sock.settimeout(timeout)

    def call(self, verb: str, params: Optional[Mapping[str, Any]] = None,
             deadline_ms: Optional[float] = None,
             idempotency_key: Optional[str] = None) -> dict:
        """One request/response round trip; raises the typed taxonomy."""
        self._next_id += 1
        request_id = self._next_id
        # Each wire request is one hop of the active trace: same trace
        # id, fresh span id (so retries through ResilientClient are
        # distinguishable attempts of one trace).
        ctx = _trace.current()
        header = None if ctx is None else ctx.child().to_traceparent()
        with _obs.span("client.request", verb=verb, request_id=request_id):
            self._file.write(protocol.encode_request(
                verb, params or {}, request_id,
                deadline_ms=deadline_ms, idempotency_key=idempotency_key,
                trace=header,
            ))
            self._file.flush()
            doc = protocol.decode_response(self._file.readline())
        got_id = doc.get("id")
        if got_id is not None and got_id != request_id:
            raise WireError(
                f"response id {got_id!r} does not match request id {request_id}"
            )
        if not doc.get("ok"):
            raise errors.from_payload(doc.get("error", {}))
        result = doc.get("result", {})
        if not isinstance(result, dict):
            raise InternalError(f"malformed result payload: {result!r}")
        return result

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(max_delay, base_delay * multiplier**attempt)`` scaled by a
    jitter factor drawn from the policy's own RNG — two policies built
    with the same ``seed`` produce the same delay sequence, so resilience
    tests and the chaos benchmark replay deterministically.
    """

    max_retries: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    #: Fraction of each delay randomized away (0 = fully deterministic,
    #: 0.5 = delays land in [0.5, 1.0] × the exponential value).
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1.0:
            raise ValueError("delays must be >= 0 and multiplier >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def rng(self) -> random.Random:
        """A fresh RNG for one client's jitter stream."""
        return random.Random(self.seed)

    def delay(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())


class RetryExhausted(ConnectionError):
    """Every allowed attempt failed with a retryable error.

    Distinct from a first-try hard failure: the caller *did* tolerate
    transient faults and the service still never answered.  Carries the
    final underlying error and the attempt count.
    """

    def __init__(self, verb: str, attempts: int, last_error: BaseException):
        self.verb = verb
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"{verb!r} failed after {attempts} attempt(s); "
            f"last error: {last_error}"
        )


def _is_retryable(exc: BaseException) -> bool:
    """The retry whitelist: overload backpressure, wire integrity
    failures, and transport-level errors (reset, refused, timeout).
    Typed server verdicts are final."""
    if isinstance(exc, (Overloaded, WireError)):
        return True
    if isinstance(exc, ApiError):
        return False
    return isinstance(exc, (OSError, TimeoutError))


class ResilientClient(_Verbs):
    """Retrying, deadline-aware, idempotent-by-default service client.

    Reconnects lazily: a connection is (re)established on demand, and a
    transport failure drops it so the next attempt dials fresh — which
    is what lets the client ride through a supervised server restart.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7725,
        unix_path: Optional[str] = None,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        #: Default per-call deadline budget (ms); per-call override wins.
        self.deadline_ms = deadline_ms
        #: Attempts the most recent call used (1 = first try succeeded).
        self.last_attempts = 0
        #: Total retries (attempts beyond the first) this client made.
        self.retries_total = 0
        self._rng = self.retry.rng()
        self._conn: Optional[ServiceClient] = None
        self._calls = 0
        self._client_id = uuid.uuid4().hex[:16]

    # -- connection management ----------------------------------------------------
    def _connect(self) -> ServiceClient:
        if self._conn is None:
            self._conn = ServiceClient(
                host=self.host, port=self.port, unix_path=self.unix_path,
                timeout=self.timeout,
            )
        return self._conn

    def _disconnect(self) -> None:
        if self._conn is not None:
            conn, self._conn = self._conn, None
            conn.close()

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the retry loop -----------------------------------------------------------
    def call(self, verb: str, params: Optional[Mapping[str, Any]] = None,
             deadline_ms: Optional[float] = None,
             idempotent: bool = True) -> dict:
        """One *logical* call: up to ``1 + max_retries`` wire attempts,
        all carrying the same idempotency key, bounded by the deadline.
        """
        budget_ms = deadline_ms if deadline_ms is not None else self.deadline_ms
        overall: Optional[float] = None
        if budget_ms is not None:
            if budget_ms <= 0:
                raise errors.InvalidRequest(
                    f"deadline_ms must be positive, got {budget_ms!r}")
            overall = time.monotonic() + budget_ms / 1000.0
        self._calls += 1
        key = f"{self._client_id}-{self._calls}" if idempotent else None
        # One trace per *logical* call: every retry rides the same trace
        # id (each wire attempt mints its own span id downstream).  A
        # trace is only auto-started when telemetry is on — otherwise the
        # whole feature costs one `is None` check per call.
        base = _trace.current()
        if base is None and _obs.ACTIVE is not None:
            base = _trace.new_context()
        attempts = 0
        last_error: Optional[BaseException] = None
        while True:
            remaining_ms: Optional[float] = None
            if overall is not None:
                remaining_ms = (overall - time.monotonic()) * 1000.0
                if remaining_ms <= 0.0:
                    exhausted = errors.DeadlineExceeded(
                        f"client-side deadline of {budget_ms} ms expired "
                        f"after {attempts} attempt(s)"
                    )
                    if last_error is not None:
                        raise exhausted from last_error
                    raise exhausted
            try:
                with _trace.use(base), _obs.span(
                    "client.attempt", verb=verb, attempt=attempts + 1,
                ):
                    conn = self._connect()
                    if remaining_ms is not None:
                        conn.settimeout(min(self.timeout, remaining_ms / 1000.0))
                    else:
                        conn.settimeout(self.timeout)
                    result = conn.call(verb, params, deadline_ms=remaining_ms,
                                       idempotency_key=key)
            except BaseException as exc:
                if not _is_retryable(exc):
                    raise
                attempts += 1
                last_error = exc
                self._disconnect()
                tel = _obs.ACTIVE
                if tel is not None:
                    tel.registry.counter(
                        "service_client_retries_total",
                        help="retryable client attempt failures", verb=verb,
                    ).inc()
                if attempts > self.retry.max_retries:
                    self.last_attempts = attempts
                    raise RetryExhausted(verb, attempts, exc) from exc
                pause = self.retry.delay(attempts - 1, self._rng)
                if overall is not None:
                    pause = min(pause, max(0.0, overall - time.monotonic()))
                if pause > 0.0:
                    time.sleep(pause)
            else:
                self.last_attempts = attempts + 1
                self.retries_total += attempts
                return result
