"""The process-local telemetry switchboard.

Instrumented modules never construct registries themselves; they consult
one module-level global::

    from repro.obs import runtime as _obs
    ...
    tel = _obs.ACTIVE
    if tel is not None:
        tel.registry.counter("campaign_units_total", outcome="done").inc()

``ACTIVE`` is ``None`` until someone calls :func:`enable` — and that
``is None`` check is the *entire* cost of every hook when telemetry is
off (benchmarked in ``benchmarks/test_obs_overhead.py``; the hot-path
budget is <5% of an uninstrumented run).  Cold paths (an RTO escalation,
a breaker trip) may do more work per hit; hot paths must do nothing but
the guard.

Spans get a dedicated helper because the no-op case must not allocate::

    with _obs.span("campaign.unit", index=i):
        ...

returns a shared do-nothing context manager when telemetry is off.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, prometheus_text
from repro.obs.spans import SpanRecorder

__all__ = [
    "Telemetry", "ACTIVE", "active", "enable", "disable", "span",
    "suppressed", "pulse",
]


class Telemetry:
    """One telemetry session: a registry, a span recorder, an event log.

    Two optional attachments extend the session without new imports (the
    switchboard must stay importable from the innermost layers):
    ``timeline`` (a :class:`repro.obs.timeline.TimelineStore`, attached
    by ``enable_timeline``) and ``flight`` (a
    :class:`repro.obs.flight.FlightRecorder`, attached by
    ``enable_flight``).  Both are driven by :func:`pulse`.
    """

    def __init__(
        self,
        span_capacity: int = 4096,
        event_capacity: int = 2048,
        events_jsonl: Optional[str] = None,
    ):
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(capacity=span_capacity)
        self.events = EventLog(capacity=event_capacity, jsonl_path=events_jsonl)
        self.timeline: Optional[Any] = None
        self.flight: Optional[Any] = None

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The whole session as one JSON-ready snapshot document.

        This is the interchange format ``--metrics-out`` writes and
        ``repro obs report/export`` reads back.
        """
        doc = {
            "format": "repro-telemetry",
            "version": 1,
            "metrics": self.registry.snapshot(),
            "spans": self.spans.to_dicts(),
            # Wall-clock instant of the span clock's zero — cross-process
            # snapshots are aligned on this by ``repro obs trace stitch``.
            "spans_epoch_unix": self.spans.epoch_unix,
            "events": self.events.to_dicts(),
            "dropped": {"spans": self.spans.dropped, "events": self.events.dropped},
        }
        if self.timeline is not None:
            doc["timeline"] = self.timeline.to_dict()
        return doc

    def to_prometheus(self) -> str:
        return prometheus_text(self.registry.snapshot())

    def reset(self) -> None:
        """Clear metrics, spans and events (capacities preserved)."""
        self.registry.reset()
        self.spans.clear()
        self.events.clear()

    def close(self) -> None:
        self.events.close()
        if self.flight is not None:
            self.flight.close()


class _NullSpan:
    """Shared no-op context manager for disabled-telemetry span() calls."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: The active telemetry session, or None (telemetry off).  Hot paths read
#: this directly; everything else goes through the functions below.
ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The active telemetry session, or None when disabled."""
    return ACTIVE


def enable(
    span_capacity: int = 4096,
    event_capacity: int = 2048,
    events_jsonl: Optional[str] = None,
    fresh: bool = False,
) -> Telemetry:
    """Turn telemetry on (idempotent); returns the session.

    A session that is already active is reused — callers layering
    instrumentation (CLI flag plus library call) share one registry.
    ``fresh=True`` discards any existing session first.
    """
    global ACTIVE
    if ACTIVE is None or fresh:
        if ACTIVE is not None:
            ACTIVE.close()
        ACTIVE = Telemetry(
            span_capacity=span_capacity,
            event_capacity=event_capacity,
            events_jsonl=events_jsonl,
        )
    return ACTIVE


def disable() -> None:
    """Turn telemetry off and drop the session."""
    global ACTIVE
    if ACTIVE is not None:
        ACTIVE.close()
    ACTIVE = None


@contextmanager
def suppressed():
    """Temporarily mute all telemetry hooks in this block.

    Used where code *re-executes* history — journal replay rebuilding a
    breaker board, for instance — and the hooks it trips must not be
    counted as live events a second time.
    """
    global ACTIVE
    saved = ACTIVE
    ACTIVE = None
    try:
        yield
    finally:
        ACTIVE = saved


def span(name: str, **attrs: Any):
    """A wall-clock span on the active session, or a shared no-op."""
    tel = ACTIVE
    if tel is None:
        return _NULL_SPAN
    return tel.spans.span(name, **attrs)


def pulse() -> None:
    """Advance the session's periodic attachments, rate-limited by them.

    Instrumented call sites with a natural cadence (service dispatch,
    campaign units, supervisor probes) call this instead of running
    background threads: the timeline ticks at most once per finest
    window, the flight recorder re-mirrors its rings to the spill file
    at most once per ``sync_interval``.  Costs one ``is None`` check
    when telemetry is off.
    """
    tel = ACTIVE
    if tel is None:
        return
    if tel.timeline is not None:
        tel.timeline.maybe_tick()
    if tel.flight is not None:
        tel.flight.maybe_sync()
