"""Tests for the repro.api facade."""

import json

import numpy as np
import pytest

from repro import api
from repro.cluster import SimulatedCluster
from repro.models import ExtendedLMOModel, HeterogeneousHockneyModel


@pytest.fixture(scope="module")
def cluster():
    return api.load_cluster(nodes=5, seed=0)


@pytest.fixture(scope="module")
def outcome(cluster):
    return api.estimate(cluster, model="lmo", reps=1, quick=True, empirical=True)


def test_load_cluster_defaults():
    cluster = api.load_cluster()
    assert isinstance(cluster, SimulatedCluster)
    assert cluster.n == 16
    assert cluster.spec.name == "ucd-hcl-16"


def test_load_cluster_truncates_and_validates():
    assert api.load_cluster(nodes=4).n == 4
    with pytest.raises(api.InvalidRequest, match="nodes"):
        api.load_cluster(nodes=1)
    with pytest.raises(api.InvalidRequest, match="profile"):
        api.load_cluster(profile="nope")
    # The taxonomy keeps the historical ValueError contract.
    with pytest.raises(ValueError, match="profile"):
        api.load_cluster(profile="nope")


def test_load_cluster_from_saved_spec(tmp_path):
    spec = api.load_cluster(nodes=3).spec
    path = tmp_path / "spec.json"
    from repro.io import save

    save(spec, str(path))
    cluster = api.load_cluster(spec=str(path))
    assert cluster.spec == spec


def test_load_cluster_rejects_non_spec_file(tmp_path):
    path = tmp_path / "model.json"
    api.save_model(HeterogeneousHockneyModel(alpha=np.zeros((2, 2)),
                                             beta=np.zeros((2, 2))), str(path))
    with pytest.raises(TypeError, match="not a cluster spec"):
        api.load_cluster(spec=str(path))


def test_estimate_returns_typed_outcome(cluster, outcome):
    assert isinstance(outcome, api.EstimateOutcome)
    assert isinstance(outcome.model, ExtendedLMOModel)
    assert outcome.model_name == "lmo"
    assert outcome.n == cluster.n
    assert outcome.estimation_time > 0
    assert outcome.model.gather_irregularity is not None
    # The dict form is JSON-clean.
    json.dumps(outcome.to_dict())


def test_estimate_unknown_model(cluster):
    with pytest.raises(api.InvalidRequest, match="unknown model"):
        api.estimate(cluster, model="bogus")


def test_predict_returns_prediction(outcome):
    p = api.predict(outcome.model, "scatter", "linear", 65536)
    assert isinstance(p, api.Prediction)
    assert p.seconds > 0
    assert p.regime is None
    json.dumps(p.to_dict())


def test_predict_gather_carries_regime(outcome):
    irr = outcome.model.gather_irregularity
    mid = (irr.m1 + irr.m2) / 2
    p = api.predict(outcome.model, "gather", "linear", mid)
    assert p.regime == "medium"
    assert 0 <= p.escalation_probability <= 1


def test_predict_unsupported_pair_raises(outcome):
    het = HeterogeneousHockneyModel.from_ground_truth(
        api.load_cluster(nodes=4).ground_truth
    )
    with pytest.raises(KeyError):
        api.predict(het, "bcast", "pipeline", 1024)


def test_predict_many_matches_predict(outcome):
    requests = [
        api.PredictRequest("scatter", "linear", 1024.0),
        api.PredictRequest("gather", "linear", 65536.0),
        api.PredictRequest("bcast", "binomial", 4096.0),
        api.PredictRequest("scatter", "linear", 65536.0),
    ]
    values = api.predict_many(outcome.model, requests)
    assert values.shape == (4,)
    for req, value in zip(requests, values):
        single = api.predict(outcome.model, req.operation, req.algorithm,
                             req.nbytes, root=req.root)
        assert value == single.seconds


def test_measure_returns_measurement(cluster):
    m = api.measure(cluster, "scatter", "linear", 4096, max_reps=4)
    assert isinstance(m, api.Measurement)
    assert m.mean > 0
    assert m.reps <= 4
    assert m.confidence == 0.95
    json.dumps(m.to_dict())


def test_optimize_gather_splits_medium_regime(outcome):
    irr = outcome.model.gather_irregularity
    sizes = [irr.m1 / 2, (irr.m1 + irr.m2) / 2, irr.m2 * 2]
    plan = api.optimize_gather(outcome.model, sizes)
    assert isinstance(plan, api.GatherOptimization)
    assert plan.chunk_counts[0] == 1 and plan.chunk_counts[2] == 1
    assert plan.chunk_counts[1] > 1
    # Splitting the escalation-regime size must help; the others are untouched.
    assert plan.speedups[1] > 1.0
    assert plan.optimized_seconds[0] == plan.native_seconds[0]
    json.dumps(plan.to_dict())


def test_optimize_gather_without_irregularity(outcome):
    bare = outcome.model.with_irregularity(None)
    plan = api.optimize_gather(bare, [1024.0, 65536.0])
    assert plan.chunk_counts == (1, 1)
    assert plan.optimized_seconds == plan.native_seconds


def test_model_roundtrip_through_facade(tmp_path, outcome):
    path = tmp_path / "model.json"
    api.save_model(outcome.model, str(path))
    back = api.load_model(str(path))
    assert back.p2p_time(0, 1, 1024) == outcome.model.p2p_time(0, 1, 1024)


def test_available_algorithms_reexported(outcome):
    pairs = api.available_algorithms(outcome.model)
    assert ("scatter", "linear") in pairs
    assert ("bcast", "pipeline") in pairs


# -- durable campaigns through the facade --------------------------------------

@pytest.mark.campaign
def test_run_campaign_roundtrip(tmp_path):
    cluster = api.load_cluster(nodes=4, seed=0)
    journal = str(tmp_path / "campaign.jsonl")
    result = api.run_campaign(cluster, journal, api.CampaignConfig(timeout=5.0))
    assert isinstance(result, api.CampaignResult)
    assert result.stopped == "complete"
    assert result.coverage == 1.0
    assert isinstance(result.model, ExtendedLMOModel)
    json.dumps(result.to_dict())  # serializable, model excluded
    status = api.campaign_status(journal)
    assert isinstance(status, api.CampaignStatus)
    assert status.complete
    assert status.completed == result.completed


@pytest.mark.campaign
def test_resume_campaign_after_budget_stop(tmp_path):
    journal = str(tmp_path / "campaign.jsonl")
    config = api.CampaignConfig(timeout=5.0, max_repetitions=20)
    stopped = api.run_campaign(api.load_cluster(nodes=4, seed=0), journal, config)
    assert stopped.resumable and stopped.model is None
    resumed = api.resume_campaign(
        api.load_cluster(nodes=4, seed=0), journal, max_repetitions=10**6,
    )
    assert resumed.stopped == "complete"
    assert resumed.model is not None


@pytest.mark.campaign
def test_campaign_validates_inputs_at_the_boundary(tmp_path):
    cluster = api.load_cluster(nodes=4, seed=0)
    journal = str(tmp_path / "campaign.jsonl")
    with pytest.raises(ValueError, match="reps"):
        api.run_campaign(cluster, journal, api.CampaignConfig(reps=-1))
    with pytest.raises(ValueError, match="timeout"):
        api.run_campaign(cluster, journal,
                         api.CampaignConfig(timeout=float("nan")))
    with pytest.raises(ValueError, match="max_sim_seconds"):
        api.run_campaign(cluster, journal,
                         api.CampaignConfig(max_sim_seconds=-1.0))
    assert not (tmp_path / "campaign.jsonl").exists()  # rejected before I/O


@pytest.mark.campaign
def test_resume_campaign_wrong_cluster_is_actionable(tmp_path):
    from repro.estimation import FingerprintMismatch
    journal = str(tmp_path / "campaign.jsonl")
    config = api.CampaignConfig(timeout=5.0, max_repetitions=20)
    api.run_campaign(api.load_cluster(nodes=4, seed=0), journal, config)
    with pytest.raises(FingerprintMismatch, match="same spec, ground truth"):
        api.resume_campaign(api.load_cluster(nodes=4, seed=1), journal)


def test_check_fidelity_scores_models_without_telemetry(cluster, outcome):
    from repro.obs import runtime as _obs

    _obs.disable()
    check = api.check_fidelity(
        cluster,
        {"lmo": outcome.model},
        [("gather", "linear", 4096), ("scatter", "binomial", 8192)],
        max_reps=4,
    )
    assert isinstance(check, api.FidelityCheck)
    assert len(check.records) == 2
    assert {r.operation for r in check.records} == {
        "gather/linear", "scatter/binomial",
    }
    cards = {(c.model, c.operation) for c in check.scorecards}
    assert cards == {("lmo", "gather/linear"), ("lmo", "scatter/binomial")}
    assert "lmo" in check.render()
    json.dumps(check.to_dict())
    # Telemetry stayed off: the check used its own private registry.
    assert _obs.ACTIVE is None


def test_check_fidelity_accepts_bare_model_sequences(cluster, outcome):
    from repro.predict_service import model_label

    check = api.check_fidelity(
        cluster, [outcome.model], [("gather", "linear", 1024)], max_reps=2,
    )
    assert check.records[0].model == model_label(outcome.model)
    assert check.records[0].model.startswith("ExtendedLMOModel:")


def test_check_fidelity_skips_unsupported_points(cluster, outcome):
    hockney = api.estimate(cluster, model="hockney", reps=1, quick=True).model
    check = api.check_fidelity(
        cluster,
        {"lmo": outcome.model, "hockney": hockney},
        [("bcast", "pipeline", 4096)],  # extended-LMO only
        max_reps=2,
    )
    assert {r.model for r in check.records} == {"lmo"}


def test_check_fidelity_validates_points(cluster, outcome):
    with pytest.raises(ValueError, match="at least one"):
        api.check_fidelity(cluster, {"lmo": outcome.model}, [])


def test_measure_with_models_feeds_active_telemetry(cluster, outcome):
    from repro.obs import runtime as _obs
    from repro.obs.insight import scorecards

    tel = _obs.enable(fresh=True)
    try:
        api.measure(cluster, "gather", "linear", 4096, max_reps=2,
                    models={"lmo": outcome.model})
        cards = scorecards(tel.registry.snapshot())
        assert [(c.model, c.operation) for c in cards] == [("lmo", "gather/linear")]
    finally:
        _obs.disable()


def test_telemetry_facade_controls_the_global_session(outcome):
    from repro.obs import runtime as _obs
    from repro.predict_service import clear_cache

    _obs.disable()
    try:
        assert api.telemetry(enable=False) is None  # peek has no side effects
        tel = api.telemetry()
        assert api.telemetry() is tel  # idempotent
        clear_cache()
        api.predict(outcome.model, "scatter", "linear", 65536)
        assert tel.registry.value("predict_cache_total", result="miss") == 1
        fresh = api.telemetry(fresh=True)
        assert fresh is not tel
        assert fresh.registry.total("predict_cache_total") == 0
        snapshot = fresh.to_dict()
        assert snapshot["format"] == "repro-telemetry"
    finally:
        _obs.disable()
        clear_cache()
