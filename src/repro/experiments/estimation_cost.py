"""Section IV's estimation-cost claim: parallel vs serial schedules.

"For example, in our experiments on the 16-node heterogeneous cluster,
the parallel estimation of the heterogeneous Hockney model with the
confidence level 95% and relative error 2.5% took only 5 sec, while its
serial estimation with the same accuracy took 16 sec.  Both experiments
give the same values of the parameters."

We run the heterogeneous-Hockney estimation both ways on the simulated
cluster — with per-experiment adaptive repetition to the same 95%/2.5%
target (:func:`repro.estimation.scheduling.run_schedule_adaptive`) — and
compare the total cluster time and the recovered parameters.
"""

from __future__ import annotations

from itertools import combinations

from repro.estimation import DESEngine
from repro.estimation.experiments import roundtrip
from repro.estimation.scheduling import run_schedule_adaptive
from repro.experiments.common import KB, ExperimentResult, paper_cluster
from repro.stats import MeasurementPolicy

__all__ = ["run"]

PROBE = 32 * KB


def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Reproduce the 16 s (serial) vs 5 s (parallel) comparison."""
    policy = MeasurementPolicy(
        confidence=0.95, rel_err=0.025, min_reps=5, max_reps=20 if quick else 50
    )
    n = paper_cluster(seed=seed).n
    experiments = []
    for i, j in combinations(range(n), 2):
        experiments.append(roundtrip(i, j, 0))
        experiments.append(roundtrip(i, j, PROBE))

    serial_engine = DESEngine(paper_cluster(seed=seed))
    serial_means = run_schedule_adaptive(
        serial_engine, experiments, policy=policy, parallel=False
    )
    parallel_engine = DESEngine(paper_cluster(seed=seed))
    parallel_means = run_schedule_adaptive(
        parallel_engine, experiments, policy=policy, parallel=True
    )

    serial_time = serial_engine.estimation_time
    parallel_time = parallel_engine.estimation_time
    diffs = [
        abs(serial_means[exp] - parallel_means[exp])
        / max(serial_means[exp], parallel_means[exp])
        for exp in experiments
    ]
    worst_diff = max(diffs)

    result = ExperimentResult(
        experiment_id="estimation_cost",
        title="Heterogeneous Hockney estimation at CI 95% / 2.5%: serial vs parallel",
        text=(
            f"serial estimation:   {serial_time:6.2f} s of cluster time\n"
            f"parallel estimation: {parallel_time:6.2f} s of cluster time\n"
            f"speedup: {serial_time / parallel_time:.1f}x "
            f"(paper: 16 s -> 5 s, 3.2x)\n"
            f"worst parameter disagreement between schedules: {worst_diff:.2%}"
        ),
    )
    result.checks = {
        "parallel estimation is at least 3x cheaper": serial_time > 3 * parallel_time,
        "both schedules give the same parameters (within CI)": worst_diff < 0.06,
        "serial estimation costs whole seconds of cluster time": serial_time > 1.0,
    }
    return result


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run(quick=True).render())
