"""The collective benchmark driver (MPIBlib reproduction).

Measures collectives on the simulated cluster with MPIBlib's adaptive
stopping rule (repeat until the Student-t CI at 95% confidence is within
2.5% of the mean — the setting of all the paper's experiments), and runs
size sweeps for the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.benchlib.timing import duration
from repro.cluster.machine import SimulatedCluster
from repro.mpi.runtime import run_collective
from repro.stats.adaptive import MeasurementPolicy, measure_until_confident
from repro.stats.ci import SampleSummary

__all__ = ["BenchmarkPoint", "CollectiveBenchmark"]


@dataclass(frozen=True)
class BenchmarkPoint:
    """One measured (operation, algorithm, size) point."""

    operation: str
    algorithm: str
    nbytes: int
    root: int
    summary: SampleSummary
    benchmark_time: float

    @property
    def mean(self) -> float:
        return self.summary.mean


class CollectiveBenchmark:
    """Adaptive-repetition benchmarking of collectives on one cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        policy: Optional[MeasurementPolicy] = None,
        timing_method: str = "global",
    ):
        self.cluster = cluster
        self.policy = policy if policy is not None else MeasurementPolicy.paper()
        self.timing_method = timing_method
        #: Total cluster time consumed by benchmarking so far.
        self.benchmark_time = 0.0

    def measure(
        self, operation: str, algorithm: str, nbytes: int, root: int = 0, **kwargs
    ) -> BenchmarkPoint:
        """Measure one collective to the policy's confidence target.

        Extra keyword arguments (``combine``, ``segment_nbytes``, ...) are
        forwarded to the collective.
        """
        start_cost = self.benchmark_time

        def one_run() -> float:
            run = run_collective(self.cluster, operation, algorithm, nbytes,
                                 root=root, **kwargs)
            self.benchmark_time += self.cluster.sim.now
            return duration(run, self.timing_method)

        summary = measure_until_confident(one_run, self.policy)
        return BenchmarkPoint(
            operation=operation,
            algorithm=algorithm,
            nbytes=nbytes,
            root=root,
            summary=summary,
            benchmark_time=self.benchmark_time - start_cost,
        )

    def sweep(
        self,
        operation: str,
        algorithm: str,
        sizes: Sequence[int],
        root: int = 0,
    ) -> dict[int, BenchmarkPoint]:
        """Measure a collective across message sizes."""
        return {
            int(nbytes): self.measure(operation, algorithm, int(nbytes), root=root)
            for nbytes in sizes
        }
