"""Declarative alert rules over metric snapshots.

An :class:`AlertRule` names a scalar derived from the metrics section of
a snapshot document and a threshold for it; an :class:`AlertEngine`
evaluates a rule set against successive snapshots, tracks the
firing/resolved lifecycle, narrates transitions into the event log, and
can invoke a hook — e.g. :func:`heal_hook` wrapping a
:class:`repro.estimation.maintainer.ModelMaintainer` — when a rule with
``trigger_heal`` starts firing.

Eight rule kinds cover the observatory's needs without a query language:

* ``metric_value`` — sum of one family's samples whose labels include
  ``rule.labels`` (e.g. ``breaker_nodes{state=open}``);
* ``metric_total`` — sum across the whole family (histograms count
  observations);
* ``metric_ratio`` — ``metric`` summed over ``metric_denom`` summed
  (0 when the denominator is absent or zero), e.g. lease reclamations
  per lease granted;
* ``metric_quantile`` — an interpolated quantile (``rule.quantile``) of
  one histogram family, buckets merged across matching samples — e.g.
  the service's p99 request latency across all verbs;
* ``escalation_rate`` — escalated / total transfers from the
  :mod:`detector <repro.obs.insight.detectors>` histograms;
* ``residual`` — a scorecard statistic (``p95``/``mean``/``max``/``bias``)
  for a model/operation selection, worst-case across matching cards;
* ``slo_burn_rate`` — ``min(burn(fast_window), burn(slow_window))`` of
  the named :class:`repro.obs.slo.SLOSpec` over the timeline passed to
  :meth:`AlertEngine.evaluate` — the SRE multi-window pattern: both
  windows must burn hot before the rule fires (0.0, i.e. quiet, when no
  timeline or spec is available);
* ``metric_absent`` — staleness: counts consecutive evaluations in which
  a family that *has reported before* shows no new activity (absent, or
  a counter total frozen in place).  Catches workers that die silently
  — the failure mode a threshold on a value can never see.

The two stateful additions make the engine itself stateful across
snapshots; :meth:`AlertEngine.to_dict` / :meth:`AlertEngine.from_dict`
round-trip that state (firing flags, staleness counters) so dashboards
and restarts resume the lifecycle instead of re-firing everything.
Transitions are additionally mirrored into the flight recorder
(:meth:`repro.obs.flight.FlightRecorder.note_alert`) when one is
attached — an alert firing is exactly the moment a black-box dump is
worth keeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.obs import runtime as _runtime
from repro.obs import slo as _slo
from repro.obs.events import LEVELS as _LEVELS
from repro.obs.insight.detectors import ESCALATED_METRIC, TRANSFER_METRIC
from repro.obs.metrics import bucket_quantile
from repro.obs.insight.residuals import Scorecard, scorecards

__all__ = [
    "AlertEngine",
    "AlertRule",
    "AlertState",
    "default_rules",
    "heal_hook",
    "slo_burn_rules",
]

_OPS: dict[str, Callable[[float, float], bool]] = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}

_RESIDUAL_STATS = {
    "p50": lambda c: c.p50,
    "p95": lambda c: c.p95,
    "mean": lambda c: c.mean_abs_error,
    "max": lambda c: c.max_abs_error,
    "bias": lambda c: abs(c.bias),
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold over a metrics snapshot."""

    name: str
    kind: str  # metric_value | metric_total | metric_ratio | metric_quantile |
    #            escalation_rate | residual | slo_burn_rate | metric_absent
    threshold: float
    op: str = ">"
    level: str = "warning"
    metric: str = ""
    #: metric_ratio rules: the denominator family (numerator is ``metric``).
    metric_denom: str = ""
    labels: tuple[tuple[str, str], ...] = ()
    stat: str = "p95"  # residual rules: p50|p95|mean|max|bias
    #: metric_quantile rules: which quantile of the histogram to take.
    quantile: float = 0.99
    model: str = ""  # residual rules: "" = any model
    operation: str = ""  # residual rules: "" = any operation
    #: slo_burn_rate rules: the SLO spec name and the two windows (s).
    slo: str = ""
    fast_window: float = 300.0
    slow_window: float = 3600.0
    description: str = ""
    trigger_heal: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("metric_value", "metric_total", "metric_ratio",
                             "metric_quantile", "escalation_rate", "residual",
                             "slo_burn_rate", "metric_absent"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}")
        if self.kind == "residual" and self.stat not in _RESIDUAL_STATS:
            raise ValueError(f"unknown residual stat {self.stat!r}")
        if self.kind in ("metric_value", "metric_total", "metric_ratio",
                         "metric_quantile", "metric_absent") and not self.metric:
            raise ValueError(f"rule {self.name!r} needs a metric name")
        if self.kind == "metric_ratio" and not self.metric_denom:
            raise ValueError(f"rule {self.name!r} needs a denominator metric")
        if self.kind == "metric_quantile" and not (0.0 < self.quantile <= 1.0):
            raise ValueError(f"rule {self.name!r} needs a quantile in (0, 1], "
                             f"got {self.quantile}")
        if self.kind == "slo_burn_rate":
            if not self.slo:
                raise ValueError(f"rule {self.name!r} needs an SLO name")
            if self.fast_window <= 0.0 or self.slow_window < self.fast_window:
                raise ValueError(
                    f"rule {self.name!r} needs 0 < fast_window <= slow_window, "
                    f"got {self.fast_window}/{self.slow_window}")
        if self.level not in _LEVELS:
            raise ValueError(f"unknown level {self.level!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind, "threshold": self.threshold,
            "op": self.op, "level": self.level, "metric": self.metric,
            "metric_denom": self.metric_denom,
            "labels": dict(self.labels), "stat": self.stat,
            "quantile": self.quantile, "model": self.model,
            "operation": self.operation, "slo": self.slo,
            "fast_window": self.fast_window, "slow_window": self.slow_window,
            "description": self.description,
            "trigger_heal": self.trigger_heal,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AlertRule":
        return cls(
            name=doc["name"], kind=doc["kind"],
            threshold=float(doc["threshold"]),
            op=doc.get("op", ">"), level=doc.get("level", "warning"),
            metric=doc.get("metric", ""),
            metric_denom=doc.get("metric_denom", ""),
            labels=tuple(sorted(
                (str(k), str(v)) for k, v in dict(doc.get("labels", {})).items())),
            stat=doc.get("stat", "p95"),
            quantile=float(doc.get("quantile", 0.99)),
            model=doc.get("model", ""), operation=doc.get("operation", ""),
            slo=doc.get("slo", ""),
            fast_window=float(doc.get("fast_window", 300.0)),
            slow_window=float(doc.get("slow_window", 3600.0)),
            description=doc.get("description", ""),
            trigger_heal=bool(doc.get("trigger_heal", False)),
        )


@dataclass(frozen=True)
class AlertState:
    """One rule's verdict against one snapshot."""

    rule: AlertRule
    value: float
    firing: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule.to_dict(), "value": self.value,
            "firing": self.firing,
        }


def _sample_value(family_type: str, sample: Mapping[str, Any]) -> float:
    if family_type == "histogram":
        return float(sample["count"])
    return float(sample["value"])


def _labels_match(sample: Mapping[str, Any], wanted: tuple[tuple[str, str], ...]) -> bool:
    labels = sample.get("labels", {})
    return all(str(labels.get(k)) == v for k, v in wanted)


def _family_sum(metrics: Mapping[str, Any], name: str,
                labels: tuple[tuple[str, str], ...] = ()) -> float:
    family = metrics.get(name)
    if not family:
        return 0.0
    return sum(
        _sample_value(family["type"], sample)
        for sample in family.get("samples", ())
        if _labels_match(sample, labels)
    )


def _histogram_quantile(metrics: Mapping[str, Any], name: str,
                        labels: tuple[tuple[str, str], ...], q: float) -> float:
    """Interpolated quantile of one histogram family, matching samples'
    buckets merged (all samples of a family share one bucket layout)."""
    family = metrics.get(name)
    if not family or family.get("type") != "histogram":
        return 0.0
    merged: list[list[Any]] = []
    total = 0
    for sample in family.get("samples", ()):
        if not _labels_match(sample, labels):
            continue
        total += int(sample["count"])
        if not merged:
            merged = [[bound, int(n)] for bound, n in sample["buckets"]]
        else:
            for slot, (_, n) in zip(merged, sample["buckets"]):
                slot[1] += int(n)
    if not total:
        return 0.0
    return bucket_quantile(merged, total, q)


def _evaluate(rule: AlertRule, metrics: Mapping[str, Any],
              cards: list[Scorecard]) -> float:
    if rule.kind == "metric_value":
        return _family_sum(metrics, rule.metric, rule.labels)
    if rule.kind == "metric_total":
        return _family_sum(metrics, rule.metric)
    if rule.kind == "metric_ratio":
        denominator = _family_sum(metrics, rule.metric_denom)
        if not denominator:
            return 0.0
        return _family_sum(metrics, rule.metric, rule.labels) / denominator
    if rule.kind == "metric_quantile":
        return _histogram_quantile(metrics, rule.metric, rule.labels, rule.quantile)
    if rule.kind == "escalation_rate":
        transfers = sum(
            float(s["count"])
            for s in metrics.get(TRANSFER_METRIC, {}).get("samples", ())
        )
        escalated = sum(
            float(s["count"])
            for s in metrics.get(ESCALATED_METRIC, {}).get("samples", ())
        )
        return escalated / transfers if transfers else 0.0
    # residual
    stat = _RESIDUAL_STATS[rule.stat]
    selected = [
        stat(card) for card in cards
        if (not rule.model or card.model == rule.model)
        and (not rule.operation or card.operation == rule.operation)
    ]
    return max(selected) if selected else 0.0


class AlertEngine:
    """Evaluates a rule set against snapshots, with lifecycle tracking.

    ``on_fire(rule, value)`` is called once per rule on the transition
    into *firing* (never on re-evaluation while still firing).

    ``slos`` names the :class:`repro.obs.slo.SLOSpec` catalog that
    ``slo_burn_rate`` rules resolve against (defaults to
    :func:`repro.obs.slo.default_slos`); those rules additionally need a
    timeline passed to :meth:`evaluate` — without one they read 0.0 and
    stay quiet, so snapshot-only callers keep working unchanged.
    """

    def __init__(
        self,
        rules: Optional[list[AlertRule]] = None,
        on_fire: Optional[Callable[[AlertRule, float], None]] = None,
        slos: Optional[list[_slo.SLOSpec]] = None,
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names in {names}")
        self.on_fire = on_fire
        self.slos: dict[str, _slo.SLOSpec] = {
            spec.name: spec
            for spec in (slos if slos is not None else _slo.default_slos())
        }
        self._firing: dict[str, bool] = {}
        #: metric_absent state: last seen family total / stale-eval streak.
        self._last_totals: dict[str, float] = {}
        self._stale: dict[str, int] = {}

    def _evaluate_burn(self, rule: AlertRule, timeline: Any,
                       now: Optional[float]) -> float:
        spec = self.slos.get(rule.slo)
        if spec is None or timeline is None:
            return 0.0
        return min(
            _slo.burn_rate(spec, timeline, rule.fast_window, now=now),
            _slo.burn_rate(spec, timeline, rule.slow_window, now=now),
        )

    def _evaluate_absent(self, rule: AlertRule,
                         metrics: Mapping[str, Any]) -> float:
        """Consecutive evaluations without new activity, 0 until first seen.

        "New activity" means the family total moved (or appeared); a
        family that has never reported is not stale — a campaign-only
        process must not page about service metrics it will never have.
        """
        present = bool(metrics.get(rule.metric))
        total = _family_sum(metrics, rule.metric, rule.labels)
        previous = self._last_totals.get(rule.name)
        if present and (previous is None or total != previous):
            self._stale[rule.name] = 0
            self._last_totals[rule.name] = total
        elif previous is None:
            self._stale[rule.name] = 0
        else:
            self._stale[rule.name] = self._stale.get(rule.name, 0) + 1
        return float(self._stale[rule.name])

    def evaluate(self, metrics: Mapping[str, Any],
                 timeline: Any = None,
                 now: Optional[float] = None) -> list[AlertState]:
        """One pass over the rule set; narrates transitions, runs hooks."""
        cards = scorecards(metrics)
        tel = _runtime.ACTIVE
        recorder = tel.flight if tel is not None else None
        states: list[AlertState] = []
        for rule in self.rules:
            if rule.kind == "slo_burn_rate":
                value = self._evaluate_burn(rule, timeline, now)
            elif rule.kind == "metric_absent":
                value = self._evaluate_absent(rule, metrics)
            else:
                value = _evaluate(rule, metrics, cards)
            firing = _OPS[rule.op](value, rule.threshold)
            was = self._firing.get(rule.name, False)
            self._firing[rule.name] = firing
            states.append(AlertState(rule=rule, value=value, firing=firing))
            if firing == was:
                continue
            if recorder is not None:
                recorder.note_alert(rule=rule.name, firing=firing, value=value,
                                    threshold=rule.threshold, level=rule.level)
            if firing:
                if tel is not None:
                    tel.registry.counter(
                        "alerts_fired_total", "alert rule firing transitions",
                        rule=rule.name,
                    ).inc()
                    tel.events.emit(
                        "alert_firing", level=rule.level, rule=rule.name,
                        value=value, threshold=rule.threshold,
                    )
                if self.on_fire is not None:
                    self.on_fire(rule, value)
            elif tel is not None:
                tel.events.info(
                    "alert_resolved", rule=rule.name,
                    value=value, threshold=rule.threshold,
                )
        return states

    def firing(self) -> list[str]:
        """Names of currently-firing rules (after the last evaluate)."""
        return [name for name, on in sorted(self._firing.items()) if on]

    # -- state round-trip ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Rules + lifecycle state, JSON-ready (dashboard/restart resume)."""
        return {
            "rules": [rule.to_dict() for rule in self.rules],
            "slos": [spec.to_dict() for spec in self.slos.values()],
            "firing": dict(sorted(self._firing.items())),
            "stale": dict(sorted(self._stale.items())),
            "last_totals": dict(sorted(self._last_totals.items())),
        }

    @classmethod
    def from_dict(
        cls, doc: Mapping[str, Any],
        on_fire: Optional[Callable[[AlertRule, float], None]] = None,
    ) -> "AlertEngine":
        """Rebuild an engine mid-lifecycle: a rule recorded as firing does
        not re-fire on the next evaluate unless it first resolved."""
        engine = cls(
            rules=[AlertRule.from_dict(r) for r in doc.get("rules", [])],
            on_fire=on_fire,
            slos=[_slo.SLOSpec.from_dict(s) for s in doc.get("slos", [])],
        )
        engine._firing = {str(k): bool(v)
                          for k, v in dict(doc.get("firing", {})).items()}
        engine._stale = {str(k): int(v)
                         for k, v in dict(doc.get("stale", {})).items()}
        engine._last_totals = {str(k): float(v)
                               for k, v in dict(doc.get("last_totals", {})).items()}
        return engine


def default_rules() -> list[AlertRule]:
    """The stock observatory rule set (docs/observability.md catalog)."""
    return [
        AlertRule(
            name="escalation_rate_high", kind="escalation_rate",
            threshold=0.02, op=">", level="warning",
            description="natural RTO escalations exceed 2% of transfers "
                        "(traffic is living inside the M1..M2 region)",
        ),
        AlertRule(
            name="breaker_open", kind="metric_value",
            metric="breaker_nodes", labels=(("state", "open"),),
            threshold=0.0, op=">", level="error",
            description="at least one node's circuit breaker is OPEN",
        ),
        AlertRule(
            name="model_drift_high", kind="metric_value",
            metric="maintainer_worst_drift", threshold=0.15, op=">",
            level="warning", trigger_heal=True,
            description="maintainer spot-check drift above 15% — "
                        "re-estimation warranted",
        ),
        AlertRule(
            name="residual_p95_high", kind="residual", stat="p95",
            threshold=0.25, op=">", level="warning",
            description="95th-percentile |relative prediction error| "
                        "above 25% for some model/operation",
        ),
        AlertRule(
            name="lease_reclamations_high", kind="metric_ratio",
            metric="parallel_units_reclaimed_total",
            metric_denom="parallel_leases_granted_total",
            threshold=0.5, op=">", level="warning",
            description="parallel campaign reclaimed more than 0.5 units "
                        "per granted lease — workers are dying or "
                        "stragglers are being harvested",
        ),
        AlertRule(
            name="worker_heartbeat_stale", kind="metric_value",
            metric="parallel_worker_heartbeat_stale",
            threshold=0.0, op=">", level="error",
            description="a live campaign worker has not been heard from "
                        "within the stale_after window",
        ),
        AlertRule(
            name="service_queue_depth_high", kind="metric_value",
            metric="service_queue_depth", threshold=48.0, op=">",
            level="warning",
            description="prediction-service worker queues hold more than 48 "
                        "requests in total — nearing the bounded-queue limit "
                        "where new work is rejected as `overloaded`",
        ),
        AlertRule(
            name="service_p99_latency_high", kind="metric_quantile",
            metric="service_request_seconds", quantile=0.99,
            threshold=0.25, op=">", level="warning",
            description="99th-percentile service request latency above "
                        "250 ms across all verbs",
        ),
        AlertRule(
            name="service_crash_loop", kind="metric_value",
            metric="supervisor_crash_loop", threshold=0.0, op=">",
            level="error",
            description="the service supervisor gave up: the daemon "
                        "crashed restart-limit times within the crash-loop "
                        "window and will not be restarted again",
        ),
        AlertRule(
            name="service_deadline_shed_high", kind="metric_ratio",
            metric="service_deadline_shed_total",
            metric_denom="service_requests_total",
            threshold=0.05, op=">", level="warning",
            description="more than 5% of service requests were shed "
                        "unexecuted because their deadline_ms expired "
                        "while queued — the service is running behind "
                        "its callers' latency budgets",
        ),
        AlertRule(
            name="service_requests_absent", kind="metric_absent",
            metric="service_requests_total", threshold=3.0, op=">=",
            level="error",
            description="the service_requests_total family has shown no "
                        "new activity for 3 consecutive evaluations after "
                        "reporting before — the daemon (or its watchdog) "
                        "went silent, not loud",
        ),
    ] + slo_burn_rules(
        "service_availability", level_fast="error", level_slow="warning",
    )


def slo_burn_rules(
    slo_name: str,
    fast_windows: tuple[float, float] = _slo.FAST_WINDOWS,
    slow_windows: tuple[float, float] = _slo.SLOW_WINDOWS,
    fast_burn: float = _slo.FAST_BURN,
    slow_burn: float = _slo.SLOW_BURN,
    level_fast: str = "error",
    level_slow: str = "warning",
) -> list[AlertRule]:
    """The paging pair for one SLO: fast 5m/1h @ 14.4x, slow 30m/6h @ 6x.

    Window lengths are parameters so tests (and sim-time campaigns) can
    shrink the pattern without changing its shape.
    """
    return [
        AlertRule(
            name=f"slo_{slo_name}_burn_fast", kind="slo_burn_rate",
            slo=slo_name, threshold=fast_burn, op=">", level=level_fast,
            fast_window=fast_windows[0], slow_window=fast_windows[1],
            description=f"SLO {slo_name}: error budget burning faster than "
                        f"{fast_burn}x sustained over both the "
                        f"{fast_windows[0]:.0f}s and {fast_windows[1]:.0f}s "
                        f"windows — page",
        ),
        AlertRule(
            name=f"slo_{slo_name}_burn_slow", kind="slo_burn_rate",
            slo=slo_name, threshold=slow_burn, op=">", level=level_slow,
            fast_window=slow_windows[0], slow_window=slow_windows[1],
            description=f"SLO {slo_name}: error budget burning faster than "
                        f"{slow_burn}x sustained over both the "
                        f"{slow_windows[0]:.0f}s and {slow_windows[1]:.0f}s "
                        f"windows — ticket",
        ),
    ]


def heal_hook(maintainer: Any) -> Callable[[AlertRule, float], None]:
    """An ``on_fire`` hook that runs a maintainer cycle on heal-rules.

    Wire it as ``AlertEngine(rules, on_fire=heal_hook(maintainer))`` —
    any rule with ``trigger_heal=True`` entering the firing state runs
    one monitor-and-repair cycle.
    """
    def _hook(rule: AlertRule, value: float) -> None:
        if rule.trigger_heal:
            maintainer.cycle()
    return _hook
