"""Fig. 5 bench: linear gather — two slopes and escalations."""

from conftest import assert_checks

from repro.models import GatherPrediction, predict_linear_gather
from repro.mpi import run_collective

KB = 1024


def test_fig5_shape(experiment_results):
    assert_checks(experiment_results("fig5"))


def test_fig5_lmo_tracks_clean_observation(experiment_results):
    result = experiment_results("fig5")
    clean = result.get("observed-min")
    lmo = result.get("lmo")
    assert lmo.mean_relative_error(clean) < 0.35


def test_bench_gather_in_escalation_region(benchmark, experiment_results, lam_cluster):
    """Kernel: one 16-rank gather at 32 KB (the irregular region)."""
    assert_checks(experiment_results("fig5"))

    def kernel():
        return run_collective(lam_cluster, "gather", "linear", nbytes=32 * KB).time

    assert benchmark(kernel) > 0


def test_bench_lmo_gather_formula(benchmark, experiment_results, model_suite):
    """Kernel: formula (5) with its empirical branches."""
    assert_checks(experiment_results("fig5"))

    def kernel():
        pred = predict_linear_gather(model_suite.lmo, 32 * KB)
        assert isinstance(pred, GatherPrediction)
        return pred.expected

    assert benchmark(kernel) > 0
