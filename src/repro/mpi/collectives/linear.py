"""Linear (flat-tree) collective algorithms.

These are the algorithms the paper's Section III models: the root talks to
every other rank directly.  On a switched cluster the root's CPU is the
serial bottleneck while the switch parallelizes the transfers — exactly the
structure the LMO formulas (4) and (5) capture.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.mpi.comm import COLL_TAG, RankComm

__all__ = ["scatter", "scatterv", "gather", "gatherv", "bcast", "reduce", "alltoall"]


def _others(size: int, root: int) -> list[int]:
    """Non-root ranks in send order root+1, root+2, ... (mod size)."""
    return [(root + offset) % size for offset in range(1, size)]


def scatter(
    comm: RankComm,
    root: int,
    block_nbytes: int,
    data: Optional[Sequence[Any]] = None,
) -> Generator:
    """Linear scatter: the root sends one block to each rank in turn.

    Returns this rank's block (``data[rank]`` when the root supplied real
    payloads, else ``None``).
    """
    if comm.rank == root:
        if data is not None and len(data) != comm.size:
            raise ValueError(f"scatter data must have {comm.size} blocks")
        for dst in _others(comm.size, root):
            payload = None if data is None else data[dst]
            yield from comm.send(dst, payload=payload, nbytes=block_nbytes, tag=COLL_TAG)
        return None if data is None else data[root]
    env = yield from comm.recv(root, tag=COLL_TAG)
    return env.payload


def gather(
    comm: RankComm,
    root: int,
    block_nbytes: int,
    block: Any = None,
) -> Generator:
    """Linear gather: every rank sends its block to the root.

    The root receives *sequentially in rank order* (blocking receives),
    as LAM/MPICH-era native linear gathers do.  The protocol consequence
    is the paper's M2 threshold: blocks above the eager limit use the
    rendezvous protocol, so sender ``i+1`` cannot push data until the
    root has finished receiving from sender ``i`` — the transfers (and
    their per-byte costs) serialize completely, producing the steeper
    large-message slope of formula (5)'s sum branch.  Eager blocks are
    already buffered on arrival, so rank-order receives cost nothing
    extra there.

    Returns the list of blocks by rank at the root, ``None`` elsewhere.
    """
    if comm.rank == root:
        blocks: list[Any] = [None] * comm.size
        blocks[root] = block
        for src in _others(comm.size, root):
            env = yield from comm.recv(src, tag=COLL_TAG)
            blocks[src] = env.payload
        return blocks
    yield from comm.send(root, payload=block, nbytes=block_nbytes, tag=COLL_TAG)
    return None


def scatterv(
    comm: RankComm,
    root: int,
    counts: Sequence[int],
    data: Optional[Sequence[Any]] = None,
) -> Generator:
    """Linear scatterv: per-rank block sizes (MPI_Scatterv).

    ``counts[i]`` is the byte count destined for rank ``i``; zero-count
    ranks are skipped entirely (no empty message), mirroring common MPI
    implementations.  Returns this rank's block.
    """
    if len(counts) != comm.size:
        raise ValueError(f"counts must have {comm.size} entries")
    if any(c < 0 for c in counts):
        raise ValueError("negative counts")
    if comm.rank == root:
        if data is not None and len(data) != comm.size:
            raise ValueError(f"scatterv data must have {comm.size} blocks")
        for dst in _others(comm.size, root):
            if counts[dst] == 0:
                continue
            payload = None if data is None else data[dst]
            yield from comm.send(dst, payload=payload, nbytes=counts[dst], tag=COLL_TAG)
        return None if data is None else data[root]
    if counts[comm.rank] == 0:
        return None
    env = yield from comm.recv(root, tag=COLL_TAG)
    return env.payload


def gatherv(
    comm: RankComm,
    root: int,
    counts: Sequence[int],
    block: Any = None,
) -> Generator:
    """Linear gatherv: per-rank block sizes, sequential root receives.

    Like :func:`gather`, the root receives in rank order (the native
    algorithm), so rendezvous-size blocks serialize; zero-count ranks send
    nothing.  Returns the list of blocks by rank at the root.
    """
    if len(counts) != comm.size:
        raise ValueError(f"counts must have {comm.size} entries")
    if any(c < 0 for c in counts):
        raise ValueError("negative counts")
    if comm.rank == root:
        blocks: list[Any] = [None] * comm.size
        blocks[root] = block
        for src in _others(comm.size, root):
            if counts[src] == 0:
                continue
            env = yield from comm.recv(src, tag=COLL_TAG)
            blocks[src] = env.payload
        return blocks
    if counts[comm.rank] == 0:
        return None
    yield from comm.send(root, payload=block, nbytes=counts[comm.rank], tag=COLL_TAG)
    return None


def bcast(
    comm: RankComm,
    root: int,
    nbytes: int,
    payload: Any = None,
) -> Generator:
    """Linear broadcast: the root sends the full message to each rank."""
    if comm.rank == root:
        for dst in _others(comm.size, root):
            yield from comm.send(dst, payload=payload, nbytes=nbytes, tag=COLL_TAG)
        return payload
    env = yield from comm.recv(root, tag=COLL_TAG)
    return env.payload


def reduce(
    comm: RankComm,
    root: int,
    nbytes: int,
    value: Any = None,
    combine=None,
) -> Generator:
    """Linear reduce: the root receives and combines every contribution.

    Combining charges the root's CPU one per-byte pass per message
    (modelled as ``nbytes * t_root``), on top of the receive processing the
    transport already charges.
    """
    cluster = comm.layer.cluster
    if comm.rank == root:
        acc = value
        for src in _others(comm.size, root):
            env = yield from comm.recv(src, tag=COLL_TAG)
            cost = cluster.noisy(nbytes * cluster.ground_truth.t[root])
            yield from cluster.cpu[root].hold(cluster.sim, cost)
            if combine is not None:
                acc = combine(acc, env.payload)
        return acc
    yield from comm.send(root, payload=value, nbytes=nbytes, tag=COLL_TAG)
    return None


def alltoall(comm: RankComm, block_nbytes: int) -> Generator:
    """Linear all-to-all with rotated pairing to avoid hot-spots.

    In step ``k`` each rank sends to ``rank+k`` and receives from
    ``rank-k`` (mod size), the classic schedule that keeps every switch
    port busy with exactly one incoming flow per step.
    """
    received: dict[int, Any] = {}
    for k in range(1, comm.size):
        dst = (comm.rank + k) % comm.size
        src = (comm.rank - k) % comm.size
        send_req = comm.isend(dst, nbytes=block_nbytes, tag=COLL_TAG)
        recv_req = comm.irecv(src, tag=COLL_TAG)
        yield send_req.sent
        env = yield from comm.wait(recv_req)
        received[src] = env.payload
    return received
