"""The observatory's face: one self-contained HTML file + terminal view.

``build_dashboard`` merges everything the snapshot document knows —
metrics, span stats, event counts, residual scorecards, the live
irregularity estimate, alert verdicts, and the ``BENCH_*.json``
trajectory — into one JSON-ready dict.  ``render_html`` turns that dict
into a single dependency-free HTML file (inline CSS + inline SVG, no
scripts, no external assets); ``render_terminal`` is the same content as
one screen of text, and ``watch`` re-renders it periodically.

The HTML follows the house dataviz rules: roles as CSS custom properties
with a ``prefers-color-scheme`` dark block, thin marks on a single axis,
status colors paired with icons and labels (never color alone), and a
table twin next to the chart so every number is readable without it.
"""

from __future__ import annotations

import html
import json
import time
from typing import Any, Callable, Mapping, Optional, Sequence, TextIO

from repro.obs import slo as _slo
from repro.obs.export import validate_snapshot
from repro.obs.insight.alerts import AlertEngine, AlertRule
from repro.obs.insight.detectors import EscalationDetector
from repro.obs.insight.residuals import (
    BucketScore,
    Scorecard,
    render_scorecards,
    scorecards,
)
from repro.obs.timeline import TimelineStore

__all__ = [
    "build_dashboard",
    "render_html",
    "render_terminal",
    "render_top",
    "watch",
]


def _fmt_bytes(value: float) -> str:
    value = float(value)
    for unit, scale in (("MB", 2 ** 20), ("KB", 2 ** 10)):
        if value >= scale:
            shown = value / scale
            return f"{shown:.0f} {unit}" if shown == int(shown) else f"{shown:.1f} {unit}"
    return f"{value:.0f} B"


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _spark(points: Sequence[Sequence[float]], width: int = 24) -> str:
    """Unicode sparkline of the last ``width`` (time, value) points."""
    values = [float(p[1]) for p in points][-width:]
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return _SPARK_GLYPHS[0] * len(values)
    return "".join(
        _SPARK_GLYPHS[min(len(_SPARK_GLYPHS) - 1,
                          int(v / peak * (len(_SPARK_GLYPHS) - 1)))]
        for v in values
    )


def _metric_sum(metrics: Mapping[str, Any], name: str, **labels: str) -> float:
    family = metrics.get(name)
    if not family:
        return 0.0
    total = 0.0
    for sample in family.get("samples", ()):
        got = sample.get("labels", {})
        if all(str(got.get(k)) == v for k, v in labels.items()):
            total += float(sample["count"] if family["type"] == "histogram"
                           else sample["value"])
    return total


def _timeline_panel(timeline: TimelineStore) -> dict[str, Any]:
    """Per-counter rate series for the trend sparklines.

    The middle tier balances span against resolution: the coarsest tier
    collapses a short-lived process to a single point, the finest one
    shows only the last couple of minutes of a long-lived one.
    """
    horizon = timeline.tiers[len(timeline.tiers) // 2].horizon
    series: dict[str, dict[str, Any]] = {}
    for name in timeline.counter_names():
        points = timeline.series(name, horizon)
        if not points:
            continue
        series[name] = {
            "rate": timeline.rate(name, horizon),
            "total": timeline.sum_over_window(name, horizon),
            "points": [[round(t, 3), round(v, 6)] for t, v in points],
        }
    return {
        "window_seconds": horizon,
        "tiers": [{"width": t.width, "capacity": t.capacity}
                  for t in timeline.tiers],
        "last_tick": timeline.last_tick,
        "series": series,
    }


def build_dashboard(
    doc: Mapping[str, Any],
    bench: Sequence[tuple[str, Mapping[str, Any]]] = (),
    rules: Optional[list[AlertRule]] = None,
    engine: Optional[AlertEngine] = None,
    warnings: Sequence[str] = (),
) -> dict[str, Any]:
    """Merge a snapshot document into the dashboard's data dict.

    ``bench`` is ``(name, parsed-json)`` pairs from ``BENCH_*.json``
    files; ``engine`` lets a caller keep firing state across refreshes
    (``watch``), otherwise a fresh engine evaluates ``rules``;
    ``warnings`` are ingest problems (unreadable bench files, …) that
    must surface on the dashboard instead of killing it.
    """
    validate_snapshot(doc)
    metrics = doc.get("metrics", {})
    warnings = list(warnings)
    timeline: Optional[TimelineStore] = None
    if isinstance(doc.get("timeline"), Mapping):
        try:
            timeline = TimelineStore.from_dict(doc["timeline"])
        except (ValueError, KeyError, TypeError) as exc:
            warnings.append(f"timeline section unreadable: {exc}")
    if engine is None:
        engine = AlertEngine(rules=rules)
    alerts = engine.evaluate(metrics, timeline=timeline)
    slo_status: list[dict[str, Any]] = []
    if timeline is not None and timeline.last_tick is not None:
        slo_status = [
            status.to_dict()
            for status in _slo.evaluate_slos(
                list(engine.slos.values()), timeline
            )
        ]
    cards = scorecards(metrics)

    detector = EscalationDetector.from_snapshot(metrics)
    try:
        irregularity = detector.estimate().to_dict()
    except ValueError:
        irregularity = None

    escalations = _metric_sum(metrics, "rto_escalations_total")
    transfers = _metric_sum(metrics, "sim_transfer_bytes")
    escalated = _metric_sum(metrics, "sim_escalated_transfer_bytes")
    coverage = _metric_sum(metrics, "campaign_coverage")
    open_breakers = _metric_sum(metrics, "breaker_nodes", state="open")
    drift = _metric_sum(metrics, "maintainer_worst_drift")
    pairs = sum(card["count"] for card in (c.to_dict() for c in cards))
    firing = [a for a in alerts if a.firing]

    tiles = [
        {"label": "alerts firing", "value": str(len(firing)),
         "status": "critical" if firing else "good"},
        {"label": "residual pairs", "value": str(int(pairs)), "status": "none"},
        {"label": "RTO escalations", "value": str(int(escalations)),
         "status": "warning" if escalations else "good"},
        {"label": "escalation rate",
         "value": f"{escalated / transfers:.1%}" if transfers else "n/a",
         "status": "none"},
        {"label": "breakers open", "value": str(int(open_breakers)),
         "status": "serious" if open_breakers else "good"},
    ]
    if coverage:
        tiles.append({"label": "campaign coverage", "value": f"{coverage:.0%}",
                      "status": "good" if coverage >= 1.0 else "warning"})
    if drift:
        tiles.append({"label": "worst drift", "value": f"{drift:.1%}",
                      "status": "warning" if drift > 0.15 else "none"})
    if slo_status:
        worst = min(s["budget_remaining"] for s in slo_status)
        tiles.append({
            "label": "worst SLO budget",
            "value": f"{worst:.0%}",
            "status": ("critical" if worst <= 0.0
                       else "warning" if worst < 0.5 else "good"),
        })
    if warnings:
        tiles.append({"label": "ingest warnings", "value": str(len(warnings)),
                      "status": "warning"})

    events = doc.get("events", [])
    by_event: dict[str, int] = {}
    for record in events:
        by_event[record["name"]] = by_event.get(record["name"], 0) + 1
    spans = [s for s in doc.get("spans", []) if s.get("end") is not None]
    by_span: dict[str, tuple[int, float]] = {}
    for span in spans:
        count, total = by_span.get(span["name"], (0, 0.0))
        by_span[span["name"]] = (
            count + 1, total + float(span["end"]) - float(span["start"]),
        )

    # Trace panel: finished spans grouped by the trace id the wire
    # envelope propagated (repro.obs.trace) — one row per distributed
    # request that touched this process.
    by_trace: dict[str, dict[str, Any]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if not trace_id:
            continue
        entry = by_trace.setdefault(
            trace_id, {"spans": 0, "total_seconds": 0.0, "names": []},
        )
        entry["spans"] += 1
        entry["total_seconds"] += float(span["end"]) - float(span["start"])
        if span["name"] not in entry["names"]:
            entry["names"].append(span["name"])
    for entry in by_trace.values():
        entry["names"] = sorted(entry["names"])

    # Kernel-profile panel: the hot-frame table from the deterministic
    # profiler's BENCH_kernel_profile.json, when the caller passed it.
    kernel_profile: Optional[dict[str, Any]] = None
    for name, data in bench:
        profile = data.get("profile")
        if data.get("bench") == "kernel_profile" and isinstance(profile, Mapping):
            kernel_profile = {
                "source": name,
                "events_per_second": data.get("events_per_second"),
                "events_processed": data.get("events_processed"),
                "frames": [dict(f) for f in profile.get("frames", ())][:12],
            }
            break

    return {
        "title": "repro model-fidelity observatory",
        "summary": {
            "metric_families": len(metrics),
            "events": len(events),
            "spans_finished": len(spans),
            "dropped": dict(doc.get("dropped", {})),
        },
        "tiles": tiles,
        "warnings": warnings,
        "alerts": [a.to_dict() for a in alerts],
        "slos": slo_status,
        "timeline": _timeline_panel(timeline) if timeline is not None else None,
        "scorecards": [c.to_dict() for c in cards],
        "irregularity": irregularity,
        "events_by_name": dict(sorted(by_event.items())),
        "spans_by_name": {
            name: {"count": count, "total_seconds": total}
            for name, (count, total) in sorted(by_span.items())
        },
        "traces": {tid: by_trace[tid] for tid in sorted(by_trace)},
        "kernel_profile": kernel_profile,
        "bench": [{"name": name, "data": dict(data)} for name, data in bench],
    }


# -- terminal view ----------------------------------------------------------------
def render_terminal(data: Mapping[str, Any]) -> str:
    """The dashboard as one screen of text."""
    lines = [data["title"], "=" * len(data["title"])]
    lines.append("  ".join(
        f"{tile['label']}: {tile['value']}" for tile in data["tiles"]
    ))
    for warning in data.get("warnings") or ():
        lines.append(f"  ! {warning}")
    lines.append("")
    lines.append("alerts:")
    for alert in data["alerts"]:
        rule = alert["rule"]
        mark = "FIRING" if alert["firing"] else "ok"
        lines.append(
            f"  [{mark:>6}] {rule['name']}: {alert['value']:.4g} "
            f"{rule['op']} {rule['threshold']:.4g}"
        )
    slos = data.get("slos") or ()
    if slos:
        lines.append("")
        lines.append("slos:")
        for status in slos:
            spec = status["slo"]
            lines.append(
                f"  {spec['name']}: objective {spec['objective']:.4g}, "
                f"budget {status['budget_remaining']:.0%} left, "
                f"burn fast {status['burn_fast']:.2f}x / "
                f"slow {status['burn_slow']:.2f}x "
                f"({status['good']:.0f}/{status['total']:.0f} good)"
            )
    timeline = data.get("timeline")
    if timeline and timeline.get("series"):
        lines.append("")
        lines.append(
            f"timeline (last {timeline['window_seconds']:.0f}s):"
        )
        for name, entry in sorted(timeline["series"].items()):
            lines.append(
                f"  {name}: {entry['total']:.0f} total, "
                f"{entry['rate']:.3g}/s {_spark(entry['points'])}"
            )
    lines.append("")
    cards = [
        Scorecard(
            model=c["model"], operation=c["operation"], count=c["count"],
            mean_abs_error=c["mean_abs_error"], bias=c["bias"],
            p50=c["p50"], p95=c["p95"], max_abs_error=c["max_abs_error"],
            buckets=tuple(BucketScore(**b) for b in c["buckets"]),
        )
        for c in data["scorecards"]
    ]
    lines.append(render_scorecards(cards))
    irregularity = data.get("irregularity")
    if irregularity:
        lines.append("")
        lines.append(
            "live gather irregularity: "
            f"M1 ~ {_fmt_bytes(irregularity['m1'])}, "
            f"M2 ~ {_fmt_bytes(irregularity['m2'])}, "
            f"escalation ~ {irregularity['escalation_value']:.3g} s"
        )
    traces = data.get("traces") or {}
    if traces:
        lines.append("")
        lines.append("traces:")
        for trace_id, entry in traces.items():
            lines.append(
                f"  {trace_id}: {entry['spans']} spans, "
                f"{entry['total_seconds'] * 1e3:.2f} ms "
                f"({', '.join(entry['names'])})"
            )
    kernel = data.get("kernel_profile")
    if kernel:
        lines.append("")
        eps = kernel.get("events_per_second")
        rate = f" ({eps:,.0f} events/s baseline)" if eps else ""
        lines.append(f"kernel hot frames{rate}:")
        for frame in kernel["frames"]:
            lines.append(
                f"  {frame['name']}: x{frame['count']}, "
                f"self {frame['self_ns'] / 1e6:.2f} ms, "
                f"cum {frame['cum_ns'] / 1e6:.2f} ms"
            )
    if data["bench"]:
        lines.append("")
        lines.append("bench trajectory:")
        for entry in data["bench"]:
            stats = ", ".join(
                f"{k}={v:.4g}" for k, v in sorted(entry["data"].items())
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            lines.append(f"  {entry['name']}: {stats}")
    return "\n".join(lines)


def render_top(data: Mapping[str, Any]) -> str:
    """``repro obs top`` — one dense screen: alerts, SLO budgets, rates.

    The same data dict as :func:`render_terminal`, but trimmed to what an
    operator glances at under pressure: firing alerts first, error-budget
    gauges, then the busiest counters with sparklines.
    """
    summary = data["summary"]
    lines = [
        f"{data['title']} — {summary['metric_families']} families, "
        f"{summary['spans_finished']} spans",
    ]
    for warning in data.get("warnings") or ():
        lines.append(f"  ! {warning}")
    firing = [a for a in data["alerts"] if a["firing"]]
    if firing:
        for alert in firing:
            rule = alert["rule"]
            lines.append(
                f"  FIRING [{rule['level']}] {rule['name']}: "
                f"{alert['value']:.4g} {rule['op']} {rule['threshold']:.4g}"
            )
    else:
        lines.append(f"  alerts: all {len(data['alerts'])} ok")
    for status in data.get("slos") or ():
        spec = status["slo"]
        gauge = _gauge_bar(status["budget_remaining"])
        lines.append(
            f"  slo {spec['name']:<28.28} {gauge} "
            f"{status['budget_remaining']:>4.0%} budget  "
            f"burn {status['burn_fast']:.1f}x/{status['burn_slow']:.1f}x"
        )
    timeline = data.get("timeline")
    if timeline and timeline.get("series"):
        ranked = sorted(
            timeline["series"].items(),
            key=lambda kv: -kv[1]["rate"],
        )
        for name, entry in ranked[:10]:
            lines.append(
                f"  {name:<34.34} {entry['rate']:>9.3g}/s "
                f"{_spark(entry['points'])}"
            )
    else:
        lines.append("  (no timeline in this snapshot — serve with "
                     "timeline enabled or tick a TimelineStore)")
    return "\n".join(lines)


def _gauge_bar(fraction: float, width: int = 10) -> str:
    filled = max(0, min(width, round(float(fraction) * width)))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def watch(
    path: str,
    interval: float = 2.0,
    count: Optional[int] = None,
    stream: Optional[TextIO] = None,
    sleep: Callable[[float], None] = time.sleep,
    rules: Optional[list[AlertRule]] = None,
    formatter: Optional[Callable[[Mapping[str, Any]], str]] = None,
) -> Optional[dict[str, Any]]:
    """Periodically re-read ``path`` and print the terminal dashboard.

    ``count`` bounds the number of refreshes (None = until interrupted);
    the alert engine persists across refreshes so firing/resolved
    lifecycle transitions are narrated exactly once.  ``formatter``
    overrides :func:`render_terminal` (e.g. JSON output).  Returns the
    last data dict (handy in tests).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    render = formatter if formatter is not None else render_terminal
    engine = AlertEngine(rules=rules)
    data: Optional[dict[str, Any]] = None
    iteration = 0
    while count is None or iteration < count:
        if iteration:
            sleep(interval)
        with open(path) as fh:
            doc = json.load(fh)
        data = build_dashboard(doc, engine=engine)
        print(render(data), file=out)
        print("", file=out)
        iteration += 1
    return data


# -- HTML view --------------------------------------------------------------------
_STATUS = {
    "good": ("var(--status-good)", "✓"),
    "warning": ("var(--status-warning)", "▲"),
    "serious": ("var(--status-serious)", "▲"),
    "critical": ("var(--status-critical)", "✕"),
    "error": ("var(--status-critical)", "✕"),
    "none": ("var(--text-secondary)", ""),
}

_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #898781;
  --series-1: #2a78d6; --grid: #e1e0d9; --baseline: #c3c2b7;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --series-1: #3987e5; --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 120px;
}
.tile .v { font-size: 24px; }
.tile .l { color: var(--text-secondary); font-size: 12px; margin-top: 2px; }
table.viz {
  border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; font-size: 13px;
}
table.viz th, table.viz td {
  padding: 6px 12px; text-align: right;
  font-variant-numeric: tabular-nums;
}
table.viz th {
  color: var(--text-secondary); font-weight: 500;
  border-bottom: 1px solid var(--grid);
}
table.viz th:first-child, table.viz td:first-child { text-align: left; }
.chart { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; display: inline-block; }
.muted { color: var(--text-muted); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _tile_html(tile: Mapping[str, str]) -> str:
    color, icon = _STATUS.get(tile.get("status", "none"), _STATUS["none"])
    badge = (
        f'<span style="color:{color}" aria-hidden="true">{icon}</span> '
        if icon else ""
    )
    return (
        '<div class="tile">'
        f'<div class="v">{badge}{_esc(tile["value"])}</div>'
        f'<div class="l">{_esc(tile["label"])}</div></div>'
    )


def _alerts_html(alerts: Sequence[Mapping[str, Any]]) -> str:
    rows = []
    for alert in alerts:
        rule = alert["rule"]
        if alert["firing"]:
            color, icon = _STATUS.get(rule["level"], _STATUS["critical"])
            state = f'<span style="color:{color}">{icon} firing</span>'
        else:
            color, icon = _STATUS["good"]
            state = f'<span style="color:{color}">{icon} ok</span>'
        rows.append(
            f"<tr><td>{_esc(rule['name'])}</td><td>{state}</td>"
            f"<td>{alert['value']:.4g}</td>"
            f"<td>{_esc(rule['op'])} {rule['threshold']:.4g}</td>"
            f"<td style='text-align:left'>{_esc(rule['description'])}</td></tr>"
        )
    return (
        '<table class="viz"><thead><tr><th>rule</th><th>state</th>'
        "<th>value</th><th>threshold</th><th>description</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _warnings_html(warnings: Sequence[str]) -> str:
    if not warnings:
        return ""
    items = "".join(
        f'<li><span style="color:var(--status-warning)" aria-hidden="true">▲'
        f"</span> {_esc(w)}</li>"
        for w in warnings
    )
    return (
        "<h2>Ingest warnings</h2>"
        f'<ul style="font-size:13px;line-height:1.7">{items}</ul>'
    )


def _budget_gauge_svg(fraction: float) -> str:
    """A small horizontal budget gauge: filled = budget remaining."""
    width, height = 120, 12
    frac = max(0.0, min(1.0, float(fraction)))
    fill = ("var(--status-critical)" if frac <= 0.0
            else "var(--status-warning)" if frac < 0.5
            else "var(--status-good)")
    return (
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        f'aria-label="error budget {frac:.0%} remaining">'
        f'<rect x="0" y="0" width="{width}" height="{height}" rx="3" '
        'fill="var(--grid)"/>'
        f'<rect x="0" y="0" width="{frac * width:.1f}" height="{height}" '
        f'rx="3" fill="{fill}"/></svg>'
    )


def _slos_html(slos: Sequence[Mapping[str, Any]]) -> str:
    if not slos:
        return ('<p class="muted">no SLO status in this snapshot '
                "(the timeline section is required to window the ratios)</p>")
    rows = []
    for status in slos:
        spec = status["slo"]
        burn = max(status["burn_fast"], status["burn_slow"])
        color, icon = (_STATUS["critical"] if status["budget_remaining"] <= 0
                       else _STATUS["warning"] if burn > 1.0
                       else _STATUS["good"])
        rows.append(
            f"<tr><td>{_esc(spec['name'])}</td>"
            f"<td>{spec['objective']:.4g}</td>"
            f'<td><span style="color:{color}">{icon}</span> '
            f"{_budget_gauge_svg(status['budget_remaining'])} "
            f"{status['budget_remaining']:.0%}</td>"
            f"<td>{status['burn_fast']:.2f}&times;</td>"
            f"<td>{status['burn_slow']:.2f}&times;</td>"
            f"<td>{status['good']:.0f} / {status['total']:.0f}</td>"
            f"<td style='text-align:left'>{_esc(spec['description'])}</td></tr>"
        )
    return (
        '<table class="viz"><thead><tr><th>SLO</th><th>objective</th>'
        "<th>budget left</th><th>burn (fast)</th><th>burn (slow)</th>"
        "<th>good / total</th><th>description</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _series_svg(points: Sequence[Sequence[float]]) -> str:
    """An inline area sparkline for one counter's per-window rate."""
    width, height = 160, 28
    values = [float(p[1]) for p in points][-40:]
    if not values:
        return ""
    peak = max(max(values), 1e-12)
    step = width / max(len(values), 1)
    coords = [
        (idx * step + step / 2, height - (v / peak) * (height - 4))
        for idx, v in enumerate(values)
    ]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    return (
        f'<svg role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" aria-label="rate over time">'
        f'<line x1="0" y1="{height - 1}" x2="{width}" y2="{height - 1}" '
        'stroke="var(--baseline)" stroke-width="1"/>'
        f'<polyline points="{path}" fill="none" stroke="var(--series-1)" '
        'stroke-width="1.5"/></svg>'
    )


def _timeline_html(timeline: Optional[Mapping[str, Any]]) -> str:
    if not timeline or not timeline.get("series"):
        return ('<p class="muted">no timeline in this snapshot — the serve '
                "daemon records one by default; scripts can attach one with "
                "<code>repro.obs.enable_timeline()</code></p>")
    rows = "".join(
        f"<tr><td>{_esc(name)}</td><td>{entry['total']:.0f}</td>"
        f"<td>{entry['rate']:.4g}</td>"
        f"<td style='text-align:left'>{_series_svg(entry['points'])}</td></tr>"
        for name, entry in sorted(timeline["series"].items())
    )
    caption = (
        f"<p>windowed counters over the last "
        f"{timeline['window_seconds']:.0f}&nbsp;s "
        f"({len(timeline['series'])} series)</p>"
    )
    return (
        f"{caption}"
        '<table class="viz"><thead><tr><th>counter</th><th>total</th>'
        "<th>rate /s</th><th>trend</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )


def _scorecards_html(cards: Sequence[Mapping[str, Any]]) -> str:
    if not cards:
        return '<p class="muted">no residual pairs ingested yet</p>'
    rows = []
    for card in cards:
        rows.append(
            f"<tr><td>{_esc(card['model'])} / {_esc(card['operation'])}</td>"
            f"<td>all sizes</td><td>{card['count']}</td>"
            f"<td>{card['mean_abs_error']:.1%}</td><td>{card['p50']:.1%}</td>"
            f"<td>{card['p95']:.1%}</td><td>{card['max_abs_error']:.1%}</td>"
            f"<td>{card['bias']:+.1%}</td></tr>"
        )
        for bucket in card["buckets"]:
            rows.append(
                '<tr><td class="muted"></td>'
                f"<td>&le; {_esc(_fmt_bytes(float(bucket['bucket'])))}</td>"
                f"<td>{bucket['count']}</td><td>{bucket['mean_abs_error']:.1%}</td>"
                f"<td>{bucket['p50']:.1%}</td><td>{bucket['p95']:.1%}</td>"
                f"<td>{bucket['max_abs_error']:.1%}</td>"
                f"<td>{bucket['bias']:+.1%}</td></tr>"
            )
    return (
        '<table class="viz"><thead><tr><th>model / operation</th>'
        "<th>size bucket</th><th>n</th><th>mean err</th><th>p50</th>"
        "<th>p95</th><th>worst</th><th>bias</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _rate_chart_svg(irregularity: Mapping[str, Any]) -> str:
    """Escalation rate per size bucket, with M1/M2 annotations."""
    rates = [r for r in irregularity["rates"] if r["transfers"]]
    if not rates:
        return ""
    bar_w, gap, height, pad_l, pad_b = 26, 8, 140, 44, 34
    width = pad_l + len(rates) * (bar_w + gap) + 12
    peak = max(max(r["rate"] for r in rates), 0.05)
    parts = [
        f'<svg role="img" width="{width}" height="{height + pad_b}" '
        f'viewBox="0 0 {width} {height + pad_b}" '
        'aria-label="escalation rate per message-size bucket">'
    ]
    # y axis: baseline + one reference gridline at the peak rate
    parts.append(
        f'<line x1="{pad_l}" y1="{height}" x2="{width - 4}" y2="{height}" '
        'stroke="var(--baseline)" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{pad_l - 6}" y="{height}" text-anchor="end" font-size="11" '
        'fill="var(--text-muted)">0%</text>'
    )
    y_peak = height - (peak / peak) * (height - 16)
    parts.append(
        f'<line x1="{pad_l}" y1="{y_peak}" x2="{width - 4}" y2="{y_peak}" '
        'stroke="var(--grid)" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{pad_l - 6}" y="{y_peak + 4}" text-anchor="end" font-size="11" '
        f'fill="var(--text-muted)">{peak:.0%}</text>'
    )
    for idx, rate in enumerate(rates):
        x = pad_l + idx * (bar_w + gap)
        bar_h = (rate["rate"] / peak) * (height - 16)
        y = height - bar_h
        parts.append(
            f'<rect x="{x}" y="{y:.1f}" width="{bar_w}" height="{bar_h:.1f}" '
            'rx="2" fill="var(--series-1)"/>'
        )
        if rate["rate"] > 0:  # selective direct labels: escalating bars only
            parts.append(
                f'<text x="{x + bar_w / 2}" y="{y - 4:.1f}" text-anchor="middle" '
                f'font-size="10" fill="var(--text-secondary)">{rate["rate"]:.0%}</text>'
            )
        parts.append(
            f'<text x="{x + bar_w / 2}" y="{height + 14}" text-anchor="middle" '
            f'font-size="10" fill="var(--text-muted)">'
            f'{_esc(_fmt_bytes(rate["upper"]))}</text>'
        )
    uppers = [r["upper"] for r in rates]
    for name, value in (("M1", irregularity["m1"]), ("M2", irregularity["m2"])):
        nearest = min(range(len(uppers)), key=lambda i: abs(uppers[i] - value))
        x = pad_l + nearest * (bar_w + gap) + (bar_w if uppers[nearest] <= value else 0)
        parts.append(
            f'<line x1="{x}" y1="8" x2="{x}" y2="{height}" '
            'stroke="var(--text-secondary)" stroke-width="1" stroke-dasharray="3,3"/>'
        )
        parts.append(
            f'<text x="{x}" y="{height + 28}" text-anchor="middle" font-size="11" '
            f'fill="var(--text-primary)">{name}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _irregularity_html(irregularity: Optional[Mapping[str, Any]]) -> str:
    if not irregularity:
        return ('<p class="muted">no escalating size bucket observed '
                "(no traffic through the irregularity region yet)</p>")
    chart = _rate_chart_svg(irregularity)
    rows = "".join(
        f"<tr><td>&le; {_esc(_fmt_bytes(r['upper']))}</td><td>{r['transfers']}</td>"
        f"<td>{r['escalated']}</td><td>{r['rate']:.1%}</td></tr>"
        for r in irregularity["rates"] if r["transfers"]
    )
    table = (
        '<table class="viz"><thead><tr><th>size bucket</th><th>transfers</th>'
        "<th>escalated</th><th>rate</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )
    caption = (
        f"<p>live estimate: <strong>M1 &asymp; {_esc(_fmt_bytes(irregularity['m1']))}"
        f"</strong>, <strong>M2 &asymp; {_esc(_fmt_bytes(irregularity['m2']))}</strong>, "
        f"escalation value &asymp; {irregularity['escalation_value']:.3g} s</p>"
    )
    chart_div = f'<div class="chart">{chart}</div>' if chart else ""
    return f"{caption}{chart_div}{table}"


def _counts_html(counts: Mapping[str, Any], columns: tuple[str, ...]) -> str:
    if not counts:
        return '<p class="muted">(none)</p>'
    rows = []
    for name, value in counts.items():
        if isinstance(value, Mapping):
            cells = "".join(
                f"<td>{value[c]:.4g}</td>" if isinstance(value[c], float)
                else f"<td>{value[c]}</td>"
                for c in columns[1:]
            )
        else:
            cells = f"<td>{value}</td>"
        rows.append(f"<tr><td>{_esc(name)}</td>{cells}</tr>")
    head = "".join(f"<th>{_esc(c)}</th>" for c in columns)
    return (
        f'<table class="viz"><thead><tr>{head}</tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _traces_html(traces: Mapping[str, Mapping[str, Any]]) -> str:
    if not traces:
        return ('<p class="muted">no traced spans in this snapshot '
                "(clients propagate trace ids via the wire envelope)</p>")
    rows = "".join(
        f"<tr><td><code>{_esc(trace_id)}</code></td><td>{entry['spans']}</td>"
        f"<td>{entry['total_seconds'] * 1e3:.2f}</td>"
        f"<td style='text-align:left'>{_esc(', '.join(entry['names']))}</td></tr>"
        for trace_id, entry in traces.items()
    )
    return (
        '<table class="viz"><thead><tr><th>trace id</th><th>spans</th>'
        "<th>total ms</th><th>span names</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )


def _kernel_profile_html(kernel: Optional[Mapping[str, Any]]) -> str:
    if not kernel:
        return ('<p class="muted">no BENCH_kernel_profile.json ingested '
                "(run <code>repro obs profile --target kernel</code>)</p>")
    eps = kernel.get("events_per_second")
    caption = (
        f"<p>{_esc(kernel['source'])}: "
        f"<strong>{eps:,.0f} events/s</strong> uninstrumented baseline</p>"
        if eps else f"<p>{_esc(kernel['source'])}</p>"
    )
    rows = "".join(
        f"<tr><td>{_esc(frame['name'])}</td><td>{frame['count']}</td>"
        f"<td>{frame['self_ns'] / 1e6:.3f}</td>"
        f"<td>{frame['cum_ns'] / 1e6:.3f}</td></tr>"
        for frame in kernel["frames"]
    )
    table = (
        '<table class="viz"><thead><tr><th>frame</th><th>count</th>'
        "<th>self ms</th><th>cum ms</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
    )
    return f"{caption}{table}"


def _bench_html(bench: Sequence[Mapping[str, Any]]) -> str:
    if not bench:
        return '<p class="muted">no BENCH_*.json files found</p>'
    blocks = []
    for entry in bench:
        rows = "".join(
            f"<tr><td>{_esc(k)}</td><td>{v:.6g}</td></tr>"
            for k, v in sorted(entry["data"].items())
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        )
        blocks.append(
            f"<h3 style='font-size:13px;margin:12px 0 6px'>{_esc(entry['name'])}</h3>"
            '<table class="viz"><thead><tr><th>measure</th><th>value</th>'
            f"</tr></thead><tbody>{rows}</tbody></table>"
        )
    return "".join(blocks)


def render_html(data: Mapping[str, Any]) -> str:
    """The dashboard as one self-contained HTML document."""
    summary = data["summary"]
    tiles = "".join(_tile_html(t) for t in data["tiles"])
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(data["title"])}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>{_esc(data["title"])}</h1>
<p class="sub">{summary["metric_families"]} metric families &middot;
{summary["events"]} events &middot; {summary["spans_finished"]} finished spans
&middot; dropped {_esc(summary["dropped"])}</p>
<div class="tiles">{tiles}</div>
{_warnings_html(data.get("warnings") or ())}
<h2>Alerts</h2>
{_alerts_html(data["alerts"])}
<h2>SLOs &amp; error budgets</h2>
{_slos_html(data.get("slos") or ())}
<h2>Timeline</h2>
{_timeline_html(data.get("timeline"))}
<h2>Residual scorecards</h2>
{_scorecards_html(data["scorecards"])}
<h2>Gather irregularity (live)</h2>
{_irregularity_html(data.get("irregularity"))}
<h2>Events</h2>
{_counts_html(data["events_by_name"], ("event", "count"))}
<h2>Spans</h2>
{_counts_html(data["spans_by_name"], ("span", "count", "total_seconds"))}
<h2>Traces</h2>
{_traces_html(data.get("traces") or {})}
<h2>Kernel profile</h2>
{_kernel_profile_html(data.get("kernel_profile"))}
<h2>Bench trajectory</h2>
{_bench_html(data["bench"])}
</body>
</html>
"""
