"""Microbenchmark: the observatory is cheap, on and off.

Three numbers, landing in ``BENCH_insight.json`` at the repo root:

1. **dashboard render** — ``build_dashboard`` + ``render_html`` on a
   realistically-populated snapshot (residuals across models and size
   buckets, escalation traffic, events, spans) must finish well under a
   second: the dashboard is something you re-render in a watch loop.
2. **monitor ingest** — streaming throughput of
   :class:`ResidualMonitor.record` with telemetry on; the scorecard
   aggregates are simple registry ops, so six figures of pairs/second is
   the expectation.
3. **disabled path** — the analytic guard-cost check from
   ``test_obs_overhead.py``, applied to the new call sites: a simulated
   transfer fires one extra guard (plus one when it escalates), and a
   ``measure(models=...)``/``record_residuals`` caller adds one guarded
   monitor hit per pair.  Their summed guard cost must stay under 5% of
   an uninstrumented campaign.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_insight_overhead.py -s
"""

import json
import time
from pathlib import Path

from repro.obs import runtime as _obs
from repro.obs.insight.dashboard import build_dashboard, render_html
from repro.obs.insight.residuals import ResidualMonitor
from repro.obs.runtime import Telemetry

from benchmarks.test_obs_overhead import run_campaign, time_disabled_guard

REPEATS = 3
INGEST_PAIRS = 20_000
RENDER_BUDGET_SECONDS = 1.0
BUDGET_FRACTION = 0.05
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_insight.json"

KB = 1024


def populated_snapshot():
    """A snapshot the size a real fig5-style chaos run produces."""
    tel = Telemetry()
    reg = tel.registry
    monitor = ResidualMonitor(reg)
    for model in ("lmo", "hockney", "pgm"):
        for op in ("gather/linear", "scatter/binomial", "bcast/pipeline"):
            for k in range(4, 22):
                nbytes = 1 << k
                monitor.record(model, op, nbytes, 1.0 + 0.01 * k, 1.0)
    for k in range(8, 20):
        for i in range(40):
            reg.histogram("sim_transfer_bytes", lo=0, hi=28).observe(1 << k)
            if 14 <= k <= 17 and i % 5 == 0:
                reg.histogram(
                    "sim_escalated_transfer_bytes", lo=0, hi=28
                ).observe(1 << k)
                reg.histogram("rto_escalation_seconds", cause="incast").observe(0.2)
    reg.counter("rto_escalations_total", cause="incast").inc(96)
    reg.gauge("breaker_nodes", state="closed").set(6)
    for i in range(200):
        tel.events.info("campaign_checkpoint", index=i)
    for _ in range(100):
        with tel.spans.span("campaign.unit"):
            pass
    return tel.to_dict()


def test_dashboard_render_is_fast_enough():
    doc = populated_snapshot()
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        data = build_dashboard(doc)
        html = render_html(data)
        best = min(best, time.perf_counter() - start)
    assert len(html) > 10_000  # it actually rendered content
    assert data["scorecards"] and data["irregularity"] is not None

    _obs.disable()
    tel = _obs.enable(fresh=True)
    try:
        start = time.perf_counter()
        for i in range(INGEST_PAIRS):
            tel.registry  # keep the loop honest about attribute access
            ResidualMonitor().record(
                "lmo", "gather/linear", 1 << (4 + i % 18), 1.01, 1.0
            )
        ingest_s = time.perf_counter() - start
    finally:
        _obs.disable()
    pairs_per_second = INGEST_PAIRS / ingest_s

    payload = {
        "benchmark": "observatory render + ingest + disabled-path overhead",
        "render_seconds": round(best, 6),
        "render_budget_seconds": RENDER_BUDGET_SECONDS,
        "html_bytes": len(html),
        "ingest_pairs": INGEST_PAIRS,
        "ingest_seconds": round(ingest_s, 6),
        "pairs_per_second": round(pairs_per_second, 1),
    }
    _merge_result(payload)
    print(f"\ndashboard render {best * 1e3:.1f} ms, "
          f"ingest {pairs_per_second:,.0f} pairs/s -> {RESULT_PATH.name}")
    assert best < RENDER_BUDGET_SECONDS
    assert pairs_per_second > 10_000


def test_disabled_insight_overhead_under_5_percent(tmp_path):
    _obs.disable()
    disabled_s = min(
        run_campaign(tmp_path, f"insight-off-{i}")[0] for i in range(REPEATS)
    )
    guard_s = time_disabled_guard()

    # Guarded hooks the observatory adds to one campaign, over-counted:
    #  - every simulated transfer: 1 guard (sim_transfer_bytes), +1 when
    #    escalated — bound both by total kernel events;
    #  - residual feeds (measure/suite/maintainer): 1 guard per pair; a
    #    campaign's worth of spot-checks is < 1000 pairs.
    tel = _obs.enable(fresh=True)
    try:
        _elapsed, _result = run_campaign(tmp_path, "insight-instrumented")
        kernel_events = tel.registry.total("sim_events_total")
    finally:
        _obs.disable()
    hooks = int(2 * kernel_events + 1000)

    overhead_s = hooks * guard_s
    overhead_fraction = overhead_s / disabled_s
    payload = {
        "campaign_seconds_disabled": round(disabled_s, 6),
        "guard_ns": round(guard_s * 1e9, 3),
        "insight_hook_executions": hooks,
        "overhead_seconds": round(overhead_s, 6),
        "overhead_fraction": round(overhead_fraction, 6),
        "budget_fraction": BUDGET_FRACTION,
    }
    _merge_result(payload)
    print(f"\ncampaign {disabled_s * 1e3:.1f} ms disabled, "
          f"{hooks} insight hooks x {guard_s * 1e9:.0f} ns = "
          f"{overhead_fraction:.2%} overhead -> {RESULT_PATH.name}")
    assert overhead_fraction < BUDGET_FRACTION, (
        f"disabled-telemetry insight overhead {overhead_fraction:.2%} "
        f"exceeds the {BUDGET_FRACTION:.0%} budget"
    )


def _merge_result(payload):
    """Both tests write one file; merge so either ordering works."""
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except ValueError:
            existing = {}
    existing.update(payload)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
