"""Legacy-surface deprecation, consolidated.

Two pre-``repro.api`` surfaces are deprecated since the schema-v2 work:
legacy version-1 ``repro-model`` JSON documents, and calling the scalar
Table II formula entry points directly where :func:`repro.api.predict`
(or :func:`repro.api.predict_many`) is the supported route.  Instead of
nagging on every touch, :func:`warn_legacy` emits **one** consolidated
``DeprecationWarning`` per process — the first legacy touch names what
was used and where to migrate; subsequent touches stay silent.

Tests exercising the warning call :func:`reset_legacy_warnings` first.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_legacy", "reset_legacy_warnings"]

_MIGRATION_HINT = (
    "migrate to the repro.api facade: api.load_model/api.save_model for "
    "schema-v2 model JSON, api.predict/api.predict_many for predictions "
    "(one serialization, one cache — see docs/cli.md)"
)

_warned = False


def warn_legacy(feature: str, stacklevel: int = 3) -> None:
    """Emit the single consolidated legacy-surface DeprecationWarning.

    ``feature`` names what was touched (e.g. ``"schema-v1 model
    document"``); only the first call per process warns.
    """
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        f"legacy interface used: {feature}; {_MIGRATION_HINT} "
        "(this warning is emitted once per process)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_legacy_warnings() -> None:
    """Re-arm :func:`warn_legacy` (test helper)."""
    global _warned
    _warned = False
