"""Tests for the DES and analytic experiment engines."""

import pytest

from repro.cluster import IDEAL, GroundTruth, NoiseModel, SimulatedCluster, random_cluster
from repro.estimation import AnalyticEngine, DESEngine
from repro.estimation.experiments import one_to_two, roundtrip, saturation

KB = 1024


def make_engines(n=5, seed=0):
    gt = GroundTruth.random(n, seed=seed)
    cluster = SimulatedCluster(
        random_cluster(n, seed=seed), ground_truth=gt,
        profile=IDEAL, noise=NoiseModel.none(), seed=seed,
    )
    return DESEngine(cluster), AnalyticEngine(gt), gt


def test_analytic_roundtrip_matches_des():
    des, ana, _gt = make_engines()
    for exp in [roundtrip(0, 1, 0), roundtrip(0, 1, 8 * KB), roundtrip(2, 4, 64 * KB, 0)]:
        assert ana.run(exp) == pytest.approx(des.run(exp), rel=1e-12)


def test_analytic_one_to_two_upper_bounds_des():
    """Eq. (9) assumes no overlap between the two replies' processing, so
    the analytic value bounds the DES observation from above."""
    des, ana, _gt = make_engines(seed=1)
    for M in [0, 4 * KB, 32 * KB]:
        exp = one_to_two(0, 1, 2, M, 0)
        assert des.run(exp) <= ana.run(exp) + 1e-12


def test_analytic_overheads():
    _des, ana, gt = make_engines(seed=2)
    from repro.estimation.experiments import overhead_recv, overhead_send

    assert ana.run(overhead_send(1, 2, KB)) == pytest.approx(gt.send_cost(1, KB))
    assert ana.run(overhead_recv(1, 2, KB)) == pytest.approx(gt.send_cost(2, KB))


def test_analytic_saturation_close_to_des():
    des, ana, _gt = make_engines(seed=3)
    exp = saturation(0, 1, 16 * KB, 16)
    assert ana.run(exp) == pytest.approx(des.run(exp), rel=0.1)


def test_run_batch_requires_disjoint_nodes():
    des, ana, _gt = make_engines()
    overlapping = [roundtrip(0, 1, 0), roundtrip(1, 2, 0)]
    with pytest.raises(ValueError, match="overlap"):
        des.run_batch(overlapping)
    with pytest.raises(ValueError, match="overlap"):
        ana.run_batch(overlapping)


def test_parallel_batch_gives_same_durations_as_serial():
    """Disjoint experiments don't disturb each other through the switch —
    the property the paper's parallel estimation relies on (DESIGN D5)."""
    des, _ana, _gt = make_engines(n=5, seed=4)
    exps = [roundtrip(0, 1, 16 * KB), roundtrip(2, 3, 16 * KB)]
    serial = [des.run(exps[0]), des.run(exps[1])]
    batch = des.run_batch(exps)
    assert batch == pytest.approx(serial, rel=1e-12)


def test_estimation_time_serial_sums_parallel_takes_max():
    des, _ana, _gt = make_engines(n=5, seed=5)
    exps = [roundtrip(0, 1, 16 * KB), roundtrip(2, 3, 16 * KB)]
    durations = [des.run(exps[0]), des.run(exps[1])]
    serial_cost = des.estimation_time
    assert serial_cost == pytest.approx(sum(durations), rel=1e-9)

    des2 = DESEngine(des.cluster)
    des2.run_batch(exps)
    assert des2.estimation_time == pytest.approx(max(durations), rel=1e-9)


def test_analytic_estimation_time_accounting():
    _des, ana, _gt = make_engines(seed=6)
    d1 = ana.run(roundtrip(0, 1, KB))
    assert ana.estimation_time == pytest.approx(d1)
    batch = ana.run_batch([roundtrip(0, 1, KB), roundtrip(2, 3, KB)])
    assert ana.estimation_time == pytest.approx(d1 + max(batch))


def test_analytic_noise_perturbs_but_seed_reproduces():
    gt = GroundTruth.random(4, seed=7)
    noisy1 = AnalyticEngine(gt, noise=NoiseModel.default(), seed=1)
    noisy1b = AnalyticEngine(gt, noise=NoiseModel.default(), seed=1)
    noisy2 = AnalyticEngine(gt, noise=NoiseModel.default(), seed=2)
    exp = roundtrip(0, 1, 8 * KB)
    assert noisy1.run(exp) == noisy1b.run(exp)
    assert noisy1.run(exp) != noisy2.run(exp)


def test_des_collective_time_available():
    des, _ana, _gt = make_engines(seed=8)
    t = des.collective_time("scatter", "linear", 4 * KB)
    assert t > 0
    assert des.estimation_time >= t
