"""Tests for ground-truth parameter containers and synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GroundTruth, synthesize_ground_truth, table1_cluster


def test_p2p_time_matches_extended_lmo_formula():
    gt = GroundTruth.random(4, seed=1)
    M = 10_000
    expected = gt.C[0] + gt.L[0, 2] + gt.C[2] + M * (gt.t[0] + 1 / gt.beta[0, 2] + gt.t[2])
    assert gt.p2p_time(0, 2, M) == pytest.approx(expected)


def test_p2p_time_zero_bytes_is_pure_constant_part():
    gt = GroundTruth.random(3, seed=2)
    assert gt.p2p_time(1, 2, 0) == pytest.approx(gt.C[1] + gt.L[1, 2] + gt.C[2])


def test_hockney_alpha_combines_constant_contributions():
    gt = GroundTruth.random(5, seed=3)
    alpha = gt.hockney_alpha()
    assert alpha[1, 3] == pytest.approx(gt.C[1] + gt.L[1, 3] + gt.C[3])
    assert np.allclose(alpha, alpha.T)


def test_hockney_beta_combines_variable_contributions():
    gt = GroundTruth.random(5, seed=4)
    bh = gt.hockney_beta()
    assert bh[0, 4] == pytest.approx(gt.t[0] + 1 / gt.beta[0, 4] + gt.t[4])
    assert np.allclose(bh, bh.T)


def test_hockney_view_reconstructs_p2p_time():
    """alpha_ij + beta^H_ij * M must equal the LMO p2p time (paper, Sec III)."""
    gt = GroundTruth.random(6, seed=5)
    alpha, bh = gt.hockney_alpha(), gt.hockney_beta()
    for i, j in [(0, 1), (2, 5), (4, 3)]:
        for M in [0, 1024, 100_000]:
            assert alpha[i, j] + bh[i, j] * M == pytest.approx(gt.p2p_time(i, j, M))


def test_asymmetric_latency_rejected():
    gt = GroundTruth.random(3, seed=6)
    L = gt.L.copy()
    L[0, 1] += 1e-6
    with pytest.raises(ValueError, match="symmetric"):
        GroundTruth(gt.C, gt.t, L, gt.beta)


def test_negative_processor_delay_rejected():
    gt = GroundTruth.random(3, seed=7)
    C = gt.C.copy()
    C[0] = -1e-6
    with pytest.raises(ValueError, match="non-negative"):
        GroundTruth(C, gt.t, gt.L, gt.beta)


def test_shape_mismatch_rejected():
    gt = GroundTruth.random(3, seed=8)
    with pytest.raises(ValueError, match="shapes"):
        GroundTruth(gt.C[:2], gt.t, gt.L, gt.beta)


def test_synthesis_is_deterministic():
    spec = table1_cluster()
    a = synthesize_ground_truth(spec, seed=0)
    b = synthesize_ground_truth(spec, seed=0)
    assert np.array_equal(a.C, b.C)
    assert np.array_equal(a.L, b.L)
    assert np.array_equal(a.beta, b.beta)


def test_synthesis_heterogeneity_spans_about_2x():
    """The Table I cluster mixes fast Xeons and a slow Celeron: fixed
    costs vary strongly, per-byte (memory-bound) costs mildly."""
    gt = synthesize_ground_truth(table1_cluster())
    assert gt.C.max() / gt.C.min() > 1.5
    assert 1.1 < gt.t.max() / gt.t.min() < 1.5


def test_synthesis_celeron_is_slowest_processor():
    spec = table1_cluster()
    gt = synthesize_ground_truth(spec)
    celeron_idx = next(i for i, n in enumerate(spec.nodes) if "Celeron" in n.processor)
    assert gt.C[celeron_idx] == pytest.approx(gt.C.max())
    assert gt.t[celeron_idx] == pytest.approx(gt.t.max())


def test_synthesis_orders_of_magnitude_plausible():
    gt = synthesize_ground_truth(table1_cluster())
    assert 1e-5 < gt.C.min() and gt.C.max() < 2e-4  # tens of microseconds
    assert 1e-9 < gt.t.min() and gt.t.max() < 1e-7  # ~10 ns per byte
    off = ~np.eye(gt.n, dtype=bool)
    assert 1e-5 < gt.L[off].min() and gt.L[off].max() < 1e-4
    assert 5e7 < gt.beta[off].min() and gt.beta[off].max() < 2e8  # ~1 Gbit/s TCP


@settings(max_examples=25, deadline=None)
@given(n=st.integers(3, 12), seed=st.integers(0, 10_000))
def test_random_ground_truth_always_valid(n, seed):
    gt = GroundTruth.random(n, seed=seed)
    assert gt.n == n
    off = ~np.eye(n, dtype=bool)
    assert (gt.L[off] > 0).all()
    assert (gt.beta[off] > 0).all()
    # p2p time is positive and grows with message size on every link.
    assert gt.p2p_time(0, 1, 1000) > gt.p2p_time(0, 1, 0) > 0
