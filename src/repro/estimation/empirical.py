"""Empirical-parameter extraction: gather thresholds, escalations, leaps.

The LMO model's linear-gather formula (5) carries *empirical* parameters
found "from the observations of the execution time of linear gather":
the thresholds ``M1``/``M2`` bracketing the non-deterministic escalation
region, the most frequent escalation value, and the escalation probability
as a function of message size.  The paper also suggests a "preliminary
test of the collective operations for different message sizes to identify
the regions of irregularities" before choosing estimation probe sizes —
:func:`detect_gather_irregularity` is that test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.estimation.engines import DESEngine
from repro.models.lmo_extended import GatherIrregularity
from repro.stats.fitting import linear_fit

__all__ = [
    "GatherSweep",
    "detect_gather_irregularity",
    "detect_scatter_leap",
    "sweep_collective",
]

KB = 1024
DEFAULT_SIZES = tuple(
    int(m) for m in (1 * KB, 2 * KB, 4 * KB, 8 * KB, 16 * KB, 24 * KB, 32 * KB,
                     48 * KB, 64 * KB, 80 * KB, 96 * KB, 128 * KB, 160 * KB, 192 * KB)
)


@dataclass
class GatherSweep:
    """Samples of one collective operation over a size sweep."""

    sizes: tuple[int, ...]
    samples: dict[int, list[float]]

    def medians(self) -> np.ndarray:
        return np.array([float(np.median(self.samples[m])) for m in self.sizes])

    def minima(self) -> np.ndarray:
        return np.array([float(np.min(self.samples[m])) for m in self.sizes])


def sweep_collective(
    engine: DESEngine,
    operation: str,
    algorithm: str = "linear",
    sizes: Sequence[int] = DEFAULT_SIZES,
    reps: int = 10,
    root: int = 0,
) -> GatherSweep:
    """Measure a collective across message sizes, ``reps`` runs per size."""
    samples: dict[int, list[float]] = {}
    for m in sizes:
        samples[int(m)] = [
            engine.collective_time(operation, algorithm, int(m), root=root)
            for _ in range(reps)
        ]
    return GatherSweep(sizes=tuple(int(m) for m in sizes), samples=samples)


def detect_gather_irregularity(
    sweep: GatherSweep,
    escalation_floor: float = 0.05,
) -> GatherIrregularity:
    """Extract ``(M1, M2, escalation value, probabilities)`` from a sweep.

    A sample *escalates* when it exceeds the size's minimum by more than
    ``escalation_floor`` seconds (escalations are order-of-0.2 s TCP RTOs,
    two orders above normal run-to-run noise).  ``M1`` is the largest
    *clean* size below the first escalating one — the paper's "messages
    less than M1" are safe, which is exactly the contract the splitting
    optimization relies on.  ``M2`` is the smallest size after the last
    escalating one.
    """
    escalating: list[int] = []
    excesses: list[float] = []
    probs: dict[int, float] = {}
    for m in sweep.sizes:
        samples = np.asarray(sweep.samples[m])
        base = samples.min()
        mask = samples - base > escalation_floor
        probs[m] = float(mask.mean())
        if mask.any():
            escalating.append(m)
            excesses.extend((samples[mask] - base).tolist())
    if not escalating:
        raise ValueError(
            "no escalations observed in the sweep; widen the size range or "
            "increase repetitions"
        )
    clean_below = [m for m in sweep.sizes if m < escalating[0]]
    m1 = float(clean_below[-1]) if clean_below else float(escalating[0]) / 2.0
    last = escalating[-1]
    after = [m for m in sweep.sizes if m > last]
    m2 = float(after[0]) if after else float(last) * 1.5
    return GatherIrregularity(
        m1=m1,
        m2=m2,
        escalation_value=float(np.median(excesses)),
        p_at_m1=probs[escalating[0]],
        p_at_m2=max(probs[m] for m in escalating),
    )


@dataclass
class ScatterLeap:
    """A detected jump in the scatter size sweep (paper Fig. 4, 64 KB)."""

    location: int
    magnitude: float
    baseline_slope: float

    @property
    def relative_magnitude(self) -> float:
        """Leap size relative to the local linear trend's step."""
        return self.magnitude


def detect_scatter_leap(sweep: GatherSweep, factor: float = 3.0) -> ScatterLeap:
    """Locate the largest step that breaks the linear trend of a sweep.

    Fits a line to the lower half of the size range (assumed leap-free),
    then finds the first size whose increment over the previous size
    exceeds ``factor`` times the fitted slope's prediction.
    """
    sizes = np.asarray(sweep.sizes, dtype=float)
    times = sweep.medians()
    if sizes.size < 4:
        raise ValueError("need at least 4 sweep sizes")
    half = max(2, sizes.size // 2)
    fit = linear_fit(sizes[:half], times[:half])
    for idx in range(1, sizes.size):
        expected_step = fit.slope * (sizes[idx] - sizes[idx - 1])
        actual_step = times[idx] - times[idx - 1]
        if actual_step > factor * max(expected_step, 1e-12):
            return ScatterLeap(
                location=int(sizes[idx]),
                magnitude=float(actual_step - expected_step),
                baseline_slope=fit.slope,
            )
    raise ValueError("no leap found: the sweep is consistent with one line")
